"""Ablation: the §V scheduling improvements the paper announces.

- FIFO master/worker (the paper's implementation),
- location-aware dispatch (the paper's planned improvement: prefer units
  whose partition the worker already holds),
- mpiBLAST-like static partition scatter (the comparator).

The ablation quantifies both claims: location-awareness slashes DB reloads,
and static scatter loses to dynamic balancing on an irregular workload.

The straggler ablation (PR 8) adds the robustness arms on the same fleet:
plain dispatch vs speculative re-execution vs speculation + in-flight
reassignment, under a seeded stall/crash plan on 256 simulated cores.
"""

import json
from pathlib import Path

from repro.cluster import nucleotide_workload, ranger, simulate_blast_run
from repro.figures.comparisons import ablation_scheduling
from repro.mpi.faultplan import FaultPlan
from repro.sched import SpeculationPolicy

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_robustness.json"


def _record(key, payload):
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_ablation_scheduling(benchmark, print_table):
    points = benchmark(ablation_scheduling, 40_000)

    print_table(
        "Scheduling ablation — blastn 40K queries",
        ["cores", "scheduler", "wall min", "DB reloads", "I/O core-h"],
        [
            [p.cores, p.scheduler, f"{p.wall_minutes:.1f}", p.total_reloads, f"{p.io_core_hours:.1f}"]
            for p in points
        ],
    )

    by_key = {(p.cores, p.scheduler): p for p in points}
    for cores in (64, 256, 1024):
        fifo = by_key[(cores, "master_worker")]
        affinity = by_key[(cores, "affinity")]
        static = by_key[(cores, "static")]
        glidein = by_key[(cores, "glidein")]
        # Location-aware dispatch cuts partition reloads dramatically...
        assert affinity.total_reloads < fifo.total_reloads / 3
        # ...and never loses on wall time.
        assert affinity.wall_minutes <= fifo.wall_minutes * 1.02
        # Static scatter suffers on the straggler-heavy workload.
        assert static.wall_minutes >= affinity.wall_minutes
        # Glide-in pays external-scheduler overheads the in-job master avoids.
        assert glidein.wall_minutes >= fifo.wall_minutes * 0.98


def test_straggler_mitigation_ablation(print_table):
    """none / speculation / speculation+reassignment on a 256-core fleet.

    One worker stalls for 600 s mid-map and another crashes outright; the
    same seeded plan drives every arm, so the deltas are pure policy.
    """
    cluster = ranger(256)
    workload = nucleotide_workload(n_queries=20_000)
    plan = FaultPlan.parse("stall=7@3:600,crash=19@5", cluster.workers)

    arms = {
        "none": dict(),
        "speculation": dict(speculation=SpeculationPolicy(factor=2.0)),
        "speculation+reassign": dict(
            speculation=SpeculationPolicy(factor=2.0), reassign=True
        ),
    }
    runs = {
        name: simulate_blast_run(cluster, workload, fault_plan=plan, **kw)
        for name, kw in arms.items()
    }

    def utilization(res):
        busy = res.total_io_seconds + res.total_compute_seconds
        return busy / (cluster.workers * res.map_makespan)

    print_table(
        "Straggler ablation — blastn 20K queries, 256 cores, stall+crash",
        ["policy", "makespan s", "speculated", "wasted units", "wasted s",
         "reassigned", "lost units", "utilization"],
        [
            [name, f"{r.map_makespan:.1f}", r.speculated_units,
             r.wasted_units, f"{r.wasted_seconds:.1f}", r.reassigned_units,
             r.lost_units, f"{utilization(r):.2f}"]
            for name, r in runs.items()
        ],
    )
    _record("straggler_ablation", {
        "cluster_cores": cluster.cores,
        "fault_plan": "stall=7@3:600,crash=19@5",
        "n_units": workload.n_units,
        "arms": {
            name: {
                "map_makespan_s": r.map_makespan,
                "speculated_units": r.speculated_units,
                "wasted_units": r.wasted_units,
                "wasted_seconds": r.wasted_seconds,
                "reassigned_units": r.reassigned_units,
                "lost_units": r.lost_units,
                "lost_workers": list(r.lost_workers),
                "utilization": utilization(r),
            }
            for name, r in runs.items()
        },
    })

    none, spec, full = (runs["none"], runs["speculation"],
                        runs["speculation+reassign"])
    # Speculation clones the stalled unit instead of waiting out the stall.
    assert none.map_makespan >= 1.5 * spec.map_makespan
    assert spec.speculated_units >= 1
    # Only the reassignment arm re-runs the crashed worker's orphans.
    assert none.lost_units > 0 and spec.lost_units > 0
    assert full.lost_units == 0
    assert full.reassigned_units >= 1
    assert sum(t.units for t in full.traces) == workload.n_units
    # Duplicate work is the price of speculation; it must be visible, a
    # sliver of the useful compute, and must not sink utilisation.
    assert 0 < spec.wasted_seconds < 0.1 * spec.total_compute_seconds
    assert utilization(spec) > utilization(none)
