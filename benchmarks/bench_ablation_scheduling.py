"""Ablation: the §V scheduling improvements the paper announces.

- FIFO master/worker (the paper's implementation),
- location-aware dispatch (the paper's planned improvement: prefer units
  whose partition the worker already holds),
- mpiBLAST-like static partition scatter (the comparator).

The ablation quantifies both claims: location-awareness slashes DB reloads,
and static scatter loses to dynamic balancing on an irregular workload.
"""

from repro.figures.comparisons import ablation_scheduling


def test_ablation_scheduling(benchmark, print_table):
    points = benchmark(ablation_scheduling, 40_000)

    print_table(
        "Scheduling ablation — blastn 40K queries",
        ["cores", "scheduler", "wall min", "DB reloads", "I/O core-h"],
        [
            [p.cores, p.scheduler, f"{p.wall_minutes:.1f}", p.total_reloads, f"{p.io_core_hours:.1f}"]
            for p in points
        ],
    )

    by_key = {(p.cores, p.scheduler): p for p in points}
    for cores in (64, 256, 1024):
        fifo = by_key[(cores, "master_worker")]
        affinity = by_key[(cores, "affinity")]
        static = by_key[(cores, "static")]
        glidein = by_key[(cores, "glidein")]
        # Location-aware dispatch cuts partition reloads dramatically...
        assert affinity.total_reloads < fifo.total_reloads / 3
        # ...and never loses on wall time.
        assert affinity.wall_minutes <= fifo.wall_minutes * 1.02
        # Static scatter suffers on the straggler-heavy workload.
        assert static.wall_minutes >= affinity.wall_minutes
        # Glide-in pays external-scheduler overheads the in-job master avoids.
        assert glidein.wall_minutes >= fifo.wall_minutes * 0.98
