"""Figure 8: U-matrix of a 50×50 SOM trained on random 500-d vectors.

The paper's point is that even on unstructured high-dimensional input the
trained map shows a "well-defined U-matrix" — a smooth organised distance
structure rather than noise.  We train the real batch SOM (scaled to 2 000
vectors by default so the bench stays fast; pass the paper's 10 000 via
``fig8_highdim_umatrix`` directly for the full run) and check organisation:
neighbouring units end up far closer than random unit pairs, which for the
*initial* random codebook is not the case.
"""

import numpy as np

from repro.figures.som_maps import fig8_highdim_umatrix


def test_fig8_highdim_umatrix(benchmark, print_table):
    result = benchmark.pedantic(
        fig8_highdim_umatrix,
        kwargs=dict(rows=50, cols=50, n_vectors=2000, dim=500, epochs=8),
        rounds=1,
        iterations=1,
    )

    u = result.umatrix
    print_table(
        "Fig. 8 — high-dimensional U-matrix statistics",
        ["metric", "value"],
        [
            ["u-matrix mean", f"{u.mean():.4f}"],
            ["u-matrix max/median", f"{u.max() / np.median(u):.2f}"],
            ["neighbor contrast", f"{result.neighbor_contrast:.4f}"],
            ["topographic error", f"{result.topographic_error:.4f}"],
        ],
    )

    # A well-defined U-matrix: organised (neighbours clearly closer than
    # random pairs — in 500-d, distance concentration makes any contrast
    # below ~0.7 a strongly organised map; an untrained random codebook
    # scores ~1.0).
    assert result.neighbor_contrast < 0.7
    assert np.isfinite(u).all()
    assert u.min() > 0  # no degenerate duplicate units
    # The map is genuinely organised, not frozen at init: topology holds.
    assert result.topographic_error < 0.6
