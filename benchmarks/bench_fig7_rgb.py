"""Figure 7: 50×50 SOM trained on 100 random RGB vectors.

The paper uses this as the classic visual correctness check: similar
colours cluster into smooth patches.  We quantify what the picture shows:
neighbouring neurons carry similar colours (low neighbour contrast) and the
map preserves topology.  Training here is the *real* batch SOM, not the
performance model.
"""

from repro.figures.som_maps import fig7_rgb_clustering


def test_fig7_rgb_clustering(benchmark, print_table):
    # Paper-size grid, modest epochs: ~2500 units x 100 vectors is light.
    result = benchmark.pedantic(
        fig7_rgb_clustering, kwargs=dict(rows=50, cols=50, epochs=20), rounds=1, iterations=1
    )

    print_table(
        "Fig. 7 — RGB map quality metrics",
        ["metric", "value"],
        [
            ["grid", f"{result.grid.rows}x{result.grid.cols}"],
            ["quantization error", f"{result.quantization_error:.4f}"],
            ["topographic error", f"{result.topographic_error:.4f}"],
            ["neighbor contrast (lower = smoother)", f"{result.neighbor_contrast:.4f}"],
            ["u-matrix mean", f"{result.umatrix.mean():.4f}"],
        ],
    )

    # Smooth colour patches: grid neighbours are far closer in RGB space
    # than random unit pairs.
    assert result.neighbor_contrast < 0.2
    # With 2500 units for 100 vectors, quantisation is near-interpolative.
    assert result.quantization_error < 0.1
    # Weights stay inside the RGB cube.
    assert result.codebook.min() >= -0.05 and result.codebook.max() <= 1.05
