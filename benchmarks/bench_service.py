"""Resident-service throughput: micro-batching vs one-block-per-query.

Regenerates ``BENCH_service.json``.  A fixed stream of queries is pushed
through an always-on :class:`~repro.serve.QueryService` at 1 and 4 resident
ranks in two batching modes:

- ``batch1`` — every query dispatches as its own MapReduce job (the
  behaviour a naive "wrap run_mrblast in a loop" service would have);
- ``micro`` — queries coalesce into blocks sized by
  :func:`~repro.serve.advise_batch_size` from the α/β machine model the
  shuffle bench fitted (``BENCH_shuffle.json``), so the per-job fixed cost
  (broadcast, dispatch epoch, collate/sort/reduce collectives, gather) is
  amortised over the block.

Reported per run: sustained qps over the whole stream and the p50/p99
submit→resolve latency.  The acceptance bar is the reason the service
coalesces at all: micro-batching must beat one-block-per-query on qps at
4 ranks.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.blast import BlastOptions, format_database
from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.serve import QueryService, ServeConfig, advise_batch_size, load_machine_model

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"
SHUFFLE_MODEL_PATH = Path(__file__).resolve().parents[1] / "BENCH_shuffle.json"

N_QUERIES = 24
RANK_COUNTS = (1, 4)


def _workload(tmp):
    com = synthetic_community(n_genomes=4, genome_length=2400, seed=47)
    db = synthetic_nt_database(
        com, n_decoys=2, decoy_length=1200, homolog_rate=0.05, seed=48)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=2000)
    reads = list(shred_records(com.genomes))[:N_QUERIES]
    options = BlastOptions.blastn(evalue=1e-4, max_hits=25)
    return str(alias_path), reads, options


def _run_stream(alias_path, reads, options, nprocs, max_batch):
    cfg = ServeConfig(
        alias_path=alias_path, nprocs=nprocs, options=options,
        backend="thread", max_batch=max_batch, max_delay=0.002,
        idle_tick=0.02, max_pending=4 * N_QUERIES,
    )
    svc = QueryService(cfg).start()
    try:
        t0 = time.perf_counter()
        submitted = []
        for rec in reads:
            submitted.append((svc.submit(rec), time.perf_counter()))
        resolved = {}
        while len(resolved) < len(submitted):
            svc.pump(wait=0.005)
            now = time.perf_counter()
            for i, (fut, _t) in enumerate(submitted):
                if i not in resolved and fut.done():
                    resolved[i] = now
            if svc._coalescer.pending and not svc._inflight:
                svc.flush()
        t_end = time.perf_counter()
        latencies = [resolved[i] - t for i, (_f, t) in enumerate(submitted)]
        assert all(fut.result(timeout=0.0) is not None for fut, _ in submitted)
        stats = dict(svc.stats)
    finally:
        svc.close()
    lat_ms = np.asarray(latencies) * 1e3
    return {
        "nprocs": nprocs,
        "max_batch": max_batch,
        "queries": len(reads),
        "batches": stats["batches"],
        "qps": len(reads) / (t_end - t0),
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
        "wall_s": t_end - t0,
    }


def _pilot_per_query_seconds(alias_path, reads, options):
    """Serial cost of one query through the resident pipeline (measured)."""
    cfg = ServeConfig(
        alias_path=alias_path, nprocs=1, options=options, backend="thread",
        max_batch=1, max_delay=0.0, idle_tick=0.02)
    svc = QueryService(cfg).start()
    try:
        fut = svc.submit(reads[0])  # warmup: partition open + lookup build
        svc.drain(timeout=60.0)
        t0 = time.perf_counter()
        for rec in reads[1:5]:
            svc.submit(rec)
        svc.drain(timeout=60.0)
        per_query = (time.perf_counter() - t0) / 4
        fut.result(timeout=0.0)
    finally:
        svc.close()
    return per_query


def test_service_micro_batching(tmp_path, print_table):
    alias_path, reads, options = _workload(tmp_path)
    per_query_s = _pilot_per_query_seconds(alias_path, reads, options)
    model = load_machine_model(str(SHUFFLE_MODEL_PATH), backend="thread")

    runs = {}
    advice = {"per_query_seconds": per_query_s, "alpha_s": model["alpha_s"]}
    for nprocs in RANK_COUNTS:
        advised = max(4, advise_batch_size(
            model, nprocs, per_query_s, max_batch=N_QUERIES // 2))
        advice[f"advised@{nprocs}"] = advised
        runs[f"batch1@{nprocs}"] = _run_stream(
            alias_path, reads, options, nprocs, max_batch=1)
        runs[f"micro@{nprocs}"] = _run_stream(
            alias_path, reads, options, nprocs, max_batch=advised)

    rows = []
    for nprocs in RANK_COUNTS:
        for mode in ("batch1", "micro"):
            r = runs[f"{mode}@{nprocs}"]
            rows.append([
                str(nprocs), mode, str(r["max_batch"]), str(r["batches"]),
                f"{r['qps']:.1f}", f"{r['p50_ms']:.1f}", f"{r['p99_ms']:.1f}",
            ])
    print_table(
        f"Resident service, {N_QUERIES} queries (thread backend)",
        ["ranks", "mode", "max_batch", "batches", "qps", "p50 ms", "p99 ms"],
        rows,
    )

    doc = {"n_queries": N_QUERIES, "advice": advice, "runs": runs}
    RESULTS_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # Micro-batching actually dispatched fewer, fuller jobs...
    for nprocs in RANK_COUNTS:
        assert runs[f"micro@{nprocs}"]["batches"] < runs[f"batch1@{nprocs}"]["batches"]
    # ...and that is worth real throughput where the per-job fixed cost is
    # highest: at 4 ranks every job pays multi-rank dispatch + collectives.
    assert runs["micro@4"]["qps"] > runs["batch1@4"]["qps"], (
        f"micro-batching {runs['micro@4']['qps']:.1f} qps did not beat "
        f"one-block-per-query {runs['batch1@4']['qps']:.1f} qps at 4 ranks"
    )
