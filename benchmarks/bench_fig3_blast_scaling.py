"""Figure 3: MR-MPI BLAST wall-clock vs cores for four query-set series.

Regenerates the chart's data series on the Ranger model and benchmarks the
full sweep.  Shape assertions encode the paper's claims so a regression in
the model fails the bench, not just changes a number silently.
"""

from repro.figures.blast_scaling import fig3_blast_scaling

CORES = (32, 64, 128, 256, 512, 1024)


def test_fig3_series(benchmark, print_table):
    series = benchmark(fig3_blast_scaling, CORES)

    rows = [
        [name] + [f"{p.wall_minutes:.1f}" for p in pts] for name, pts in series.items()
    ]
    print_table(
        "Fig. 3 — wall-clock minutes vs cores (log-log in the paper)",
        ["series \\ cores"] + [str(c) for c in CORES],
        rows,
    )

    # Every series speeds up monotonically with cores.
    for pts in series.values():
        walls = [p.wall_minutes for p in pts]
        assert all(a >= b for a, b in zip(walls, walls[1:]))
    # Bigger inputs take longer at every core count (1000-seq series).
    for c_idx in range(len(CORES)):
        assert (
            series["12K"][c_idx].wall_minutes
            < series["40K"][c_idx].wall_minutes
            < series["80K"][c_idx].wall_minutes
        )
    # "The large core counts are only efficient for large input datasets":
    # the 12K series gains almost nothing from 512 -> 1024 cores while the
    # 80K series still improves.
    gain_12k = series["12K"][4].wall_minutes / series["12K"][5].wall_minutes
    gain_80k = series["80K"][4].wall_minutes / series["80K"][5].wall_minutes
    assert gain_12k < 1.1
    assert gain_80k > 1.2
