"""Shared benchmark fixtures and table printing."""

import pytest

from repro.figures.report import format_table


@pytest.fixture
def print_table(capsys):
    """Print a labelled table so ``pytest benchmarks/ -s`` shows the series
    each figure bench regenerates (EXPERIMENTS.md records the same data)."""

    def _print(title, headers, rows):
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(format_table(headers, rows))

    return _print
