"""Why the paper parallelises the *batch* SOM, quantified.

§II.D: the batch formulation "is not influenced by the order in which the
input vectors are presented" and "maps very well to the coarse-grained
parallelism model of the MapReduce", while the online rule updates the
codebook after every vector — a serial dependency that defeats data-
parallel decomposition.  This bench shows the two trainers reach comparable
map quality, while only batch training decomposes (and it is also faster
serially here, being fully vectorised per epoch).
"""

import numpy as np
import pytest

from repro.som import BatchSOM, OnlineSOM, SOMGrid, quantization_error, topographic_error


@pytest.fixture(scope="module")
def rgb_data():
    return np.random.default_rng(17).random((400, 3))


GRID = (14, 14)
EPOCHS = 12


def test_bench_batch_som(benchmark, rgb_data, print_table):
    def train():
        return BatchSOM(SOMGrid(*GRID), dim=3).train(rgb_data, epochs=EPOCHS)

    codebook = benchmark.pedantic(train, rounds=3, iterations=1)
    qe = quantization_error(rgb_data, codebook)
    te = topographic_error(rgb_data, codebook, SOMGrid(*GRID))
    print_table(
        "batch SOM quality",
        ["metric", "value"],
        [["quantization error", f"{qe:.4f}"], ["topographic error", f"{te:.4f}"]],
    )
    assert qe < 0.12


def test_bench_online_som(benchmark, rgb_data, print_table):
    def train():
        return OnlineSOM(SOMGrid(*GRID), dim=3).train(rgb_data, epochs=EPOCHS)

    codebook = benchmark.pedantic(train, rounds=3, iterations=1)
    qe = quantization_error(rgb_data, codebook)
    print_table("online SOM quality", ["metric", "value"],
                [["quantization error", f"{qe:.4f}"]])
    assert qe < 0.15


def test_quality_comparable_but_only_batch_decomposes(benchmark, rgb_data, print_table):
    grid = SOMGrid(*GRID)
    batch_cb = benchmark.pedantic(
        lambda: BatchSOM(grid, dim=3).train(rgb_data, epochs=EPOCHS),
        rounds=1,
        iterations=1,
    )
    online_cb = OnlineSOM(grid, dim=3).train(rgb_data, epochs=EPOCHS)
    qe_batch = quantization_error(rgb_data, batch_cb)
    qe_online = quantization_error(rgb_data, online_cb)
    print_table(
        "batch vs online",
        ["trainer", "quantization error"],
        [["batch", f"{qe_batch:.4f}"], ["online", f"{qe_online:.4f}"]],
    )
    # Comparable quality (within 2x of each other).
    assert qe_batch < 2 * qe_online and qe_online < 2.5 * qe_batch

    # Order invariance: the decomposability premise holds for batch only.
    perm = np.random.default_rng(1).permutation(rgb_data.shape[0])
    batch_perm = BatchSOM(grid, dim=3).train(rgb_data[perm], epochs=EPOCHS)
    online_perm = OnlineSOM(grid, dim=3).train(rgb_data[perm], epochs=EPOCHS)
    assert np.allclose(batch_cb, batch_perm, atol=1e-8)
    assert not np.allclose(online_cb, online_perm, atol=1e-8)
