"""In-text §IV.A: the JCVI HTC (VICS workflow) comparison.

Paper: "the user CPU utilisation was similar ... The longest VICS job took
about the same wall clock time as our run at 1024 cores" (on ~2-years-newer
hardware, 960 serial jobs).
"""

from repro.figures.comparisons import htc_comparison


def test_htc_comparison(benchmark, print_table):
    result = benchmark(htc_comparison)

    print_table(
        "§IV.A — HTC workflow (960 serial jobs) vs 1024-core MR-MPI",
        ["metric", "value"],
        [
            ["MR-MPI wall (min)", f"{result.mrmpi_wall_minutes:.0f}"],
            ["HTC longest job (min)", f"{result.htc_longest_job_minutes:.0f}"],
            ["wall ratio (paper: ~1)", f"{result.wall_ratio:.2f}"],
            ["HTC total core-hours", f"{result.htc_total_core_hours:.0f}"],
            ["MR-MPI total core-hours", f"{result.mrmpi_total_core_hours:.0f}"],
        ],
    )

    # "About the same wall clock time": within a factor of ~1.5 either way.
    assert 0.6 < result.wall_ratio < 1.6
    # Total CPU consumption is in the same ballpark too (both run the same
    # search; HTC cores are modelled newer/faster).
    assert result.htc_total_core_hours < result.mrmpi_total_core_hours
