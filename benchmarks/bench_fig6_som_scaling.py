"""Figure 6: MR-MPI batch SOM scaling (81 920 × 256-d vectors, 50×50 map).

Paper anchors: excellent linear scaling across all core counts; 96 %
efficiency at 1024 cores relative to 32; 80-vector work units produce
identical timings to 40-vector units.
"""

from repro.figures.som_scaling import fig6_som_scaling

CORES = (32, 64, 128, 256, 512, 1024)


def test_fig6_som_scaling(benchmark, print_table):
    points = benchmark(fig6_som_scaling, CORES)

    print_table(
        "Fig. 6 — batch SOM wall-clock and efficiency",
        ["cores", "wall minutes", "efficiency vs 32"],
        [[p.cores, f"{p.wall_minutes:.2f}", f"{p.efficiency_vs_32:.3f}"] for p in points],
    )

    walls = [p.wall_minutes for p in points]
    assert all(a > b for a, b in zip(walls, walls[1:]))
    # Paper anchor: 96 % efficiency at 1024 cores vs 32.
    assert points[-1].efficiency_vs_32 > 0.93
    # Near-linear everywhere.
    assert min(p.efficiency_vs_32 for p in points) > 0.9


def test_fig6_block_size_insensitive(benchmark, print_table):
    """Work units of 80 vectors 'produced the identical timings'."""
    p40 = benchmark(lambda: fig6_som_scaling(cores_list=(512,), block_rows=40)[0])
    p80 = fig6_som_scaling(cores_list=(512,), block_rows=80)[0]
    print_table(
        "Fig. 6 note — block-size sensitivity at 512 cores",
        ["block rows", "wall minutes"],
        [[40, f"{p40.wall_minutes:.3f}"], [80, f"{p80.wall_minutes:.3f}"]],
    )
    assert abs(p40.wall_minutes - p80.wall_minutes) / p40.wall_minutes < 0.02
