"""In-text §IV.A: protein BLAST scaling (512 vs 1024 cores).

Paper anchors: "the 1024 core run used only 6% more core*min per query
compared to the 512 core run (294 min absolute wall clock time using 1024
cores)".
"""

from repro.figures.blast_scaling import protein_scaling_result


def test_protein_scaling(benchmark, print_table):
    result = benchmark(protein_scaling_result)

    print_table(
        "§IV.A — protein BLAST (env_nr subset vs UniRef100, 58 partitions)",
        ["metric", "paper", "measured"],
        [
            ["wall @512 cores (min)", "-", f"{result.wall_512_minutes:.0f}"],
            ["wall @1024 cores (min)", "294", f"{result.wall_1024_minutes:.0f}"],
            ["extra core-min/query at 1024", "+6%", f"+{result.extra_cost_percent:.1f}%"],
        ],
    )

    assert 240 < result.wall_1024_minutes < 350
    assert 0 < result.extra_cost_percent < 12
    # Doubling cores nearly halves the wall time (CPU-bound workload).
    speedup = result.wall_512_minutes / result.wall_1024_minutes
    assert speedup > 1.75
