"""Stage-1 seeding: CSR lookup tables and the cross-partition lookup cache.

Two claims from the seeding overhaul, measured rather than asserted:

1. The flat CSR builders/scanners beat the kept-as-reference dict
   implementations — most visibly the blastp neighbourhood build, which the
   process-wide BLOSUM neighbour table turns from per-position cube
   enumeration into one gather (≥ 3× on a 10 kb-residue block).
2. On a multi-partition ``mrblast_spmd`` run with locality-aware dispatch,
   the per-rank lookup cache removes the per-work-unit block + lookup
   rebuild, cutting end-to-end wall time ≥ 2× when the fixed cost dominates
   (the Fig. 4/Fig. 5 regime the paper analyses).

Results land in ``BENCH_seeding.json`` at the repo root so later PRs have a
perf trajectory to regress against.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bio import SeqRecord, mutate_dna, random_genome, random_protein
from repro.bio.alphabet import DNA, PROTEIN
from repro.blast import BlastOptions, format_database
from repro.blast.lookup import (
    NucleotideLookup,
    ProteinLookup,
    QueryBlock,
    ReferenceNucleotideLookup,
    ReferenceProteinLookup,
    _neighbor_csr,
)
from repro.core import MrBlastConfig, mrblast_spmd

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_seeding.json"


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record(key, payload):
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_lookup_build_and_scan(benchmark, print_table):
    """Reference dict vs CSR: build and scan cost for both programs."""
    prot = [SeqRecord(f"q{i}", random_protein(500, seed_or_rng=100 + i)) for i in range(20)]
    pblock = QueryBlock(prot, "blastp", use_mask=False)
    psubject = PROTEIN.encode(random_protein(2000, seed_or_rng=9))

    nt = [SeqRecord(f"n{i}", random_genome(2000, seed_or_rng=200 + i)) for i in range(10)]
    nblock = QueryBlock(nt, "blastn", use_mask=False)
    nsubject = DNA.encode(random_genome(3000, seed_or_rng=5))

    _neighbor_csr(11)  # steady state: the per-process neighbour table is warm
    t_pref, ref_p = _best_of(lambda: ReferenceProteinLookup(pblock), repeats=1)
    t_pcsr, csr_p = _best_of(lambda: ProteinLookup(pblock))
    t_nref, ref_n = _best_of(lambda: ReferenceNucleotideLookup(nblock))
    t_ncsr, csr_n = _best_of(lambda: NucleotideLookup(nblock))

    def scan_many(lut, subject, n=10):
        for _ in range(n):
            out = lut.scan(subject)
        return out

    t_psref, (rq, rs) = _best_of(lambda: scan_many(ref_p, psubject))
    t_pscsr, (cq, cs) = _best_of(lambda: scan_many(csr_p, psubject))
    assert (rq == cq).all() and (rs == cs).all()
    t_nsref, _ = _best_of(lambda: scan_many(ref_n, nsubject))
    t_nscsr, _ = _best_of(lambda: scan_many(csr_n, nsubject))

    build_speedup_p = t_pref / t_pcsr
    rows = [
        ["blastp build (10k aa)", f"{t_pref * 1e3:.1f}", f"{t_pcsr * 1e3:.1f}",
         f"{build_speedup_p:.1f}x"],
        ["blastp scan (2k aa x10)", f"{t_psref * 1e3:.1f}", f"{t_pscsr * 1e3:.1f}",
         f"{t_psref / t_pscsr:.1f}x"],
        ["blastn build (20k nt)", f"{t_nref * 1e3:.1f}", f"{t_ncsr * 1e3:.1f}",
         f"{t_nref / t_ncsr:.1f}x"],
        ["blastn scan (3k nt x10)", f"{t_nsref * 1e3:.1f}", f"{t_nscsr * 1e3:.1f}",
         f"{t_nsref / t_nscsr:.1f}x"],
    ]
    print_table("Stage-1 lookup: reference dict vs CSR (ms)",
                ["stage", "reference", "CSR", "speedup"], rows)

    _record("lookup", {
        "protein_build_ref_s": t_pref,
        "protein_build_csr_s": t_pcsr,
        "protein_build_speedup": build_speedup_p,
        "protein_scan_speedup": t_psref / t_pscsr,
        "nt_build_ref_s": t_nref,
        "nt_build_csr_s": t_ncsr,
        "nt_build_speedup": t_nref / t_ncsr,
        "nt_scan_speedup": t_nsref / t_nscsr,
    })
    # Acceptance: >= 3x on the 10 kb-residue protein build.
    assert build_speedup_p >= 3.0

    benchmark.pedantic(lambda: ProteinLookup(pblock), rounds=3, iterations=1)


@pytest.fixture(scope="module")
def cache_workload(tmp_path_factory):
    """Many small partitions x several large blocks: fixed cost dominates."""
    tmp = tmp_path_factory.mktemp("seedcache")
    db = [SeqRecord(f"s{i}", random_genome(4000, seed_or_rng=600 + i)) for i in range(12)]
    alias = format_database(db, tmp / "db", "db", kind="dna", max_volume_bytes=1024)
    blocks = []
    for b in range(4):
        recs = [
            SeqRecord(f"q{b}_{i}", random_genome(5000, seed_or_rng=40 * b + i))
            for i in range(19)
        ]
        recs.append(
            SeqRecord(f"q{b}_hom", mutate_dna(db[b].seq[500:1500], 0.03, seed_or_rng=900 + b))
        )
        blocks.append(recs)
    # High ungapped cutoff keeps chance 11-mer hits out of the gapped stage,
    # isolating the per-unit fixed cost the cache removes; the planted
    # homologs still align end to end.
    options = BlastOptions.blastn(evalue=1e-4, ungapped_cutoff_bits=30.0)
    return str(alias), blocks, options, tmp


def test_lookup_cache_end_to_end(cache_workload, print_table):
    alias_path, blocks, options, tmp = cache_workload

    def run(cache_blocks, out):
        cfg = MrBlastConfig(
            alias_path=alias_path,
            query_blocks=blocks,
            options=options,
            output_dir=str(tmp / out),
            locality_aware=True,
            lookup_cache_blocks=cache_blocks,
        )
        t0 = time.perf_counter()
        results = mrblast_spmd(3, cfg)
        return time.perf_counter() - t0, results

    run(8, "warmup")  # warm the OS file cache and the neighbour table
    w_un, r_un = min(run(0, f"un{i}") for i in range(2))
    w_ca, r_ca = min(run(8, f"ca{i}") for i in range(2))

    cache_hits = sum(r.lookup_cache_hits for r in r_ca)
    speedup = w_un / w_ca
    rows = [
        ["uncached (rebuild per unit)", f"{w_un:.2f}",
         f"{sum(r.seed_seconds for r in r_un):.2f}", 0,
         sum(r.hits_written for r in r_un)],
        ["cached (8 blocks/rank)", f"{w_ca:.2f}",
         f"{sum(r.seed_seconds for r in r_ca):.2f}", cache_hits,
         sum(r.hits_written for r in r_ca)],
    ]
    print_table(
        f"Cross-partition lookup cache, 4 blocks x 12 partitions ({speedup:.2f}x)",
        ["configuration", "wall s", "seed s", "cache hits", "hits"], rows)

    # Same hits either way; the cache is purely a fixed-cost optimisation.
    assert sum(r.hits_written for r in r_un) == sum(r.hits_written for r in r_ca) > 0

    _record("mrblast_cache", {
        "uncached_wall_s": w_un,
        "cached_wall_s": w_ca,
        "end_to_end_speedup": speedup,
        "lookup_cache_hits": cache_hits,
        "n_blocks": len(blocks),
        "n_partitions": 12,
        "nprocs": 3,
    })
    assert cache_hits > 0
    # Acceptance: >= 2x end to end with locality-aware dispatch.
    assert speedup >= 2.0
