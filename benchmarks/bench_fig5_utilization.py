"""Figure 5: useful CPU utilisation during the 1024-core protein BLAST run.

The paper's curve: a high plateau (protein BLAST is CPU-bound) with a taper
at the very end as the remaining work units run out and cores idle.  The
second test grounds the simulated curve in measurement: a real (small)
``mrblast_spmd`` run reporting where map time actually goes, stage by stage
— the seed share is what the lookup cache removes.
"""

import json
from pathlib import Path

from repro.figures.utilization import fig5_utilization

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_fig5.json"


def _record(key, payload):
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_fig5_utilization_trace(benchmark, print_table):
    trace = benchmark(fig5_utilization, 1024, 100)

    rows = [
        [f"{m:.0f}", f"{u:.3f}"]
        for m, u in zip(trace.minutes[::10], trace.utilization[::10])
    ]
    print_table("Fig. 5 — useful CPU utilisation vs wall-clock minute", ["minute", "utilisation"], rows)

    assert trace.plateau > 0.9, "protein BLAST should run a high utilisation plateau"
    assert trace.utilization.max() <= 1.0 + 1e-9
    # Taper confined to the tail of the run.
    assert trace.taper_start_fraction > 0.7
    # Final bins show substantial idling (cores out of work).
    assert trace.utilization[-1] < 0.5 * trace.plateau
    # Utilisation is roughly flat over the middle (no mid-run starvation).
    mid = trace.utilization[len(trace.utilization) // 4 : 3 * len(trace.utilization) // 4]
    assert mid.min() > 0.85 * trace.plateau


import pytest


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_stage_breakdown_measured(tmp_path, print_table, backend):
    """Per-stage map-time breakdown from a real locality-aware run.

    The utilisation story above is simulated; this run measures the stage
    shares (seed / ungapped / gapped) the overhaul instrumented, and shows
    the cross-partition lookup cache actually firing (hits > 0) under
    locality-aware dispatch.  Runs on both transport backends: the stage
    accounting crosses the exit pipe with the results, so the breakdown is
    equally observable when ranks are processes.
    """
    from repro.bio import SeqRecord, random_protein
    from repro.blast import BlastOptions, format_database
    from repro.core import MrBlastConfig, mrblast_spmd

    ancestors = [random_protein(260, seed_or_rng=10 + f) for f in range(4)]
    db = []
    for f, anc in enumerate(ancestors):
        for m in range(3):
            db.append(SeqRecord(f"fam{f}_m{m}", anc))
    alias = format_database(db, tmp_path / "db", "db", kind="protein",
                            max_volume_bytes=1024)
    queries = [SeqRecord(f"q{f}", anc[20:220]) for f, anc in enumerate(ancestors)]

    cfg = MrBlastConfig(
        alias_path=str(alias),
        query_blocks=[queries[:2], queries[2:]],
        options=BlastOptions.blastp(evalue=1e-3),
        output_dir=str(tmp_path / "out"),
        locality_aware=True,
        lookup_cache_blocks=4,
        backend=backend,
    )
    results = mrblast_spmd(3, cfg)

    seed = sum(r.seed_seconds for r in results)
    ungapped = sum(r.ungapped_seconds for r in results)
    gapped = sum(r.gapped_seconds for r in results)
    busy = sum(r.busy_seconds for r in results)
    hits = sum(r.lookup_cache_hits for r in results)
    other = max(busy - seed - ungapped - gapped, 0.0)

    def row(stage, secs):
        return [stage, f"{secs * 1e3:.1f}", f"{secs / busy:.1%}" if busy else "-"]

    print_table(
        f"Measured map-stage breakdown [{backend}] (lookup cache hits: {hits})",
        ["stage", "ms (all ranks)", "share of busy"],
        [row("seed (block + lookup + scan)", seed),
         row("ungapped extension", ungapped),
         row("gapped extension", gapped),
         row("other (culling, stats, I/O)", other)],
    )

    assert sum(r.hits_written for r in results) > 0
    assert hits > 0, "locality-aware sweeps should reuse cached lookups"
    assert 0.0 < seed + ungapped + gapped <= busy + 1e-6

    key = "stage_breakdown" if backend == "thread" else f"stage_breakdown@{backend}"
    _record(key, {
        "seed_s": seed,
        "ungapped_s": ungapped,
        "gapped_s": gapped,
        "busy_s": busy,
        "lookup_cache_hits": hits,
        # Robustness counters surface in the same per-run record: this is a
        # clean run, so they document the zero baseline.
        "faults_injected": sum(r.faults_injected for r in results),
        "retries": max(r.retries for r in results),
        "quarantined_units": sum(r.quarantined_units for r in results),
        "map_failures": sum(r.map_failures for r in results),
        "resumed_from_iteration": max(r.resumed_from_iteration for r in results),
        # Columnar data-plane traffic: pairs and exact bytes this run staged
        # for other ranks during the aggregate exchange.
        "shuffle_pairs_moved": sum(r.shuffle_pairs_moved for r in results),
        "shuffle_bytes_moved": sum(r.shuffle_bytes_moved for r in results),
        # Fused-scheduler telemetry: rounds across all ranks and the largest
        # per-round intermediate slab any work unit held.
        "fused_rounds": sum(r.fused_rounds for r in results),
        "peak_slab_bytes_per_round": max(r.peak_slab_bytes for r in results),
    })


def test_trace_overhead_and_fidelity(tmp_path, print_table):
    """Tracing the Fig. 5 run must be nearly free and perfectly faithful.

    Measures the wall-clock overhead of running the stage-breakdown
    workload with full tracing on (best of 2 each way, recorded in
    ``BENCH_fig5.json``), validates the exported Chrome JSON with the
    exporter's own schema checker, and asserts the Fig. 5 utilisation
    numbers recomputed from the trace alone equal the counter-derived
    ones exactly.
    """
    import time

    from repro.bio import SeqRecord, random_protein
    from repro.blast import BlastOptions, format_database
    from repro.core import MrBlastConfig, mrblast_spmd
    from repro.obs.export import validate_chrome_trace
    from repro.obs.report import utilization_report
    from repro.obs.trace import TraceSession

    ancestors = [random_protein(260, seed_or_rng=10 + f) for f in range(4)]
    db = []
    for f, anc in enumerate(ancestors):
        for m in range(3):
            db.append(SeqRecord(f"fam{f}_m{m}", anc))
    alias = format_database(db, tmp_path / "db", "db", kind="protein",
                            max_volume_bytes=1024)
    queries = [SeqRecord(f"q{f}", anc[20:220]) for f, anc in enumerate(ancestors)]

    def config(tag, trace_path=None):
        return MrBlastConfig(
            alias_path=str(alias),
            query_blocks=[queries[:2], queries[2:]],
            options=BlastOptions.blastp(evalue=1e-3),
            output_dir=str(tmp_path / tag),
            locality_aware=True,
            lookup_cache_blocks=4,
            trace_path=trace_path,
        )

    # Best-of-2 each way: the minimum filters scheduler noise on a run
    # this small far better than a mean would.
    plain_s = []
    for i in range(2):
        t0 = time.perf_counter()
        mrblast_spmd(3, config(f"plain{i}"))
        plain_s.append(time.perf_counter() - t0)
    traced_s = []
    session = None
    results = None
    for i in range(2):
        session = TraceSession(3)
        t0 = time.perf_counter()
        results = mrblast_spmd(3, config(f"traced{i}"), trace=session)
        traced_s.append(time.perf_counter() - t0)

    overhead = (min(traced_s) - min(plain_s)) / min(plain_s)

    # Export is post-processing, outside the measured run.
    from repro.obs.export import write_chrome_trace

    write_chrome_trace(tmp_path / "trace.json", session)
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert validate_chrome_trace(doc) == []
    n_events = len(doc["traceEvents"])

    # Fig. 5 utilisation from the trace alone == counter-derived, exactly.
    rep = utilization_report(session)
    assert rep["stage_totals"]["busy_s"] == sum(r.busy_seconds for r in results)
    assert rep["stage_totals"]["seed_s"] == sum(r.seed_seconds for r in results)
    assert rep["stage_totals"]["units"] == sum(r.units_processed for r in results)
    assert rep["phase_totals_s"]["map"] == sum(r.map_seconds for r in results)
    assert rep["straggler_rank"] in range(3)

    print_table(
        "Tracing overhead on the Fig. 5 stage-breakdown run",
        ["variant", "best-of-2 s", "events"],
        [["untraced", f"{min(plain_s):.3f}", "-"],
         ["traced", f"{min(traced_s):.3f}", str(n_events)],
         ["overhead", f"{overhead:+.1%}", "-"]],
    )

    # Generous CI bound: the acceptance target is < 5% on the real bench;
    # a sub-second unit-test run needs headroom for scheduler noise.
    assert overhead < 0.15, f"tracing overhead {overhead:.1%} too high"

    _record("trace_overhead", {
        "untraced_best_s": min(plain_s),
        "traced_best_s": min(traced_s),
        "overhead_fraction": overhead,
        "trace_events": n_events,
        "mean_utilization": rep["mean_utilization"],
        "makespan_s": rep["makespan_s"],
    })
