"""Figure 5: useful CPU utilisation during the 1024-core protein BLAST run.

The paper's curve: a high plateau (protein BLAST is CPU-bound) with a taper
at the very end as the remaining work units run out and cores idle.
"""

from repro.figures.utilization import fig5_utilization


def test_fig5_utilization_trace(benchmark, print_table):
    trace = benchmark(fig5_utilization, 1024, 100)

    rows = [
        [f"{m:.0f}", f"{u:.3f}"]
        for m, u in zip(trace.minutes[::10], trace.utilization[::10])
    ]
    print_table("Fig. 5 — useful CPU utilisation vs wall-clock minute", ["minute", "utilisation"], rows)

    assert trace.plateau > 0.9, "protein BLAST should run a high utilisation plateau"
    assert trace.utilization.max() <= 1.0 + 1e-9
    # Taper confined to the tail of the run.
    assert trace.taper_start_fraction > 0.7
    # Final bins show substantial idling (cores out of work).
    assert trace.utilization[-1] < 0.5 * trace.plateau
    # Utilisation is roughly flat over the middle (no mid-run starvation).
    mid = trace.utilization[len(trace.utilization) // 4 : 3 * len(trace.utilization) // 4]
    assert mid.min() > 0.85 * trace.plateau
