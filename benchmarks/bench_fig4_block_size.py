"""Figure 4: core-minutes per query for 1000- vs 2000-seq query blocks.

The paper's anchors: 167 % efficiency at 128 cores relative to 32 (the DB
begins to fit the combined RAM), 95 % relative efficiency at 1024 cores,
and the block-size crossover (big blocks win at low core counts, small
blocks win at high core counts).
"""

from repro.figures.blast_scaling import fig4_block_size

CORES = (32, 64, 128, 256, 512, 1024)


def test_fig4_block_size(benchmark, print_table):
    series = benchmark(fig4_block_size, CORES)

    rows = [
        [name] + [f"{p.core_minutes_per_query * 1000:.2f}" for p in pts]
        for name, pts in series.items()
    ]
    print_table(
        "Fig. 4 — core-minutes per 1000 queries (80K query set)",
        ["series \\ cores"] + [str(c) for c in CORES],
        rows,
    )

    small = series["80 blocks x 1000"]
    big = series["40 blocks x 2000"]

    # Paper anchor: superlinear region at 128 cores (167 % in the paper).
    eff128 = small[0].core_minutes_per_query / small[2].core_minutes_per_query
    assert 1.5 < eff128 < 1.9, f"eff(128 vs 32) = {eff128:.2f}, paper says 1.67"

    # Paper anchor: ~95 % relative efficiency at 1024 cores.
    eff1024 = small[0].core_minutes_per_query / small[5].core_minutes_per_query
    assert 0.85 < eff1024 < 1.05, f"eff(1024 vs 32) = {eff1024:.2f}, paper says 0.95"

    # Crossover: larger work units are cheaper at 32 cores, more expensive
    # at 1024 (worse load balancing with fewer units).
    assert big[0].core_minutes_per_query < small[0].core_minutes_per_query
    assert big[5].core_minutes_per_query > small[5].core_minutes_per_query

    # Cache regime change underlies the superlinear region.
    assert small[1].cache_hit_rate < 0.05   # 64 cores: DB exceeds cache
    assert small[2].cache_hit_rate > 0.90   # 128 cores: DB fits
