"""Columnar vs object data-plane throughput (regenerates BENCH_shuffle.json).

One synthetic Fig. 5-scale workload — hundreds of thousands of small
(query id, record) pairs — pushed through emit → aggregate → convert →
reduce on both planes at 1/4/8 ranks.  Reported per stage: pairs/sec
(total pairs over the slowest rank's stage time) and bytes actually staged
for other ranks.  The acceptance bar for the columnar overhaul is ≥5×
pairs/sec on the two shuffle-bound stages, aggregate and convert.
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.mpi import run_spmd
from repro.mrmpi import MapReduce, MapStyle, RecordSchema

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_shuffle.json"

#: total pairs across all ranks; override for smoke runs
TOTAL_PAIRS = int(os.environ.get("BENCH_SHUFFLE_PAIRS", "120000"))
N_KEYS = 1500
RANK_COUNTS = (1, 4, 8)

VALUE_DTYPE = np.dtype(
    [("score", "<i8"), ("pos", "<i8"), ("bit", "<f8"), ("evalue", "<f8")]
)
SCHEMA = RecordSchema(key_dtype="S8", value_dtype=VALUE_DTYPE, key_kind="str")
KEYTAB = np.array([f"q{k:06d}".encode() for k in range(N_KEYS)], dtype="S8")


def _pipeline(comm, columnar):
    """Emit → aggregate → convert → reduce; returns rank-0 timings/traffic."""
    mr = MapReduce(
        comm, mapstyle=MapStyle.CHUNK, schema=SCHEMA if columnar else None
    )
    per_rank = TOTAL_PAIRS // comm.size

    def columnar_mapper(itask, item, kv):
        rng = np.random.default_rng(1000 + itask)
        kids = rng.integers(N_KEYS, size=per_rank)
        rows = np.empty(per_rank, dtype=VALUE_DTYPE)
        rows["score"] = kids
        rows["pos"] = np.arange(per_rank)
        rows["bit"] = rng.random(per_rank)
        rows["evalue"] = rng.random(per_rank)
        kv.add_batch(KEYTAB[kids], rows)

    def object_mapper(itask, item, kv):
        rng = np.random.default_rng(1000 + itask)
        kids = rng.integers(N_KEYS, size=per_rank)
        bits = rng.random(per_rank)
        evalues = rng.random(per_rank)
        for j in range(per_rank):
            kv.add(
                f"q{kids[j]:06d}",
                (int(kids[j]), j, float(bits[j]), float(evalues[j])),
            )

    try:
        mr.map_items(
            list(range(comm.size)), columnar_mapper if columnar else object_mapper
        )
        npairs = comm.allreduce(len(mr.kv))
        mr.aggregate()
        mr.convert()
        mr.reduce(lambda k, vs, kv: kv.add(k, len(vs)), out_schema=None)
        nkeys = comm.allreduce(len(mr.kv))
        # slowest rank bounds every collective stage
        slowest = {
            phase: max(comm.allreduce([mr.timers.get(phase, 0.0)]))
            for phase in ("map", "aggregate", "convert", "reduce")
        }
        shuffle = mr.shuffle_stats()
        if comm.rank != 0:
            return None
        return {"npairs": npairs, "nkeys": nkeys, "seconds": slowest, "shuffle": shuffle}
    finally:
        mr.close()


def _run(nprocs, columnar):
    out = run_spmd(nprocs, _pipeline, columnar)[0]
    stages = {}
    for phase in ("map", "aggregate", "convert", "reduce"):
        secs = out["seconds"][phase]
        moved = out["shuffle"].get(phase, {"pairs_moved": 0, "bytes_moved": 0})
        stages[phase] = {
            "seconds": secs,
            "pairs_per_sec": out["npairs"] / secs if secs > 0 else None,
            "pairs_moved": moved["pairs_moved"],
            "bytes_moved": moved["bytes_moved"],
        }
    return {"npairs": out["npairs"], "nkeys": out["nkeys"], "stages": stages}


def test_shuffle_throughput(print_table):
    results = {}
    for nprocs in RANK_COUNTS:
        for plane in ("object", "columnar"):
            results[f"{plane}@{nprocs}"] = _run(nprocs, plane == "columnar")

    rows = []
    for nprocs in RANK_COUNTS:
        for phase in ("map", "aggregate", "convert", "reduce"):
            obj = results[f"object@{nprocs}"]["stages"][phase]
            col = results[f"columnar@{nprocs}"]["stages"][phase]
            speedup = (
                col["pairs_per_sec"] / obj["pairs_per_sec"]
                if col["pairs_per_sec"] and obj["pairs_per_sec"]
                else float("nan")
            )
            rows.append([
                str(nprocs), phase,
                f"{obj['pairs_per_sec']:,.0f}" if obj["pairs_per_sec"] else "-",
                f"{col['pairs_per_sec']:,.0f}" if col["pairs_per_sec"] else "-",
                f"{speedup:.1f}x",
                f"{obj['bytes_moved']:,}", f"{col['bytes_moved']:,}",
            ])
    print_table(
        f"Shuffle throughput, {TOTAL_PAIRS:,} pairs ({N_KEYS} keys)",
        ["ranks", "stage", "obj pairs/s", "col pairs/s", "speedup",
         "obj bytes moved", "col bytes moved"],
        rows,
    )

    # Results must be plane-independent before any speed claim counts.
    for nprocs in RANK_COUNTS:
        assert (
            results[f"object@{nprocs}"]["nkeys"]
            == results[f"columnar@{nprocs}"]["nkeys"]
            == N_KEYS
        )

    # The acceptance bar: >=5x on the shuffle-bound stages at multi-rank
    # scale (single-rank aggregate barely moves data on either plane).
    for phase in ("aggregate", "convert"):
        obj = results["object@4"]["stages"][phase]["pairs_per_sec"]
        col = results["columnar@4"]["stages"][phase]["pairs_per_sec"]
        assert col >= 5 * obj, (
            f"{phase}: columnar {col:,.0f} pairs/s vs object {obj:,.0f} "
            f"pairs/s is below the 5x bar"
        )

    RESULTS_PATH.write_text(
        json.dumps(
            {"total_pairs": TOTAL_PAIRS, "n_keys": N_KEYS, "runs": results},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
