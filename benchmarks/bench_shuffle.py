"""Columnar vs object data-plane throughput (regenerates BENCH_shuffle.json).

One synthetic Fig. 5-scale workload — hundreds of thousands of small
(query id, record) pairs — pushed through emit → aggregate → convert →
reduce on both planes at 1/4/8 ranks, on both transport backends.
Reported per stage: pairs/sec (total pairs over the slowest rank's stage
time) and bytes actually staged for other ranks.  The acceptance bar for
the columnar overhaul is ≥5× pairs/sec on the two shuffle-bound stages,
aggregate and convert.

The process backend adds two result families:

- ``{plane}@{nprocs}@process`` runs (the legacy ``{plane}@{nprocs}`` keys
  stay thread-backend, so the series in EXPERIMENTS.md remains comparable);
- a per-backend Sanders/Mehlhorn machine-model fit ``t = α + n/β`` from a
  two-rank pingpong sweep, recorded under ``machine_model``.

The shared-arena fabric adds a third: ``{plane}@{nprocs}@process+arena``
runs and a ``process+arena`` machine model.  The plain ``@process`` keys
are re-measured with ``arena=False`` (the per-message shm path) in the
same run, and the fit asserts the arena is at least 2x better on *both*
axes — per-message latency α and asymptotic bandwidth β — than the
per-message model **recorded when that path shipped**
(:data:`RECORDED_PER_MESSAGE_MODEL`).  The bar is pinned to the recorded
numbers rather than the in-run re-fit because both paths bottom out on
the same pipe-wakeup latency floor, which wanders by ±50% run-to-run on
a loaded box: the re-fit is kept in the JSON for transparency, but a
flaky in-run α ratio would gate CI on scheduler luck.  β, which is
insensitive to the floor, must additionally beat the in-run re-fit 2x.

Run as a script for the CI smoke::

    python benchmarks/bench_shuffle.py --backend process --ranks 1 4 \
        --assert-scaling

which exercises the columnar pipeline per rank count and (on machines with
enough cores) asserts wall-clock actually drops as ranks are added — the
whole point of ranks-as-processes.
"""

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.mpi import run_spmd
from repro.mrmpi import MapReduce, MapStyle, RecordSchema

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_shuffle.json"

#: total pairs across all ranks; override for smoke runs
TOTAL_PAIRS = int(os.environ.get("BENCH_SHUFFLE_PAIRS", "120000"))
N_KEYS = 1500
RANK_COUNTS = (1, 4, 8)

#: measured transport variants: (result-key suffix tail, backend, arena flag).
#: ``process`` pins the per-message shm path so the ``process+arena`` rows
#: quantify exactly what the arena buys on the same machine, same run.
VARIANTS = (
    ("thread", "thread", None),
    ("process", "process", False),
    ("process+arena", "process", True),
)

#: pingpong sweep for the machine-model fit; spans the shm threshold so the
#: process-backend fit reflects both the pipe and the shared-memory path.
PINGPONG_SIZES = (1024, 16 * 1024, 128 * 1024, 1024 * 1024, 4 * 1024 * 1024)
PINGPONG_REPS = 21

#: Sanders machine model fitted when the per-message shm path shipped
#: (BENCH_shuffle.json ``machine_model.process``, pre-arena).  The arena
#: acceptance bar is >=2x better on both axes than these recorded numbers.
RECORDED_PER_MESSAGE_MODEL = {"alpha_us": 313.5, "bandwidth_mib_s": 1186.1}

VALUE_DTYPE = np.dtype(
    [("score", "<i8"), ("pos", "<i8"), ("bit", "<f8"), ("evalue", "<f8")]
)
SCHEMA = RecordSchema(key_dtype="S8", value_dtype=VALUE_DTYPE, key_kind="str")
KEYTAB = np.array([f"q{k:06d}".encode() for k in range(N_KEYS)], dtype="S8")

STAGES = ("map", "aggregate", "convert", "reduce")


def _pipeline(comm, columnar, total_pairs):
    """Emit → aggregate → convert → reduce; returns rank-0 timings/traffic."""
    mr = MapReduce(
        comm, mapstyle=MapStyle.CHUNK, schema=SCHEMA if columnar else None
    )
    per_rank = total_pairs // comm.size

    def columnar_mapper(itask, item, kv):
        rng = np.random.default_rng(1000 + itask)
        kids = rng.integers(N_KEYS, size=per_rank)
        rows = np.empty(per_rank, dtype=VALUE_DTYPE)
        rows["score"] = kids
        rows["pos"] = np.arange(per_rank)
        rows["bit"] = rng.random(per_rank)
        rows["evalue"] = rng.random(per_rank)
        kv.add_batch(KEYTAB[kids], rows)

    def object_mapper(itask, item, kv):
        rng = np.random.default_rng(1000 + itask)
        kids = rng.integers(N_KEYS, size=per_rank)
        bits = rng.random(per_rank)
        evalues = rng.random(per_rank)
        for j in range(per_rank):
            kv.add(
                f"q{kids[j]:06d}",
                (int(kids[j]), j, float(bits[j]), float(evalues[j])),
            )

    try:
        mr.map_items(
            list(range(comm.size)), columnar_mapper if columnar else object_mapper
        )
        npairs = comm.allreduce(len(mr.kv))
        mr.aggregate()
        mr.convert()
        mr.reduce(lambda k, vs, kv: kv.add(k, len(vs)), out_schema=None)
        nkeys = comm.allreduce(len(mr.kv))
        # slowest rank bounds every collective stage
        slowest = {
            phase: max(comm.allreduce([mr.timers.get(phase, 0.0)]))
            for phase in STAGES
        }
        shuffle = mr.shuffle_stats()
        if comm.rank != 0:
            return None
        return {"npairs": npairs, "nkeys": nkeys, "seconds": slowest, "shuffle": shuffle}
    finally:
        mr.close()


def _run(nprocs, columnar, backend="thread", total_pairs=TOTAL_PAIRS,
         arena=None, arena_mb=None):
    out = run_spmd(nprocs, _pipeline, columnar, total_pairs, backend=backend,
                   arena=arena, arena_mb=arena_mb)[0]
    stages = {}
    for phase in STAGES:
        secs = out["seconds"][phase]
        moved = out["shuffle"].get(phase, {"pairs_moved": 0, "bytes_moved": 0})
        stages[phase] = {
            "seconds": secs,
            "pairs_per_sec": out["npairs"] / secs if secs > 0 else None,
            "pairs_moved": moved["pairs_moved"],
            "bytes_moved": moved["bytes_moved"],
        }
    return {"npairs": out["npairs"], "nkeys": out["nkeys"], "stages": stages}


# ---------------------------------------------------------- machine model

def _pingpong(comm, sizes, reps):
    """Half round-trip seconds per message size (best-of-``reps``), rank 0.

    Same protocol for every variant (and as the recorded baselines, so
    fits stay comparable release-over-release): each side Sends its *own*
    buffer and Recvs into a pre-allocated one.  The Recv copy reads every
    delivered byte — on the arena path that is a read straight out of the
    peer's ring, so unmaterialised pages can't fake bandwidth — and the
    echo never re-sends a received view, which would price a
    cross-segment copy no real exchange performs.
    """
    halves = []
    for n in sizes:
        buf = np.zeros(n, dtype=np.uint8)
        echo = np.empty_like(buf)
        best = float("inf")
        for _ in range(reps):
            comm.barrier()
            if comm.rank == 0:
                t0 = time.perf_counter()
                comm.Send(buf, dest=1)
                comm.Recv(echo, source=1)
                best = min(best, (time.perf_counter() - t0) / 2.0)
            else:
                comm.Recv(echo, source=0)
                comm.Send(buf, dest=0)
        halves.append(best)
    return halves if comm.rank == 0 else None


def fit_machine_model(backend, arena=None):
    """Fit the Sanders/Mehlhorn point-to-point model ``t = α + n/β``.

    α is the per-message latency (startup) and β the asymptotic bandwidth;
    a least-squares fit over the pingpong sweep gives both in one pass.
    """
    halves = run_spmd(2, _pingpong, PINGPONG_SIZES, PINGPONG_REPS,
                      backend=backend, arena=arena, op_timeout=60.0)[0]
    sizes = np.array(PINGPONG_SIZES, dtype=float)
    times = np.array(halves, dtype=float)
    slope, alpha = np.polyfit(sizes, times, 1)
    return {
        "alpha_us": alpha * 1e6,
        "bandwidth_mib_s": (1.0 / slope) / 2**20 if slope > 0 else None,
        "points": {str(n): t for n, t in zip(PINGPONG_SIZES, halves)},
    }


# ------------------------------------------------------------- benchmark

def test_shuffle_throughput(print_table):
    results = {}
    for label, backend, arena in VARIANTS:
        suffix = "" if label == "thread" else f"@{label}"
        for nprocs in RANK_COUNTS:
            for plane in ("object", "columnar"):
                results[f"{plane}@{nprocs}{suffix}"] = _run(
                    nprocs, plane == "columnar", backend=backend, arena=arena
                )

    rows = []
    for label, _backend, _arena in VARIANTS:
        suffix = "" if label == "thread" else f"@{label}"
        for nprocs in RANK_COUNTS:
            for phase in STAGES:
                obj = results[f"object@{nprocs}{suffix}"]["stages"][phase]
                col = results[f"columnar@{nprocs}{suffix}"]["stages"][phase]
                speedup = (
                    col["pairs_per_sec"] / obj["pairs_per_sec"]
                    if col["pairs_per_sec"] and obj["pairs_per_sec"]
                    else float("nan")
                )
                rows.append([
                    label, str(nprocs), phase,
                    f"{obj['pairs_per_sec']:,.0f}" if obj["pairs_per_sec"] else "-",
                    f"{col['pairs_per_sec']:,.0f}" if col["pairs_per_sec"] else "-",
                    f"{speedup:.1f}x",
                    f"{obj['bytes_moved']:,}", f"{col['bytes_moved']:,}",
                ])
    print_table(
        f"Shuffle throughput, {TOTAL_PAIRS:,} pairs ({N_KEYS} keys)",
        ["backend", "ranks", "stage", "obj pairs/s", "col pairs/s", "speedup",
         "obj bytes moved", "col bytes moved"],
        rows,
    )

    # Results must be plane- and backend-independent before speed counts.
    for key, run in results.items():
        assert run["nkeys"] == N_KEYS, f"{key}: wrong reduce output"
        assert run["npairs"] == (TOTAL_PAIRS // int(key.split("@")[1])) * int(
            key.split("@")[1]
        )

    # The acceptance bar: >=5x on the shuffle-bound stages at multi-rank
    # scale (single-rank aggregate barely moves data on either plane).
    for phase in ("aggregate", "convert"):
        obj = results["object@4"]["stages"][phase]["pairs_per_sec"]
        col = results["columnar@4"]["stages"][phase]["pairs_per_sec"]
        assert col >= 5 * obj, (
            f"{phase}: columnar {col:,.0f} pairs/s vs object {obj:,.0f} "
            f"pairs/s is below the 5x bar"
        )

    model = {label: fit_machine_model(backend, arena=arena)
             for label, backend, arena in VARIANTS}
    print_table(
        "Machine model fit t = α + n/β (2-rank pingpong)",
        ["variant", "α (µs)", "β (MiB/s)"],
        [[b, f"{m['alpha_us']:.1f}",
          f"{m['bandwidth_mib_s']:,.0f}" if m["bandwidth_mib_s"] else "-"]
         for b, m in model.items()],
    )
    for b, m in model.items():
        assert m["alpha_us"] > 0, f"{b}: non-physical negative latency fit"

    # The arena acceptance bar: >=2x better on both machine-model axes
    # than the per-message model recorded when that path shipped.  β must
    # also beat the *in-run* per-message re-fit 2x — the bandwidth ratio
    # is stable back-to-back on the same box, so neither historical
    # machine drift nor CPU scaling can fake it (α is excluded from the
    # in-run comparison: both paths share the pipe-wakeup latency floor,
    # and its run-to-run wander would make that ratio a coin flip).
    permsg, arena_fit = model["process"], model["process+arena"]
    rec = RECORDED_PER_MESSAGE_MODEL
    assert rec["alpha_us"] >= 2.0 * arena_fit["alpha_us"], (
        f"arena latency win below 2x: α {rec['alpha_us']:.1f}µs recorded "
        f"per-message vs {arena_fit['alpha_us']:.1f}µs arena"
    )
    assert arena_fit["bandwidth_mib_s"] >= 2.0 * rec["bandwidth_mib_s"], (
        f"arena bandwidth win below 2x: β {arena_fit['bandwidth_mib_s']:,.0f} "
        f"MiB/s arena vs {rec['bandwidth_mib_s']:,.0f} MiB/s recorded"
    )
    assert arena_fit["bandwidth_mib_s"] >= 2.0 * permsg["bandwidth_mib_s"], (
        f"arena bandwidth win below 2x in-run: β "
        f"{arena_fit['bandwidth_mib_s']:,.0f} MiB/s arena vs "
        f"{permsg['bandwidth_mib_s']:,.0f} MiB/s per-message"
    )

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "total_pairs": TOTAL_PAIRS,
                "n_keys": N_KEYS,
                "machine_model": model,
                "runs": results,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


# ------------------------------------------------------------------- CLI

def _pipeline_seconds(run):
    return sum(run["stages"][phase]["seconds"] for phase in STAGES)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="bench_shuffle",
        description="columnar shuffle scaling smoke (used by CI)",
    )
    ap.add_argument("--backend", choices=["thread", "process"], default="process")
    ap.add_argument("--ranks", type=int, nargs="+", default=[1, 4])
    ap.add_argument("--pairs", type=int, default=TOTAL_PAIRS)
    ap.add_argument("--no-arena", action="store_true",
                    help="process backend: pin the per-message shm path "
                         "(the arena-off parity/regression oracle)")
    ap.add_argument("--arena-mb", type=int, default=None,
                    help="process backend: arena ring MiB per rank")
    ap.add_argument("--assert-scaling", action="store_true",
                    help="require wall-clock to drop monotonically with more "
                         "ranks (skipped unless the machine has enough cores)")
    args = ap.parse_args(argv)

    from repro.mpi.arena import resolve_arena_bytes

    arena = False if args.no_arena else None
    arena_on = resolve_arena_bytes(arena, args.arena_mb) > 0
    label = args.backend if args.backend == "thread" else (
        "process+arena" if arena_on else "process")
    seconds = {}
    for nprocs in args.ranks:
        run = _run(nprocs, columnar=True, backend=args.backend,
                   total_pairs=args.pairs, arena=arena, arena_mb=args.arena_mb)
        seconds[nprocs] = _pipeline_seconds(run)
        print(f"{label}@{nprocs}: {args.pairs:,} pairs in "
              f"{seconds[nprocs]:.3f}s pipeline time "
              f"({run['npairs'] / seconds[nprocs]:,.0f} pairs/s)")

    if args.assert_scaling:
        cores = len(os.sched_getaffinity(0))
        needed = max(args.ranks)
        if cores < needed:
            print(f"scaling assertion skipped: {cores} usable cores < "
                  f"{needed} ranks")
        else:
            ordered = sorted(args.ranks)
            for lo, hi in zip(ordered, ordered[1:]):
                assert seconds[hi] < seconds[lo], (
                    f"{args.backend} backend did not scale: "
                    f"{hi} ranks took {seconds[hi]:.3f}s vs "
                    f"{seconds[lo]:.3f}s at {lo}"
                )
            print(f"scaling OK: {' > '.join(f'{seconds[n]:.3f}s@{n}' for n in ordered)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
