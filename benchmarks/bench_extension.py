"""Stage-2/3 extension: batched ungapped kernel and band-compressed gapped DP.

Two claims from the extension overhaul, measured on the Fig. 5 workload
(protein families: 260-aa ancestors, three copies each in the DB, queries a
200-aa slice of each ancestor) rather than asserted:

1. Replacing the per-trigger scalar :func:`ungapped_extend` loop with one
   window-escalating :func:`batch_ungapped_extend` pass per (context,
   subject), and the per-seed dense float32 gapped DP with one
   :func:`extend_gapped_batch` call advancing every admitted seed's
   band-compressed int32 DP in lockstep, is >= 3x faster on the combined
   ungapped+gapped stage time, with bit-identical extents and alignments.
2. The production ``mrblast_spmd`` end-to-end wall clock on the same
   workload, recorded as a trajectory point for later PRs.

Results land in ``BENCH_extension.json`` at the repo root, following the
``BENCH_seeding.json`` format.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.bio import SeqRecord, random_protein
from repro.bio.alphabet import PROTEIN
from repro.blast import BlastOptions, format_database
from repro.blast.dbreader import DatabaseAlias
from repro.blast.engine import make_engine
from repro.blast.extend import batch_ungapped_extend, ungapped_extend
from repro.blast.gapped import (
    extend_gapped,
    extend_gapped_batch,
    reference_extend_gapped,
)
from repro.blast.karlin import karlin_params
from repro.blast.lookup import ProteinLookup, QueryBlock
from repro.blast.matrices import BLOSUM62
from repro.blast.statistics import bit_score
from repro.core import MrBlastConfig, mrblast_spmd

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_extension.json"

OPTS = BlastOptions.blastp(evalue=1e-3)


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record(key, payload):
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _fig5_records():
    ancestors = [random_protein(260, seed_or_rng=10 + f) for f in range(4)]
    db = [
        SeqRecord(f"fam{f}_m{m}", anc)
        for f, anc in enumerate(ancestors)
        for m in range(3)
    ]
    queries = [SeqRecord(f"q{f}", anc[20:220]) for f, anc in enumerate(ancestors)]
    return db, queries


@pytest.fixture(scope="module")
def fig5_hits():
    """Real word-hit streams: every (subject, context) group the Fig. 5
    workload's scan stage produces, exactly what stage 2 consumes."""
    db, queries = _fig5_records()
    block = QueryBlock(queries, "blastp", use_mask=False)
    lookup = ProteinLookup(
        block, word_size=OPTS.word_size, threshold=OPTS.neighbor_threshold
    )
    groups = []
    for rec in db:
        s_codes = PROTEIN.encode(rec.seq)
        s_index = s_codes.astype("intp")
        qpos_concat, spos = lookup.scan(s_codes)
        if qpos_concat.size == 0:
            continue
        ctx_indices, q_local = block.localize(qpos_concat)
        for c in sorted(set(int(x) for x in ctx_indices)):
            rows = ctx_indices == c
            groups.append(
                (block.contexts[c].codes_index, s_index, q_local[rows], spos[rows])
            )
    assert groups, "Fig. 5 workload must produce word hits"
    return db, queries, groups


def test_extension_stage_speedup(fig5_hits, print_table):
    """Batched/banded kernels vs the retained scalar/dense oracles on the
    combined stage time, with bit-identity checked along the way."""
    db, queries, groups = fig5_hits
    word = OPTS.word_size
    xdrop = OPTS.xdrop_ungapped
    n_hits = sum(qp.size for _, _, qp, _ in groups)

    def ungapped_reference():
        out = []
        for q_idx, s_idx, qp, sp in groups:
            for r in range(qp.size):
                u = ungapped_extend(
                    q_idx, s_idx, int(qp[r]), int(sp[r]), word, BLOSUM62, xdrop
                )
                out.append((u.score, u.q_start, u.q_end, u.s_start, u.s_end))
        return out

    def ungapped_batched():
        out = []
        for q_idx, s_idx, qp, sp in groups:
            ext = batch_ungapped_extend(
                q_idx, s_idx, qp, sp, word, BLOSUM62, xdrop,
                window=OPTS.extension_window,
            )
            for r in range(qp.size):
                if ext.complete[r]:
                    out.append(
                        (int(ext.score[r]), int(ext.q_start[r]), int(ext.q_end[r]),
                         int(ext.s_start[r]), int(ext.s_end[r]))
                    )
                else:
                    u = ungapped_extend(
                        q_idx, s_idx, int(qp[r]), int(sp[r]), word, BLOSUM62, xdrop
                    )
                    out.append((u.score, u.q_start, u.q_end, u.s_start, u.s_end))
        return out

    t_uref, ref_ext = _best_of(ungapped_reference)
    t_ubat, bat_ext = _best_of(ungapped_batched)
    assert bat_ext == ref_ext, "batched stage-2 must be bit-identical"

    # Stage 3 workload: replay the engine's per-diagonal admission rule
    # (coverage jumps, two-hit anchoring, bit-score cutoff, gapped coverage
    # feedback) over the precomputed extents, so the timed gapped seeds are
    # exactly the ones stage 2 hands to stage 3 in production.
    params = karlin_params(program="blastp", reward=OPTS.reward, penalty=OPTS.penalty)
    window = OPTS.two_hit_window
    seeds = []
    off = 0
    for q_idx, s_idx, qp, sp in groups:
        ext_rows = ref_ext[off : off + qp.size]
        off += qp.size
        diag = sp - qp
        order = np.lexsort((sp, diag))
        d_r, s_row = diag[order], sp[order]
        breaks = 1 + np.flatnonzero(d_r[1:] != d_r[:-1])
        for a, b in zip(
            np.concatenate(([0], breaks)), np.concatenate((breaks, [qp.size]))
        ):
            covered, last_end = 0, -1
            for k in range(int(a), int(b)):
                s_pos = int(s_row[k])
                if s_pos < covered:
                    continue
                if last_end < 0 or s_pos < last_end or s_pos - last_end > window:
                    if s_pos >= last_end:
                        last_end = s_pos + word
                    continue
                last_end = s_pos + word
                score, qs, qe, ss, se = ext_rows[int(order[k])]
                covered = se
                if bit_score(score, params) < OPTS.ungapped_cutoff_bits:
                    continue
                mid = (qe - qs) // 2
                seeds.append((q_idx, s_idx, qs + mid, ss + mid))
                # Gapped coverage feedback (untimed): the engine suppresses
                # later triggers inside the gapped alignment's span.
                g = extend_gapped(
                    q_idx, s_idx, qs + mid, ss + mid, BLOSUM62, OPTS.gap_open,
                    OPTS.gap_extend, OPTS.xdrop_gapped, OPTS.band_width,
                )
                if g is not None:
                    covered = max(covered, g.s_end)
    assert seeds, "Fig. 5 workload must admit gapped extensions"

    def gapped_reference():
        return [
            reference_extend_gapped(q_idx, s_idx, qseed, sseed, BLOSUM62,
                                    OPTS.gap_open, OPTS.gap_extend,
                                    OPTS.xdrop_gapped, OPTS.band_width)
            for q_idx, s_idx, qseed, sseed in seeds
        ]

    def gapped_batched():
        # One call, exactly as the engine issues it per admission round.
        return extend_gapped_batch(seeds, BLOSUM62, OPTS.gap_open,
                                   OPTS.gap_extend, OPTS.xdrop_gapped,
                                   OPTS.band_width)

    t_gref, ref_aln = _best_of(gapped_reference)
    t_gban, ban_aln = _best_of(gapped_batched)
    assert ban_aln == ref_aln, "banded stage-3 must be bit-identical"

    combined = (t_uref + t_gref) / (t_ubat + t_gban)
    rows = [
        [f"ungapped ({n_hits} hits)", f"{t_uref * 1e3:.1f}", f"{t_ubat * 1e3:.1f}",
         f"{t_uref / t_ubat:.1f}x"],
        [f"gapped ({len(seeds)} seeds)", f"{t_gref * 1e3:.1f}", f"{t_gban * 1e3:.1f}",
         f"{t_gref / t_gban:.1f}x"],
        ["combined", f"{(t_uref + t_gref) * 1e3:.1f}",
         f"{(t_ubat + t_gban) * 1e3:.1f}", f"{combined:.1f}x"],
    ]
    print_table("Stage 2+3 extension: reference vs batched/banded (ms)",
                ["stage", "reference", "overhauled", "speedup"], rows)

    _record("extension_kernels", {
        "n_word_hits": n_hits,
        "n_gapped_seeds": len(seeds),
        "ungapped_reference_s": t_uref,
        "ungapped_batched_s": t_ubat,
        "ungapped_speedup": t_uref / t_ubat,
        "gapped_reference_s": t_gref,
        "gapped_banded_s": t_gban,
        "gapped_speedup": t_gref / t_gban,
        "combined_speedup": combined,
    })
    # Acceptance: >= 3x on the combined ungapped+gapped stage time.
    assert combined >= 3.0


def test_fused_engine_speedup(tmp_path, print_table):
    """Fused streaming scheduler vs the staged per-subject oracle, end to
    end through ``search_block`` on the Fig. 5 workload.

    The fused pass issues one span-batched ungapped call and one gapped
    batch per round across *all* open subjects and contexts, where the
    staged oracle issues one ungapped call per (subject, context) and one
    gapped batch per (subject, round) — same kernels, same admissions, so
    the delta is pure scheduling/batching overhead.  Output must stay
    bit-identical, and the scaling assertion pins fused throughput at
    least at parity with staged.
    """
    db, queries = _fig5_records()
    alias_path = format_database(db, tmp_path / "db", "db", kind="protein",
                                 max_volume_bytes=1 << 20)
    partition = DatabaseAlias.load(str(alias_path)).open_partition(0)

    eng_staged = make_engine(replace(OPTS, fused=False))
    eng_fused = make_engine(OPTS)  # fused=True is the default

    t_staged, hits_staged = _best_of(lambda: eng_staged.search_block(queries, partition))
    t_fused, hits_fused = _best_of(lambda: eng_fused.search_block(queries, partition))
    assert hits_fused == hits_staged, "fused scheduler must be bit-identical"

    fstats = eng_fused.last_stats
    speedup = t_staged / t_fused
    print_table(
        "Engine end to end: staged oracle vs fused streaming pass",
        ["metric", "staged", "fused"],
        [["search_block best-of-3 (ms)", f"{t_staged * 1e3:.1f}", f"{t_fused * 1e3:.1f}"],
         ["scheduler rounds", "-", str(fstats.fused_rounds)],
         ["peak round slab (KiB)", "-", f"{fstats.peak_slab_bytes / 1024:.0f}"],
         ["speedup", "1.0x", f"{speedup:.2f}x"]],
    )
    _record("fused_engine", {
        "staged_s": t_staged,
        "fused_s": t_fused,
        "end_to_end_speedup": speedup,
        "hsps": len(hits_fused),
        "fused_rounds": fstats.fused_rounds,
        "peak_slab_bytes_per_round": fstats.peak_slab_bytes,
    })
    # Scaling assertion: the fused pass may never be slower than the
    # staged oracle it replaces as the mrblast default.
    assert speedup >= 1.0, f"fused scheduler slower than staged ({speedup:.2f}x)"


def test_end_to_end_wall_clock(tmp_path, print_table):
    """Production ``mrblast_spmd`` on the Fig. 5 workload: wall clock and
    the per-stage seconds the batch-level timers now report."""
    db, queries = _fig5_records()
    alias = format_database(db, tmp_path / "db", "db", kind="protein",
                            max_volume_bytes=1024)

    def run(out):
        cfg = MrBlastConfig(
            alias_path=str(alias),
            query_blocks=[queries[:2], queries[2:]],
            options=OPTS,
            output_dir=str(tmp_path / out),
            locality_aware=True,
            lookup_cache_blocks=4,
        )
        t0 = time.perf_counter()
        results = mrblast_spmd(3, cfg)
        return time.perf_counter() - t0, results

    run("warmup")
    wall, results = min(run(f"r{i}") for i in range(2))

    ungapped = sum(r.ungapped_seconds for r in results)
    gapped = sum(r.gapped_seconds for r in results)
    hits = sum(r.hits_written for r in results)
    rows = [
        ["wall clock", f"{wall * 1e3:.1f}"],
        ["ungapped stage (all ranks)", f"{ungapped * 1e3:.1f}"],
        ["gapped stage (all ranks)", f"{gapped * 1e3:.1f}"],
    ]
    print_table(f"Fig. 5 workload end to end ({hits} hits)", ["metric", "ms"], rows)

    assert hits > 0
    _record("mrblast_fig5", {
        "wall_s": wall,
        "ungapped_stage_s": ungapped,
        "gapped_stage_s": gapped,
        "hits_written": hits,
        "nprocs": 3,
        "fused_rounds": sum(r.fused_rounds for r in results),
        "peak_slab_bytes_per_round": max(r.peak_slab_bytes for r in results),
    })
