"""§II.A trade-off: the MPI execution model's missing fault tolerance.

The paper accepts that wrapping everything in one MPI job sacrifices fault
tolerance ("the price for this extra flexibility and portability").  This
bench quantifies the price on the modelled 1024-core protein run: at
realistic failure rates the whole-job restart risk is negligible next to
the HTC path's per-task redo cost; at pathological rates it dominates.
"""

import json
import time
from pathlib import Path

from repro.cluster import (
    FaultModel,
    RestartObservation,
    compare_fault_costs,
    protein_workload,
    ranger,
    simulate_blast_run,
    validate_restart_overhead,
)

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_robustness.json"


def _record(key, payload):
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_fault_tolerance_tradeoff(benchmark, print_table):
    run = benchmark(simulate_blast_run, ranger(1024), protein_workload())

    rows = []
    for rate, label in ((1e-6, "healthy cluster"), (1e-4, "stressed cluster"),
                        (2e-3, "pathological")):
        cmp = compare_fault_costs(run, FaultModel(failures_per_core_hour=rate))
        rows.append([
            label,
            f"{rate:g}",
            f"{cmp.mpi_survival * 100:.1f}%",
            f"{cmp.mpi_overhead_fraction * 100:.2f}%",
            f"{cmp.htc_overhead_fraction * 100:.4f}%",
        ])
    print_table(
        "Fault-tolerance trade-off (1024-core blastp run)",
        ["scenario", "fail/core-h", "MPI job survival", "MPI restart overhead",
         "HTC redo overhead"],
        rows,
    )

    healthy = compare_fault_costs(run, FaultModel(failures_per_core_hour=1e-6))
    worst = compare_fault_costs(run, FaultModel(failures_per_core_hour=2e-3))
    # On a healthy machine the paper's trade is nearly free...
    assert healthy.mpi_survival > 0.99
    assert healthy.mpi_overhead_fraction < 0.01
    # ...on a pathological one the MPI path pays much more than HTC.
    assert worst.mpi_overhead_fraction > 10 * worst.htc_overhead_fraction


def test_supervised_crash_resume_measured(tmp_path, print_table):
    """Injected crash vs fault-free run, measured end to end.

    One rank is killed mid-run; the supervisor detects, backs off and
    relaunches with resume.  Records the robustness counters and checks the
    redone-work overhead against the analytic half-interval model.
    """
    from repro.bio import shred_records, synthetic_community, synthetic_nt_database
    from repro.blast import BlastOptions, format_database
    from repro.core import MrBlastConfig, mrblast_spmd, mrblast_supervised
    from repro.core.mrblast.driver import run_mrblast
    from repro.core.mrblast.merge import collect_rank_hits
    from repro.mpi import CrashRank, FaultPlan, RetryPolicy
    from repro.mpi.runtime import SpmdJob
    from repro.mrmpi.mapreduce import MapStyle
    import dataclasses

    com = synthetic_community(n_genomes=3, genome_length=2000, seed=91)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, seed=92)
    alias = format_database(db, tmp_path, "nt", kind="dna", max_volume_bytes=1400)
    reads = list(shred_records(com.genomes))[:12]
    blocks = [reads[i : i + 3] for i in range(0, len(reads), 3)]

    def config(out):
        return MrBlastConfig(
            alias_path=str(alias), query_blocks=blocks,
            options=BlastOptions.blastn(evalue=1e-4, max_hits=10),
            output_dir=str(tmp_path / out), blocks_per_iteration=2,
            mapstyle=MapStyle.CHUNK,
        )

    t0 = time.perf_counter()
    clean = mrblast_spmd(3, config("clean"))
    clean_wall = time.perf_counter() - t0
    useful = sum(r.units_processed for r in clean)

    # Probe rank 1's op counts at the iteration boundary and at the end so
    # the injected crash deterministically lands inside iteration 2 (CHUNK
    # mapstyle makes op counts reproducible).
    def ops_rank1(cfg):
        job = SpmdJob(3, run_mrblast, (cfg,))
        job.run()
        return job.network.op_count(1)

    full_ops = ops_rank1(config("probe-full"))
    half_ops = ops_rank1(
        dataclasses.replace(config("probe-half"), stop_after_iterations=1)
    )
    crash_op = (half_ops + full_ops) // 2

    plan = FaultPlan([CrashRank(rank=1, at_op=crash_op)])
    t0 = time.perf_counter()
    outcome = mrblast_supervised(
        3, config("faulty"), fault_plan=plan,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
    )
    faulty_wall = time.perf_counter() - t0

    def signatures(paths):
        merged = collect_rank_hits(paths)
        return sorted(
            (q, h.subject_id, h.q_start, h.s_start) for q, hs in merged.items() for h in hs
        )

    assert signatures([r.output_path for r in outcome.results]) == signatures(
        [r.output_path for r in clean]
    ), "resumed output must be bit-identical to the fault-free run"

    executed = useful + sum(r.units_processed for r in outcome.results)
    validation = validate_restart_overhead(RestartObservation(
        units_useful=useful, units_executed=executed,
        n_failures=1, units_per_checkpoint=useful / 2,
    ))
    assert validation.within(intervals=1.0)

    counters = {
        "faults_injected": outcome.faults_injected,
        "retries": outcome.retries,
        "quarantined_units": sum(r.quarantined_units for r in outcome.results),
        "resumed_from_iteration": max(
            r.resumed_from_iteration for r in outcome.results
        ),
        "clean_wall_s": clean_wall,
        "supervised_wall_s": faulty_wall,
        "restart_overhead_observed": validation.observed,
        "restart_overhead_predicted": validation.predicted,
        "fault_trace": [list(ev) for ev in outcome.fault_trace],
    }
    _record("supervised_crash_resume", counters)
    print_table(
        "Supervised crash -> resume (3 ranks, 1 injected crash)",
        ["counter", "value"],
        [[k, f"{v}"] for k, v in counters.items() if k != "fault_trace"],
    )
    assert outcome.retries == 1
    assert outcome.faults_injected == 1
