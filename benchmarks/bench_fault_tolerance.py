"""§II.A trade-off: the MPI execution model's missing fault tolerance.

The paper accepts that wrapping everything in one MPI job sacrifices fault
tolerance ("the price for this extra flexibility and portability").  This
bench quantifies the price on the modelled 1024-core protein run: at
realistic failure rates the whole-job restart risk is negligible next to
the HTC path's per-task redo cost; at pathological rates it dominates.
"""

from repro.cluster import (
    FaultModel,
    compare_fault_costs,
    protein_workload,
    ranger,
    simulate_blast_run,
)


def test_fault_tolerance_tradeoff(benchmark, print_table):
    run = benchmark(simulate_blast_run, ranger(1024), protein_workload())

    rows = []
    for rate, label in ((1e-6, "healthy cluster"), (1e-4, "stressed cluster"),
                        (2e-3, "pathological")):
        cmp = compare_fault_costs(run, FaultModel(failures_per_core_hour=rate))
        rows.append([
            label,
            f"{rate:g}",
            f"{cmp.mpi_survival * 100:.1f}%",
            f"{cmp.mpi_overhead_fraction * 100:.2f}%",
            f"{cmp.htc_overhead_fraction * 100:.4f}%",
        ])
    print_table(
        "Fault-tolerance trade-off (1024-core blastp run)",
        ["scenario", "fail/core-h", "MPI job survival", "MPI restart overhead",
         "HTC redo overhead"],
        rows,
    )

    healthy = compare_fault_costs(run, FaultModel(failures_per_core_hour=1e-6))
    worst = compare_fault_costs(run, FaultModel(failures_per_core_hour=2e-3))
    # On a healthy machine the paper's trade is nearly free...
    assert healthy.mpi_survival > 0.99
    assert healthy.mpi_overhead_fraction < 0.01
    # ...on a pathological one the MPI path pays much more than HTC.
    assert worst.mpi_overhead_fraction > 10 * worst.htc_overhead_fraction
