"""End-to-end functional benches: the real pipelines on the in-process MPI.

Not a paper figure — this benchmarks the functional substrate itself (the
full mrblast map/collate/reduce cycle and an mrsom epoch loop on real data)
and re-asserts parallel == serial on the way.
"""

import numpy as np
import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, MrSomConfig, mrblast_spmd, mrsom_spmd
from repro.core.baselines import run_serial_batch_som, run_serial_blast
from repro.core.mrblast.merge import collect_rank_hits
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.som.codebook import SOMGrid


@pytest.fixture(scope="module")
def blast_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench_nt")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=7)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, seed=8)
    alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(com.genomes))[:8]
    blocks = [reads[i : i + 2] for i in range(0, len(reads), 2)]
    return str(alias), blocks, BlastOptions.blastn(evalue=1e-4, max_hits=20)


def test_bench_mrblast_pipeline(benchmark, blast_workload, tmp_path):
    alias, blocks, options = blast_workload

    counter = [0]

    def run():
        counter[0] += 1
        out = tmp_path / f"run{counter[0]}"
        results = mrblast_spmd(
            4,
            MrBlastConfig(
                alias_path=alias, query_blocks=blocks, options=options, output_dir=str(out)
            ),
        )
        return collect_rank_hits([r.output_path for r in results])

    merged = benchmark.pedantic(run, rounds=3, iterations=1)
    serial = run_serial_blast(alias, blocks, options)
    assert set(merged) == set(serial)


def test_bench_serial_blast(benchmark, blast_workload):
    alias, blocks, options = blast_workload
    result = benchmark.pedantic(
        run_serial_blast, args=(alias, blocks, options), rounds=3, iterations=1
    )
    assert result


def test_bench_mrsom_epochs(benchmark, tmp_path):
    rng = np.random.default_rng(3)
    data = rng.random((600, 16))
    path = write_matrix_file(tmp_path / "m.mat", data)
    config = MrSomConfig(matrix_path=str(path), grid=SOMGrid(8, 8), epochs=4, block_rows=40)

    def run():
        return mrsom_spmd(3, config)[0].codebook

    codebook = benchmark.pedantic(run, rounds=3, iterations=1)
    np.testing.assert_allclose(codebook, run_serial_batch_som(config), atol=1e-9)
