"""§V prototype: distributed seed index vs scan-based search.

The paper sketches a "global distributed index of the DB seeds" as the way
past scan complexity that is linear in DB size.  This bench measures the
prototype's *query* cost as the database grows: index queries touch only
the postings of the query's own words, so their cost grows far slower than
the engine's full scan.
"""

import time

import pytest

from repro.bio import SeqRecord, mutate_dna, random_genome
from repro.blast import BlastOptions, DatabaseAlias, format_database, make_engine
from repro.blast.seedindex import DistributedSeedIndex
from repro.mpi import run_spmd


def _make_db(tmp_path, n_subjects, name):
    base = random_genome(1500, seed_or_rng=50)
    records = [SeqRecord("target", mutate_dna(base, 0.03, seed_or_rng=51))]
    records += [
        SeqRecord(f"bulk{i}", random_genome(1500, seed_or_rng=100 + i))
        for i in range(n_subjects - 1)
    ]
    alias = format_database(records, tmp_path / name, name, kind="dna",
                            max_volume_bytes=1 << 18)
    return str(alias), SeqRecord("query", base[300:700])


@pytest.fixture(scope="module")
def dbs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("idxbench")
    return {n: _make_db(tmp, n, f"db{n}") for n in (8, 32)}


def _index_query_seconds(alias_path, query, repeats=9):
    # Best-of timing: candidate lookups are ~ms scale and the in-process
    # MPI's recv polling adds scheduler jitter of the same order, so the
    # minimum is the stable statistic here, not the mean.
    def main(comm):
        index = DistributedSeedIndex(comm, DatabaseAlias.load(alias_path))
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            cands = index.candidates([query], min_word_hits=3)
            best = min(best, time.perf_counter() - t0)
        return best, cands

    return run_spmd(2, main)[0]


def _engine_query_seconds(alias_path, query, repeats=5):
    """Best-of (stage-1 seed seconds, full wall seconds, hits).

    The seed stage — lookup build + subject scans — is what the index
    replaces, and the component that must touch every DB residue; the
    extension stages are driven by true matches and stay constant as decoy
    subjects are added, so wall time alone would understate the scaling.
    """
    alias = DatabaseAlias.load(alias_path)
    opts = BlastOptions.blastn(evalue=1e-5).with_db_size(alias.total_length, alias.num_seqs)
    engine = make_engine(opts)
    best_seed = best_wall = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        hits = []
        seed = 0.0
        for p in range(alias.num_partitions):
            hits.extend(engine.search_block([query], alias.open_partition(p)))
            seed += engine.last_stats.seed_seconds
        best_wall = min(best_wall, time.perf_counter() - t0)
        best_seed = min(best_seed, seed)
    return best_seed, best_wall, hits


def test_seedindex_query_scaling(benchmark, dbs, print_table):
    rows = []
    ratios = {}
    for n, (alias_path, query) in dbs.items():
        t_idx, cands = _index_query_seconds(alias_path, query)
        t_seed, t_eng, hits = _engine_query_seconds(alias_path, query)
        # Correctness: the index proposes the subject the engine finds.
        engine_subjects = {h.subject_id for h in hits}
        cand_subjects = {c.subject_id for c in cands.get("query", [])}
        assert engine_subjects <= cand_subjects
        rows.append([n, f"{t_idx * 1000:.1f}", f"{t_seed * 1000:.2f}", f"{t_eng * 1000:.1f}"])
        ratios[n] = (t_idx, t_seed)

    print_table(
        "§V prototype — query cost vs DB size (ms per query batch)",
        ["DB subjects", "seed index", "engine seed stage", "engine total"],
        rows,
    )

    # The engine's seed stage must touch every DB residue, so its cost grows
    # with DB size; index query cost grows only with the query's matching
    # postings and stays much flatter — the complexity separation the
    # paper's §V sketch is after.
    idx_growth = ratios[32][0] / ratios[8][0]
    scan_growth = ratios[32][1] / ratios[8][1]
    assert scan_growth > 2.0
    assert idx_growth < 2.0
    assert idx_growth < scan_growth

    # Give pytest-benchmark a stable target: the index lookup on the big DB.
    alias_path, query = dbs[32]
    benchmark.pedantic(
        lambda: _index_query_seconds(alias_path, query, repeats=1),
        rounds=3,
        iterations=1,
    )
