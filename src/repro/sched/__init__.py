"""Straggler-mitigation scheduling policies.

Clock-agnostic building blocks shared by the real MASTER_WORKER dispatcher
(`repro.mrmpi.mapreduce`) and the simulated Ranger fleet
(`repro.cluster.dispatch`): an online P² quantile estimator, a speculation
policy, and a tracker that decides when a unit is a straggler and which
completion wins.
"""

from repro.sched.speculation import (
    P2Quantile,
    SchedReport,
    SpeculationPolicy,
    StragglerTracker,
)

__all__ = [
    "P2Quantile",
    "SchedReport",
    "SpeculationPolicy",
    "StragglerTracker",
]
