"""Speculative re-execution and degraded-mode bookkeeping.

The master (real or simulated) tracks every in-flight work unit here.  The
policy is the classic late-binding speculation rule: once enough units have
completed to trust the runtime distribution, any unit whose elapsed time
exceeds ``factor x`` the running quantile (median by default) is a straggler
and may be re-issued to an idle worker.  The first completion wins; the loser
is discarded by unit id, so output never depends on which copy finished.

Runtime quantiles use the P² algorithm (Jain & Chlamtac, CACM 1985): five
markers updated in O(1) per observation, no history arrays, which matters at
simulated 1024-rank scale where millions of unit completions stream through.

Everything is clock-agnostic — callers pass ``now`` explicitly, so the same
tracker runs on ``time.monotonic()`` in the live runtime and on the SimClock
in ``repro.cluster.dispatch``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["P2Quantile", "SpeculationPolicy", "StragglerTracker", "SchedReport"]


class P2Quantile:
    """Online quantile estimate via the P² algorithm (no stored history).

    For fewer than five observations the exact sample quantile is returned
    (linear interpolation on the sorted values); from the fifth observation
    on, the five P² markers take over.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "count")

    def __init__(self, q: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            if len(self._heights) == 5:
                self._heights.sort()
            return
        h = self._heights
        # Locate the cell containing x and clamp the extreme markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            n = self._positions[i]
            d = self._desired[i] - n
            if (d >= 1.0 and self._positions[i + 1] - n > 1) or (
                d <= -1.0 and self._positions[i - 1] - n < -1
            ):
                step = 1 if d >= 1.0 else -1
                cand = self._parabolic(i, step)
                if h[i - 1] < cand < h[i + 1]:
                    h[i] = cand
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] = n + step

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    def value(self) -> float | None:
        """Current estimate, or ``None`` before any observation."""
        if not self._heights:
            return None
        if len(self._heights) < 5 or self.count < 5:
            ordered = sorted(self._heights)
            if len(ordered) == 1:
                return ordered[0]
            pos = self.q * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            frac = pos - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return self._heights[2]


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to clone a straggling unit.

    A unit becomes a speculation candidate once ``warmup`` units have
    completed (so the quantile is trustworthy), its elapsed time exceeds
    ``factor x`` the running ``quantile`` of completed-unit durations, and it
    has fewer than ``max_copies`` live copies.
    """

    factor: float = 2.0
    quantile: float = 0.5
    warmup: int = 3
    min_elapsed: float = 0.0
    max_copies: int = 2

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError(f"speculation factor must be > 1.0, got {self.factor}")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {self.warmup}")
        if self.min_elapsed < 0.0:
            raise ValueError(f"min_elapsed must be >= 0, got {self.min_elapsed}")
        if self.max_copies < 2:
            raise ValueError(f"max_copies must be >= 2, got {self.max_copies}")


@dataclass(frozen=True)
class SchedReport:
    """Per-map summary the master broadcasts to every rank after the phase."""

    completed: int = 0
    speculated: int = 0
    wasted: int = 0
    reassigned: int = 0
    lost_ranks: tuple[int, ...] = ()
    median_unit_seconds: float | None = None
    degraded: bool = False


class StragglerTracker:
    """Tracks in-flight units, decides speculation, resolves duplicate wins.

    State machine per unit: *assigned* (one runner) -> *suspected* (elapsed
    beyond the deadline) -> *speculated* (second runner issued) -> *resolved*
    (first completion accepted, later copies discarded) or *reassigned*
    (every runner died before completing; unit re-queued by the caller).
    """

    def __init__(self, policy: SpeculationPolicy | None = None) -> None:
        self.policy = policy
        self.quantile = P2Quantile((policy or SpeculationPolicy()).quantile)
        # unit -> {worker: start_time} for every live copy.
        self._running: dict[int, dict[int, float]] = {}
        self._done: set[int] = set()
        self._accepted_by: dict[int, int] = {}
        self.completed = 0
        self.speculated = 0
        self.wasted = 0
        self.reassigned = 0
        self.finish_time: float | None = None

    # -- lifecycle ---------------------------------------------------------

    def assign(self, unit: int, worker: int, now: float) -> None:
        """Record that *worker* started (a copy of) *unit* at *now*."""
        copies = self._running.setdefault(unit, {})
        if copies:
            self.speculated += 1
        copies[worker] = now

    def complete(self, unit: int, worker: int, now: float) -> bool:
        """First completion wins: returns True iff this copy is accepted."""
        copies = self._running.get(unit, {})
        started = copies.pop(worker, None)
        if not copies:
            self._running.pop(unit, None)
        if unit in self._done:
            self.wasted += 1
            return False
        self._done.add(unit)
        self._accepted_by[unit] = worker
        self.completed += 1
        if started is not None:
            self.quantile.add(now - started)
        self.finish_time = now
        return True

    def release_worker(self, worker: int, now: float) -> list[int]:
        """Drop *worker* from every live copy; return units left runnerless.

        Returned units are not done and have no surviving runner — the
        caller must re-queue them.  Units that still have another live copy
        (a speculation survivor) stay in flight.
        """
        orphaned: list[int] = []
        for unit in list(self._running):
            copies = self._running[unit]
            if worker in copies:
                del copies[worker]
                if not copies and unit not in self._done:
                    orphaned.append(unit)
            if not copies:
                self._running.pop(unit, None)
        return orphaned

    def forget(self, unit: int) -> None:
        """Remove *unit* from the done set (its accepted output was lost)."""
        self._done.discard(unit)
        self._accepted_by.pop(unit, None)
        self.completed = len(self._done)

    def accepted_units(self, worker: int) -> list[int]:
        """Units whose accepted output lives on *worker*."""
        return [u for u, w in self._accepted_by.items() if w == worker]

    # -- queries -----------------------------------------------------------

    def is_done(self, unit: int) -> bool:
        return unit in self._done

    def inflight(self) -> list[int]:
        return [u for u in self._running if u not in self._done]

    def runners(self, unit: int) -> tuple[int, ...]:
        return tuple(self._running.get(unit, {}))

    def median(self) -> float | None:
        return self.quantile.value()

    def candidate(self, now: float, exclude_worker: int | None = None) -> int | None:
        """Most-overdue straggler eligible for a speculative copy, if any."""
        policy = self.policy
        if policy is None or self.completed < policy.warmup:
            return None
        med = self.quantile.value()
        if med is None:
            return None
        deadline = max(policy.factor * med, policy.min_elapsed)
        best: int | None = None
        best_elapsed = deadline
        for unit, copies in self._running.items():
            if unit in self._done or not copies:
                continue
            if len(copies) >= policy.max_copies:
                continue
            if exclude_worker is not None and exclude_worker in copies:
                continue
            elapsed = now - min(copies.values())
            if elapsed > best_elapsed:
                best = unit
                best_elapsed = elapsed
        return best

    def report(
        self, lost_ranks: tuple[int, ...] = (), degraded: bool = False
    ) -> SchedReport:
        return SchedReport(
            completed=self.completed,
            speculated=self.speculated,
            wasted=self.wasted,
            reassigned=self.reassigned,
            lost_ranks=tuple(sorted(lost_ranks)),
            median_unit_seconds=self.quantile.value(),
            degraded=degraded or bool(lost_ranks),
        )
