"""Columnar KV/KMV stores: typed pages, batch emission, sort-based grouping.

The object stores (:class:`~repro.mrmpi.keyvalue.ObjectKeyValue`) pay
record-at-a-time Python costs on every pair: a ``key_bytes`` validation, a
recursive ``approx_size`` estimate, a tuple append, and pickle on every
spilled page.  The columnar stores replace all of that with a few
contiguous arrays per page, described once by a
:class:`~repro.mrmpi.schema.RecordSchema`:

- a **KV page** is a key column plus a value column (structured rows, or a
  ragged uint8 buffer + offsets);
- a **KMV page** is a unique-key column, a group-offsets column and the
  grouped value rows;
- spill pages are raw array buffers (``PageSpool.write_arrays``, no
  pickle) with *exact* byte accounting;
- grouping is a bounded-memory **sort**: pages are argsorted individually
  into runs and k-way merged by key, replacing the dict/bucket path.

Ordering contract (what the parity suites pin): iteration replays spilled
pages first, then live batches, exactly like the object stores; sorts are
stable, so equal keys keep emission order end to end.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.mrmpi.schema import RecordSchema
from repro.mrmpi.spool import PageSpool
from repro.obs.trace import current_tracer

__all__ = [
    "ColumnarKeyValue",
    "ColumnarKeyMultiValue",
    "convert_columnar",
    "sort_kmv_columnar",
]

#: scalar adds are staged in Python lists and sealed into arrays this often
_PENDING_SEAL = 4096


# --------------------------------------------------------------------------
# Value-column helpers: a column is an ndarray (fixed rows) or a
# (uint8 buffer, int64 offsets) pair (ragged bytes rows).
# --------------------------------------------------------------------------


def _v_len(col) -> int:
    if isinstance(col, tuple):
        return len(col[1]) - 1
    return len(col)


def _v_nbytes(col) -> int:
    if isinstance(col, tuple):
        return int(col[0].nbytes + col[1].nbytes)
    return int(col.nbytes)


def _v_take(col, idx: np.ndarray):
    if not isinstance(col, tuple):
        return col[idx]
    buf, offsets = col
    lengths = (offsets[1:] - offsets[:-1])[idx]
    new_off = np.zeros(len(idx) + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_off[1:])
    starts = offsets[:-1][idx]
    pos = np.repeat(starts - new_off[:-1], lengths) + np.arange(new_off[-1])
    return buf[pos], new_off


def _v_slice(col, lo: int, hi: int):
    if not isinstance(col, tuple):
        return col[lo:hi]
    buf, offsets = col
    return buf[offsets[lo] : offsets[hi]], offsets[lo : hi + 1] - offsets[lo]


def _v_concat(cols: Sequence) -> Any:
    if len(cols) == 1:
        return cols[0]
    if not isinstance(cols[0], tuple):
        return np.concatenate(cols)
    bufs = [c[0] for c in cols]
    offs = []
    base = 0
    for _, off in cols:
        offs.append(off[:-1] + base)
        base += int(off[-1])
    offs.append(np.array([base], dtype=np.int64))
    return np.concatenate(bufs), np.concatenate(offs)


def _v_to_arrays(col) -> tuple[np.ndarray, ...]:
    return col if isinstance(col, tuple) else (col,)


def _v_from_arrays(arrays: Sequence[np.ndarray], ragged: bool):
    return (arrays[0], arrays[1]) if ragged else arrays[0]


def _v_decode(col, schema: RecordSchema, i: int):
    if isinstance(col, tuple):
        buf, offsets = col
        return buf[offsets[i] : offsets[i + 1]].tobytes()
    return schema.decode_one(col[i])


# --------------------------------------------------------------------------
# ColumnarKeyValue
# --------------------------------------------------------------------------


class ColumnarKeyValue:
    """A pageable multiset of typed (key, value) pairs owned by one rank.

    Emission is batch-first — :meth:`add_batch` appends whole columns — and
    scalar :meth:`add` stages into Python lists sealed into a batch
    periodically, so object-style emitters keep working.  Page occupancy is
    the *exact* sum of array ``nbytes`` (no estimates), and spilled pages
    are raw buffers.
    """

    def __init__(
        self,
        schema: RecordSchema,
        pagesize: int = 64 * 1024 * 1024,
        spool_dir: str | None = None,
    ):
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        self.schema = schema
        self.pagesize = pagesize
        self._spool_dir = spool_dir
        self._batches: list[tuple[np.ndarray, Any]] = []
        self._live_bytes = 0
        self._pending_k: list = []
        self._pending_v: list = []
        self._pending_bytes = 0
        self._spool: PageSpool | None = None
        self._nkv = 0

    # ------------------------------------------------------------------ write

    def add(self, key: Any, value: Any) -> None:
        """Emit one pair (staged; sealed into a columnar batch lazily)."""
        self._pending_k.append(key)
        self._pending_v.append(value)
        self._nkv += 1
        # Row-size accounting keeps scalar emitters inside the page budget:
        # without it, a slow trickle of adds would stage thousands of rows
        # past ``pagesize`` before the count-based seal fires.
        self._pending_bytes += self.schema.key_dtype.itemsize + (
            len(value) if self.schema.ragged_values else self.schema.value_dtype.itemsize
        )
        if len(self._pending_k) >= _PENDING_SEAL or self._pending_bytes >= self.pagesize:
            self._seal_pending()

    def add_multi(self, pairs) -> None:
        for k, v in pairs:
            self.add(k, v)

    def add_batch(self, keys, values) -> int:
        """Emit a whole batch of pairs as columns; returns the batch size.

        ``keys``/``values`` may be Python sequences (encoded through the
        schema) or ready-made arrays of the schema's dtypes.
        """
        self._seal_pending()
        karr = self.schema.encode_keys(keys)
        vcol = self.schema.build_values(values)
        n = len(karr)
        if _v_len(vcol) != n:
            raise ValueError(f"batch of {n} keys with {_v_len(vcol)} values")
        if n == 0:
            return 0
        self._append(karr, vcol)
        self._nkv += n
        return n

    def add_wire(self, arrays: Sequence[np.ndarray]) -> int:
        """Append a batch that arrived as raw wire arrays (no re-encoding)."""
        self._seal_pending()
        karr = arrays[0]
        if len(karr) == 0:
            return 0
        self._append(karr, _v_from_arrays(arrays[1:], self.schema.ragged_values))
        self._nkv += len(karr)
        return len(karr)

    def _append(self, karr: np.ndarray, vcol) -> None:
        self._batches.append((karr, vcol))
        self._live_bytes += int(karr.nbytes) + _v_nbytes(vcol)
        if self._live_bytes >= self.pagesize:
            self._spill()

    def _seal_pending(self) -> None:
        if not self._pending_k:
            return
        keys, values = self._pending_k, self._pending_v
        self._pending_k, self._pending_v = [], []
        self._pending_bytes = 0
        self._nkv -= len(keys)  # add_batch re-counts them
        self.add_batch(keys, values)

    def _spill(self) -> None:
        if not self._batches:
            return
        if self._spool is None:
            self._spool = PageSpool(dir=self._spool_dir, prefix="ckv")
        keys = np.concatenate([k for k, _ in self._batches])
        vcol = _v_concat([v for _, v in self._batches])
        nbytes = self._spool.write_arrays((keys,) + _v_to_arrays(vcol), len(keys))
        trc = current_tracer()
        if trc.enabled:
            trc.instant("store.spill", cat="spool", kind="ckv",
                        rows=len(keys), bytes=nbytes)
        self._batches = []
        self._live_bytes = 0

    # ------------------------------------------------------------------- read

    def __len__(self) -> int:
        return self._nkv

    @property
    def nbytes(self) -> int:
        """Exact bytes held (live arrays + spilled page frames)."""
        self._seal_pending()
        return self._live_bytes + (0 if self._spool is None else self._spool.nbytes)

    @property
    def out_of_core(self) -> bool:
        return self._spool is not None and self._spool.npages > 0

    @property
    def spilled_pages(self) -> int:
        return 0 if self._spool is None else self._spool.npages

    def iter_batches(self) -> Iterator[tuple[np.ndarray, Any]]:
        """Stream (key column, value column) batches in emission order."""
        self._seal_pending()
        if self._spool is not None:
            for arrays in self._spool.iter_pages():
                yield arrays[0], _v_from_arrays(arrays[1:], self.schema.ragged_values)
        yield from self._batches

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        for karr, vcol in self.iter_batches():
            for i in range(len(karr)):
                yield self.schema.decode_key(karr[i]), _v_decode(vcol, self.schema, i)

    # ------------------------------------------------------------------ admin

    def clear(self) -> None:
        self._batches = []
        self._live_bytes = 0
        self._pending_k, self._pending_v = [], []
        self._pending_bytes = 0
        self._nkv = 0
        if self._spool is not None:
            self._spool.close()
            self._spool = None

    def close(self) -> None:
        self.clear()

    def __enter__(self) -> "ColumnarKeyValue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarKeyValue(nkv={self._nkv}, pages_spilled={self.spilled_pages}, "
            f"pagesize={self.pagesize})"
        )


# --------------------------------------------------------------------------
# External (spool-aware) merge sort over KV batches
# --------------------------------------------------------------------------


class _RunCursor:
    """One sorted run: consecutive chunk pages in a runs spool."""

    def __init__(self, spool: PageSpool, pages: range, ragged: bool):
        self._spool = spool
        self._pages = list(pages)
        self._next = 0
        self._ragged = ragged
        self.keys: np.ndarray = np.empty(0)
        self.vcol: Any = None
        self._loaded = False

    def refill(self) -> bool:
        """Ensure a non-empty buffer; False when the run is exhausted."""
        while (not self._loaded or len(self.keys) == 0) and self._next < len(self._pages):
            arrays = self._spool.read_page(self._pages[self._next])
            self._next += 1
            self.keys = arrays[0]
            self.vcol = _v_from_arrays(arrays[1:], self._ragged)
            self._loaded = True
        return self._loaded and len(self.keys) > 0

    def take_upto(self, boundary) -> tuple[np.ndarray, Any] | None:
        """Pop the prefix of keys ``<= boundary`` off the buffer."""
        cnt = int(np.searchsorted(self.keys, boundary, side="right"))
        if cnt == 0:
            return None
        n = len(self.keys)
        part = (self.keys[:cnt], _v_slice(self.vcol, 0, cnt))
        self.keys = self.keys[cnt:]
        self.vcol = _v_slice(self.vcol, cnt, n)
        return part


def _sorted_run_chunks(
    karr: np.ndarray, vcol, chunk_rows: int
) -> Iterator[tuple[np.ndarray, Any]]:
    order = np.argsort(karr, kind="stable")
    skeys = karr[order]
    svals = _v_take(vcol, order)
    for lo in range(0, len(skeys), chunk_rows):
        hi = min(lo + chunk_rows, len(skeys))
        yield skeys[lo:hi], _v_slice(svals, lo, hi)


def iter_sorted_batches(kv: ColumnarKeyValue) -> Iterator[tuple[np.ndarray, Any]]:
    """Yield the whole KV dataset as key-sorted batches, bounded memory.

    In-core: one stable argsort over the live columns.  Out-of-core: each
    spilled page (already ≤ ``pagesize``) is argsorted into a run of chunk
    pages in a scratch spool — pages are streamed one at a time, never all
    resident — then the runs are k-way merged.  During the merge only one
    chunk per run is buffered (chunks are sized so all run buffers together
    hold about one page), and batches are emitted up to the smallest
    per-run high-water key, so every emitted key is globally final.
    Stable throughout: equal keys keep original emission order.
    """
    kv._seal_pending()
    ragged = kv.schema.ragged_values
    if not kv.out_of_core:
        if not kv._batches:
            return
        keys = np.concatenate([k for k, _ in kv._batches])
        vcol = _v_concat([v for _, v in kv._batches])
        order = np.argsort(keys, kind="stable")
        yield keys[order], _v_take(vcol, order)
        return

    nruns = kv.spilled_pages + (1 if kv._batches else 0)
    bytes_per_row = max(1, kv.nbytes // max(len(kv), 1))
    chunk_rows = max(64, kv.pagesize // nruns // bytes_per_row)

    runs = PageSpool(dir=kv._spool_dir, prefix="sortrun")
    try:
        cursors: list[_RunCursor] = []

        def write_run(karr: np.ndarray, vcol) -> None:
            start = runs.npages
            for ck, cv in _sorted_run_chunks(karr, vcol, chunk_rows):
                runs.write_arrays((ck,) + _v_to_arrays(cv), len(ck))
            cursors.append(_RunCursor(runs, range(start, runs.npages), ragged))

        for i in range(kv._spool.npages):
            arrays = kv._spool.read_page(i)
            write_run(arrays[0], _v_from_arrays(arrays[1:], ragged))
        if kv._batches:
            write_run(
                np.concatenate([k for k, _ in kv._batches]),
                _v_concat([v for _, v in kv._batches]),
            )

        while True:
            alive = [c for c in cursors if c.refill()]
            if not alive:
                return
            boundary = min(c.keys[-1] for c in alive)
            parts = [p for c in alive if (p := c.take_upto(boundary)) is not None]
            keys = np.concatenate([k for k, _ in parts])
            vcol = _v_concat([v for _, v in parts])
            order = np.argsort(keys, kind="stable")
            yield keys[order], _v_take(vcol, order)
    finally:
        runs.close()


# --------------------------------------------------------------------------
# ColumnarKeyMultiValue
# --------------------------------------------------------------------------


class ColumnarKeyMultiValue:
    """Grouped (key, [values...]) pairs as columns.

    A live/spilled **group batch** is ``(unique keys, group offsets, value
    rows)``: values of key ``i`` are rows ``offsets[i]:offsets[i+1]`` of the
    value column, with ``offsets[0] == 0``.  Produced by
    :func:`convert_columnar` in key-sorted order.
    """

    def __init__(
        self,
        schema: RecordSchema,
        pagesize: int = 64 * 1024 * 1024,
        spool_dir: str | None = None,
    ):
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        self.schema = schema
        self.pagesize = pagesize
        self._spool_dir = spool_dir
        self._batches: list[tuple[np.ndarray, np.ndarray, Any]] = []
        self._live_bytes = 0
        self._spool: PageSpool | None = None
        self._nkmv = 0
        self._nvalues = 0

    # ------------------------------------------------------------------ write

    def add_group_batch(self, keys: np.ndarray, offsets: np.ndarray, vcol) -> None:
        """Append a batch of groups (columns already in schema dtypes)."""
        if len(keys) == 0:
            return
        if int(offsets[0]) != 0:
            raise ValueError("group offsets must start at 0")
        self._batches.append((keys, offsets, vcol))
        self._live_bytes += int(keys.nbytes + offsets.nbytes) + _v_nbytes(vcol)
        self._nkmv += len(keys)
        self._nvalues += int(offsets[-1])
        if self._live_bytes >= self.pagesize:
            self._spill()

    def add(self, key: Any, values: list) -> None:
        """Append one group (object-style compatibility shim)."""
        karr = self.schema.encode_keys([key])
        vcol = self.schema.build_values(values)
        offsets = np.array([0, _v_len(vcol)], dtype=np.int64)
        self.add_group_batch(karr, offsets, vcol)

    def _spill(self) -> None:
        if not self._batches:
            return
        if self._spool is None:
            self._spool = PageSpool(dir=self._spool_dir, prefix="ckmv")
        keys = np.concatenate([k for k, _, _ in self._batches])
        offsets = _concat_offsets([o for _, o, _ in self._batches])
        vcol = _v_concat([v for _, _, v in self._batches])
        nbytes = self._spool.write_arrays(
            (keys, offsets) + _v_to_arrays(vcol), len(keys)
        )
        trc = current_tracer()
        if trc.enabled:
            trc.instant("store.spill", cat="spool", kind="ckmv",
                        rows=len(keys), bytes=nbytes)
        self._batches = []
        self._live_bytes = 0

    # ------------------------------------------------------------------- read

    def __len__(self) -> int:
        return self._nkmv

    @property
    def nvalues(self) -> int:
        return self._nvalues

    @property
    def nbytes(self) -> int:
        """Exact bytes held (live arrays + spilled page frames)."""
        return self._live_bytes + (0 if self._spool is None else self._spool.nbytes)

    @property
    def out_of_core(self) -> bool:
        return self._spool is not None and self._spool.npages > 0

    @property
    def spilled_pages(self) -> int:
        return 0 if self._spool is None else self._spool.npages

    def iter_group_batches(self) -> Iterator[tuple[np.ndarray, np.ndarray, Any]]:
        if self._spool is not None:
            for arrays in self._spool.iter_pages():
                yield (
                    arrays[0],
                    arrays[1],
                    _v_from_arrays(arrays[2:], self.schema.ragged_values),
                )
        yield from self._batches

    def __iter__(self) -> Iterator[tuple[Any, list]]:
        for keys, offsets, vcol in self.iter_group_batches():
            for i in range(len(keys)):
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                values = [_v_decode(vcol, self.schema, j) for j in range(lo, hi)]
                yield self.schema.decode_key(keys[i]), values

    # ------------------------------------------------------------------ admin

    def clear(self) -> None:
        self._batches = []
        self._live_bytes = 0
        self._nkmv = 0
        self._nvalues = 0
        if self._spool is not None:
            self._spool.close()
            self._spool = None

    def close(self) -> None:
        self.clear()

    def __enter__(self) -> "ColumnarKeyMultiValue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarKeyMultiValue(nkmv={self._nkmv}, nvalues={self._nvalues})"


def _concat_offsets(offs: Sequence[np.ndarray]) -> np.ndarray:
    out = [np.asarray(offs[0], dtype=np.int64)]
    base = int(offs[0][-1])
    for off in offs[1:]:
        out.append(np.asarray(off[1:], dtype=np.int64) + base)
        base += int(off[-1])
    return np.concatenate(out)


def _take_groups(
    keys: np.ndarray, offsets: np.ndarray, vcol, idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, Any]:
    """Select groups ``idx`` (reordering keys and their value runs)."""
    lengths = (offsets[1:] - offsets[:-1])[idx]
    new_off = np.zeros(len(idx) + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_off[1:])
    starts = offsets[:-1][idx]
    pos = np.repeat(starts - new_off[:-1], lengths) + np.arange(new_off[-1])
    return keys[idx], new_off, _v_take(vcol, pos)


# --------------------------------------------------------------------------
# Sort-based convert
# --------------------------------------------------------------------------


def convert_columnar(
    kv: ColumnarKeyValue,
    pagesize: int,
    spool_dir: str | None = None,
) -> ColumnarKeyMultiValue:
    """Group a columnar KV into a columnar KMV via the external sort.

    Keys come out in sorted column order (the object convert emits
    first-seen order instead — callers that need a specific order sort the
    KMV afterwards, as mrblast does).  Within a key, value order is the KV
    emission order (the sort is stable), matching the object path exactly.
    """
    kmv = ColumnarKeyMultiValue(kv.schema, pagesize=pagesize, spool_dir=spool_dir)
    carry: tuple[Any, list] | None = None  # (key scalar, [value column parts])
    try:
        for skeys, svals in iter_sorted_batches(kv):
            n = len(skeys)
            change = np.flatnonzero(skeys[1:] != skeys[:-1]) + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [n]))
            if carry is not None:
                if skeys[0] == carry[0]:
                    # The first run continues the carried key.
                    carry[1].append(_v_slice(svals, 0, int(ends[0])))
                    if len(starts) == 1:
                        continue  # the whole batch was one key; keep carrying
                    starts, ends = starts[1:], ends[1:]
                _flush_carry(kmv, carry)
                carry = None
            # Hold back the final run: the next batch may continue it.
            carry = (skeys[-1], [_v_slice(svals, int(starts[-1]), n)])
            starts, ends = starts[:-1], ends[:-1]
            if len(starts):
                base = int(starts[0])
                offsets = np.concatenate((starts, ends[-1:])).astype(np.int64) - base
                vcol = _v_slice(svals, base, int(ends[-1]))
                kmv.add_group_batch(skeys[starts], offsets, vcol)
        if carry is not None:
            _flush_carry(kmv, carry)
    except BaseException:
        kmv.close()
        raise
    return kmv


def _flush_carry(kmv: ColumnarKeyMultiValue, carry: tuple[Any, list]) -> None:
    key, parts = carry
    vcol = _v_concat(parts)
    keys = np.array([key], dtype=kmv.schema.key_dtype)
    offsets = np.array([0, _v_len(vcol)], dtype=np.int64)
    kmv.add_group_batch(keys, offsets, vcol)


# --------------------------------------------------------------------------
# KMV sorting (spool-aware)
# --------------------------------------------------------------------------


class _KmvRunCursor:
    """One rank-sorted KMV run: consecutive chunk pages in a runs spool."""

    def __init__(self, spool: PageSpool, pages: range, ragged: bool):
        self._spool = spool
        self._pages = list(pages)
        self._next = 0
        self._ragged = ragged
        self.ranks: np.ndarray = np.empty(0)
        self.keys: np.ndarray = np.empty(0)
        self.offsets: np.ndarray = np.zeros(1, dtype=np.int64)
        self.vcol: Any = None
        self._loaded = False

    def refill(self) -> bool:
        while (not self._loaded or len(self.keys) == 0) and self._next < len(self._pages):
            arrays = self._spool.read_page(self._pages[self._next])
            self._next += 1
            self.ranks = arrays[0]
            self.keys = arrays[1]
            self.offsets = arrays[2]
            self.vcol = _v_from_arrays(arrays[3:], self._ragged)
            self._loaded = True
        return self._loaded and len(self.keys) > 0

    def take_upto(self, boundary):
        """Pop the prefix of groups with rank ``<= boundary``."""
        cnt = int(np.searchsorted(self.ranks, boundary, side="right"))
        if cnt == 0:
            return None
        ngroups = len(self.keys)
        row_cut = int(self.offsets[cnt])
        part = (
            self.ranks[:cnt],
            self.keys[:cnt],
            self.offsets[: cnt + 1].copy(),
            _v_slice(self.vcol, 0, row_cut),
        )
        self.ranks = self.ranks[cnt:]
        self.keys = self.keys[cnt:]
        nrows = int(self.offsets[ngroups])
        self.vcol = _v_slice(self.vcol, row_cut, nrows)
        self.offsets = self.offsets[cnt:] - row_cut
        return part


def sort_kmv_columnar(
    kmv: ColumnarKeyMultiValue,
    key: Callable[[Any], Any] | None = None,
) -> ColumnarKeyMultiValue:
    """Return a new KMV with groups ordered by ``key(decoded key)``.

    Keys are unique after convert, so sorting never merges groups — it only
    permutes them.  In-core this is one argsort; out-of-core each KMV page
    becomes a rank-sorted run of chunk pages and runs are merged by rank
    with one chunk resident per run (same machinery as the KV sort).
    Stable: two keys mapping to the same rank keep their current relative
    order, which is exactly what ``sorted(kmv, key=...)`` does on the
    object path.
    """
    schema = kmv.schema

    def ranks_of(keys: np.ndarray) -> np.ndarray:
        if key is None:
            return keys
        arr = np.asarray([key(schema.decode_key(k)) for k in keys])
        if arr.dtype == object:
            raise TypeError(
                "sort key function must map keys to numeric/str ranks for the "
                "columnar KMV sort"
            )
        return arr

    if not kmv.out_of_core:
        out = ColumnarKeyMultiValue(schema, pagesize=kmv.pagesize, spool_dir=kmv._spool_dir)
        batches = list(kmv.iter_group_batches())
        if not batches:
            return out
        keys = np.concatenate([k for k, _, _ in batches])
        offsets = _concat_offsets([o for _, o, _ in batches])
        vcol = _v_concat([v for _, _, v in batches])
        order = np.argsort(ranks_of(keys), kind="stable")
        out.add_group_batch(*_take_groups(keys, offsets, vcol, order))
        return out

    ragged = schema.ragged_values
    nruns = kmv.spilled_pages + len(kmv._batches)
    bytes_per_group = max(1, kmv.nbytes // max(len(kmv), 1))
    chunk_groups = max(16, kmv.pagesize // max(nruns, 1) // bytes_per_group)

    runs = PageSpool(dir=kmv._spool_dir, prefix="kmvsort")
    out = ColumnarKeyMultiValue(schema, pagesize=kmv.pagesize, spool_dir=kmv._spool_dir)
    try:
        cursors: list[_KmvRunCursor] = []
        for keys, offsets, vcol in kmv.iter_group_batches():
            order = np.argsort(ranks_of(keys), kind="stable")
            skeys, soff, svals = _take_groups(keys, offsets, vcol, order)
            sranks = ranks_of(skeys)
            start = runs.npages
            for lo in range(0, len(skeys), chunk_groups):
                hi = min(lo + chunk_groups, len(skeys))
                off = soff[lo : hi + 1] - soff[lo]
                vc = _v_slice(svals, int(soff[lo]), int(soff[hi]))
                runs.write_arrays(
                    (sranks[lo:hi], skeys[lo:hi], off) + _v_to_arrays(vc), hi - lo
                )
            cursors.append(_KmvRunCursor(runs, range(start, runs.npages), ragged))

        while True:
            alive = [c for c in cursors if c.refill()]
            if not alive:
                break
            boundary = min(c.ranks[-1] for c in alive)
            parts = [p for c in alive if (p := c.take_upto(boundary)) is not None]
            ranks = np.concatenate([p[0] for p in parts])
            keys = np.concatenate([p[1] for p in parts])
            offsets = _concat_offsets([p[2] for p in parts])
            vcol = _v_concat([p[3] for p in parts])
            order = np.argsort(ranks, kind="stable")
            out.add_group_batch(*_take_groups(keys, offsets, vcol, order))
    except BaseException:
        out.close()
        raise
    finally:
        runs.close()
    return out
