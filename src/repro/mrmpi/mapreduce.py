"""The MapReduce object: collective map/collate/reduce over MPI ranks.

Mirrors Sandia's MapReduce-MPI call sequence.  All methods below are
*collective*: every rank of the communicator must call them in the same
order (the class dups the caller's communicator so its internal traffic can
never collide with application messages).

Map styles (the ``mapstyle`` setting of the original library):

- ``CHUNK``:   task block ``[rank*nmap/P, (rank+1)*nmap/P)`` per rank.
- ``STRIDED``: task ``i`` runs on rank ``i % P``.
- ``MASTER_WORKER``: rank 0 acts as master and assigns tasks to the
  remaining ranks one at a time, first-come first-served.  This is the mode
  the paper uses for BLAST, where per-task runtimes are wildly non-uniform
  and dynamic load balancing is essential.

Data planes: with a :class:`~repro.mrmpi.schema.RecordSchema` the KV/KMV
datasets are **columnar** (typed array pages, vectorised shuffle hashing,
sort-based grouping, binary spill); without one they are **object** stores
(arbitrary Python keys/values, pickle spill) — the legacy path and the
parity oracle for the columnar one.  Both planes share the same collective
API, and per-phase traffic is recorded in :attr:`MapReduce.stats`.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from enum import IntEnum
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from repro.mpi.comm import Comm
from repro.mpi.exceptions import DegradedRankLoss, MPIError, RankFailure
from repro.mpi.ops import ANY_SOURCE, LAND, MAX, SUM, Status
from repro.mrmpi.columnar import (
    ColumnarKeyMultiValue,
    ColumnarKeyValue,
    _v_slice,
    _v_take,
    _v_to_arrays,
    _v_concat,
    _v_nbytes,
    convert_columnar,
    iter_sorted_batches,
    sort_kmv_columnar,
)
from repro.mrmpi.hashing import hash_key_column, key_bytes, stable_hash
from repro.mrmpi.keymultivalue import (
    ObjectKeyMultiValue,
    convert_kv_to_kmv,
)
from repro.mrmpi.keyvalue import ObjectKeyValue
from repro.mrmpi.schema import RecordSchema
from repro.mrmpi.spool import PageSpool, approx_size
from repro.sched import SchedReport, SpeculationPolicy, StragglerTracker

__all__ = ["MapReduce", "MapStyle", "KEEP_SCHEMA"]

_TAG_REQUEST = 101
_TAG_ASSIGN = 102
_TAG_GATHER = 103
_TAG_REPORT = 104

#: Sentinel task id telling a worker to retire.
_NO_MORE_WORK = -1

#: Sentinel task id telling a worker to ask again shortly (sched dispatch:
#: no queued work, but in-flight units may yet need a speculative copy or a
#: reassignment, so the worker must not retire).
_WAIT_RETRY = -2

#: Sentinel for reduce()/map_kv() meaning "output uses the current schema".
KEEP_SCHEMA = object()

KVStore = Union[ObjectKeyValue, ColumnarKeyValue]
KMVStore = Union[ObjectKeyMultiValue, ColumnarKeyMultiValue]


def _arena_attrs(comm: Comm) -> dict:
    """Arena hit/overflow/residency attributes for exchange-round instants.

    Empty on transports without an arena (thread backend, arena=False), so
    trace schemas stay backward compatible.  Counters are rank-local
    running totals; per-round deltas fall out of consecutive instants.
    """
    stats_fn = getattr(comm.network, "arena_stats", None)
    stats = stats_fn() if stats_fn is not None else {}
    if not stats:
        return {}
    return {
        "arena_sends": stats["sends"],
        "arena_overflows": stats["overflows"],
        "arena_resident_bytes": stats["resident_bytes"],
        "arena_peak_resident_bytes": stats["peak_resident_bytes"],
    }


class MapStyle(IntEnum):
    CHUNK = 0
    STRIDED = 1
    MASTER_WORKER = 2


class MapReduce:
    """Per-rank handle on a distributed KV/KMV dataset.

    Parameters
    ----------
    comm:
        Communicator of the SPMD job (duplicated internally).
    memsize:
        Per-rank page size in bytes before KV/KMV pages spill to disk
        (the original library's ``memsize``, default 64 MB there too).
    mapstyle:
        Default task-distribution style for :meth:`map` / :meth:`map_items`.
    spool_dir:
        Directory for page files (defaults to the system temp dir).  On the
        paper's cluster this would be Lustre, since Ranger nodes have no
        local scratch — one reason mrblast bounds its working set instead.
    schema:
        When given, KV datasets are columnar (typed array pages described
        by the :class:`~repro.mrmpi.schema.RecordSchema`); when ``None``
        (default) the object stores are used.
    """

    def __init__(
        self,
        comm: Comm,
        memsize: int = 64 * 1024 * 1024,
        mapstyle: MapStyle = MapStyle.MASTER_WORKER,
        spool_dir: str | None = None,
        nbuckets: int = 16,
        schema: RecordSchema | None = None,
    ) -> None:
        self.comm = comm.dup()
        self._tracer = self.comm.tracer
        self.memsize = int(memsize)
        self.mapstyle = MapStyle(mapstyle)
        self.spool_dir = spool_dir
        self.nbuckets = nbuckets
        self.schema = schema
        self.kv: Optional[KVStore] = None
        self.kmv: Optional[KMVStore] = None
        #: accumulated seconds per phase: map/aggregate/convert/reduce/gather
        self.timers: dict[str, float] = {}
        #: accumulated traffic per phase: {"pairs_moved", "bytes_moved"}.
        #: Only pairs staged for *other* ranks count as moved; bytes are
        #: exact array bytes on the columnar plane and ``approx_size``
        #: estimates on the object plane.
        self.stats: dict[str, dict[str, int]] = {}
        #: scheduler report of the most recent sched-dispatched map
        #: (``None`` until a map runs with speculation/degraded enabled).
        self.sched: Optional[SchedReport] = None
        #: counters accumulated across all sched-dispatched maps.
        self.sched_stats: dict[str, int] = {
            "speculated": 0, "wasted": 0, "reassigned": 0}
        #: *global* ranks lost across all degraded maps (the comm shrinks
        #: past them, so comm-local numbering is not stable).
        self.lost_ranks: tuple[int, ...] = ()
        #: True once any map completed degraded (a rank was lost).
        self.degraded_run = False

    # --------------------------------------------------------------- plumbing

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def _fresh_kv(self, schema: RecordSchema | None = None) -> KVStore:
        schema = self.schema if schema is KEEP_SCHEMA or schema is None else schema
        if schema is not None:
            return ColumnarKeyValue(schema, pagesize=self.memsize, spool_dir=self.spool_dir)
        return ObjectKeyValue(pagesize=self.memsize, spool_dir=self.spool_dir)

    def _out_kv(self, out_schema) -> KVStore:
        """Destination store for reduce()/map_kv() output."""
        if out_schema is KEEP_SCHEMA:
            return self._fresh_kv()
        if out_schema is None:
            return ObjectKeyValue(pagesize=self.memsize, spool_dir=self.spool_dir)
        return ColumnarKeyValue(out_schema, pagesize=self.memsize, spool_dir=self.spool_dir)

    def _phase_begin(self, phase: str) -> float:
        """Start a phase: stamp ``t0`` and open the ``mr.<phase>`` span."""
        t0 = time.perf_counter()
        trc = self._tracer
        if trc.enabled:
            trc.begin(f"mr.{phase}", cat="mr")
        return t0

    def _phase_end(self, phase: str, t0: float) -> None:
        """Close a phase: one ``dt`` feeds both the legacy timer and the
        span's ``seconds`` attribute, so trace-derived phase totals are
        bit-identical to :attr:`timers` (same floats, same addition order).
        """
        dt = time.perf_counter() - t0
        self.timers[phase] = self.timers.get(phase, 0.0) + dt
        trc = self._tracer
        if trc.enabled:
            trc.end(seconds=dt)

    def _bump(self, phase: str, pairs: int, nbytes: int) -> None:
        st = self.stats.setdefault(phase, {"pairs_moved": 0, "bytes_moved": 0})
        st["pairs_moved"] += int(pairs)
        st["bytes_moved"] += int(nbytes)
        trc = self._tracer
        if trc.enabled:
            trc.instant("mr.traffic", cat="mr", phase=phase,
                        pairs=int(pairs), bytes=int(nbytes))
            trc.metrics.counter(f"mr.{phase}.pairs_moved").add(int(pairs))
            trc.metrics.counter(f"mr.{phase}.bytes_moved").add(int(nbytes))

    def _require_kv(self) -> KVStore:
        if self.kv is None:
            raise RuntimeError("no KeyValue dataset; call map() first")
        return self.kv

    def _require_kmv(self) -> KMVStore:
        if self.kmv is None:
            raise RuntimeError("no KeyMultiValue dataset; call convert()/collate() first")
        return self.kmv

    # -------------------------------------------------------------------- map

    def map(
        self,
        nmap: int,
        mapper: Callable[[int, KVStore], None],
        addflag: bool = False,
        mapstyle: MapStyle | None = None,
        count: bool = False,
        speculation: SpeculationPolicy | None = None,
        degraded: bool = False,
    ) -> int:
        """Run ``mapper(itask, kv)`` for each task id in ``[0, nmap)``.

        Returns the local number of KV pairs after the map, or the global
        number with ``count=True`` (a collective allreduce — opt-in, since
        most callers ignore the return value).  With ``addflag`` the new
        pairs are appended to the existing KV dataset (used by mrblast's
        multi-iteration loop); otherwise a fresh dataset is started.
        """
        return self.map_items(
            range(nmap), lambda i, item, kv: mapper(i, kv), addflag, mapstyle,
            count=count, speculation=speculation, degraded=degraded,
        )

    def map_items(
        self,
        items: Sequence[Any],
        mapper: Callable[[int, Any, KVStore], None],
        addflag: bool = False,
        mapstyle: MapStyle | None = None,
        locality_key: Callable[[Any], Any] | None = None,
        count: bool = False,
        speculation: SpeculationPolicy | None = None,
        degraded: bool = False,
    ) -> int:
        """Run ``mapper(itask, items[itask], kv)`` over a list of work items.

        ``items`` must be identical on every rank (SPMD); only task *indices*
        travel over the wire, matching how the original library hands out
        file/task ids rather than payloads.  Returns the local pair count
        (global with ``count=True``, which adds a collective allreduce).

        With ``locality_key`` (master/worker mode only) the master becomes
        *location-aware*: a worker requesting more work is preferentially
        given an item whose key matches the item it just finished — the
        scheduling improvement the paper announces in §V ("distribute the
        work unit tuples to those ranks that have already been processing
        the same DB partitions").  Workers with no matching work claim a
        fresh key (spreading keys across workers) and finally steal from the
        fullest remaining key.

        ``speculation`` (master/worker mode only) enables speculative
        re-execution: the master keeps an online P² quantile of unit
        runtimes and re-issues a unit to an idle worker once its elapsed
        time exceeds ``factor x`` the running median.  Workers buffer each
        unit's output in a staging store and only merge it into the real
        dataset once the master accepts their completion, so the winner is
        chosen deterministically (first completion, dedup by unit id) and
        the final dataset is identical to a no-speculation run.

        ``degraded`` (master/worker mode only) lets the job survive worker
        death mid-map: a worker hitting a rank failure marks itself dead on
        the transport and raises
        :class:`~repro.mpi.exceptions.DegradedRankLoss` instead of aborting
        the job; the master reassigns its in-flight, queued *and
        previously-completed* units to survivors (the dead rank's local
        dataset is lost with it), and the communicator shrinks past the dead
        rank for the rest of this MapReduce object's life.  The scheduler
        report lands in :attr:`sched` on every surviving rank.
        """
        t0 = self._phase_begin("map")
        style = self.mapstyle if mapstyle is None else MapStyle(mapstyle)
        if self.kv is None or not addflag:
            if self.kv is not None:
                # Starting fresh over a live dataset (e.g. the previous
                # iteration's reduce output): close it so its spill pages
                # are reclaimed now, not at job teardown.
                self.kv.close()
            self.kv = self._fresh_kv()
        kv = self.kv
        nmap = len(items)
        sched_active = (
            (speculation is not None or degraded)
            and self.size > 1
            and style is MapStyle.MASTER_WORKER
        )

        if sched_active:
            self._map_items_sched(
                items, mapper, kv, locality_key, speculation, degraded)
        elif self.size == 1 or style is not MapStyle.MASTER_WORKER:
            for itask in self._static_tasks(nmap, style):
                mapper(itask, items[itask], kv)
        elif self.rank == 0:
            if locality_key is None:
                self._run_master(nmap)
            else:
                self._run_locality_master(items, locality_key)
        else:
            self._run_worker(
                lambda itask: mapper(itask, items[itask], kv),
                key_of=None if locality_key is None else (lambda i: locality_key(items[i])),
            )

        if self.size > 1 and style is MapStyle.MASTER_WORKER:
            # Epoch fence: a fast rank's next map_items() request must not
            # reach this call's master (they share tags).  The collective
            # count used to provide this synchronisation implicitly.
            self.comm.barrier()

        self._phase_end("map", t0)
        self._bump("map", len(kv), kv.nbytes if isinstance(kv, ColumnarKeyValue) else 0)
        if count:
            return self.kv_stats()[0]
        return len(kv)

    def _map_items_sched(
        self,
        items: Sequence[Any],
        mapper: Callable[[int, Any, KVStore], None],
        kv: KVStore,
        locality_key: Callable[[Any], Any] | None,
        speculation: SpeculationPolicy | None,
        degraded: bool,
    ) -> None:
        """Sched-dispatched MASTER_WORKER map (speculation / degraded mode).

        On return ``self.comm`` may have shrunk past dead ranks, and
        :attr:`sched` holds the master's report on every surviving rank.
        A worker that died raises :class:`DegradedRankLoss` out of here.
        """
        if self.rank == 0:
            report, dead_local = self._run_sched_master(
                items, locality_key, speculation, degraded)
        else:
            report, dead_local = self._run_sched_worker(
                lambda itask, target: mapper(itask, items[itask], target),
                kv,
                mapper,
                key_of=(None if locality_key is None
                        else (lambda i: locality_key(items[i]))),
                speculating=speculation is not None,
                degraded=degraded,
            )
        # Every survivor holds the same master-authored (report, dead set)
        # before anyone shrinks, so the shrunk communicators agree even when
        # a death is discovered after some workers were already retired.
        if dead_local:
            lost_global = tuple(sorted(self.comm.group[r] for r in dead_local))
            self.comm = self.comm.shrink(sorted(dead_local))
            self._tracer = self.comm.tracer
            self.lost_ranks = tuple(sorted(set(self.lost_ranks) | set(lost_global)))
            self.degraded_run = True
        self.sched = report
        self.sched_stats["speculated"] += report.speculated
        self.sched_stats["wasted"] += report.wasted
        self.sched_stats["reassigned"] += report.reassigned

    def _run_sched_master(
        self,
        items: Sequence[Any],
        locality_key: Callable[[Any], Any] | None,
        speculation: SpeculationPolicy | None,
        degraded: bool,
    ) -> tuple[SchedReport, frozenset[int]]:
        """Rank 0: pull dispatch with straggler speculation and death sweeps.

        The wire protocol differs from the plain master: worker requests
        carry ``(last_key, done_unit)`` and replies carry
        ``(keep, directive, extra)`` — ``keep`` resolves the worker's
        previous unit (commit or discard its staging), ``directive`` is a
        task id, ``_WAIT_RETRY`` (extra = seconds) or ``_NO_MORE_WORK``.
        Once every worker is retired the master runs one final death sweep
        and sends ``(report, dead_ranks)`` to each survivor on
        ``_TAG_REPORT``; membership is decided exactly once, here, so a
        death discovered after some workers were already retired cannot
        leave the fleet shrinking around different dead sets.
        """
        nmap = len(items)
        tracker = StragglerTracker(speculation)
        trc = self._tracer
        # Work queues: plain FIFO, or the locality structures of
        # _run_locality_master.  requeue() puts a reassigned unit at the
        # front so lost work restarts before fresh work.
        if locality_key is None:
            fifo = deque(range(nmap))

            def next_task(last_key: Any) -> Optional[int]:
                return fifo.popleft() if fifo else None

            def requeue(unit: int) -> None:
                fifo.appendleft(unit)
        else:
            queues: dict[Any, deque] = {}
            claim_order: deque = deque()
            for itask, item in enumerate(items):
                key = locality_key(item)
                if key not in queues:
                    queues[key] = deque()
                    claim_order.append(key)
                queues[key].append(itask)

            def next_task(last_key: Any) -> Optional[int]:
                q = queues.get(last_key)
                if q:
                    return q.popleft()
                while claim_order:
                    key = claim_order.popleft()
                    q = queues.get(key)
                    if q:
                        return q.popleft()
                remaining = [k for k, q in queues.items() if q]
                if not remaining:
                    return None
                victim = max(remaining, key=lambda k: len(queues[k]))
                return queues[victim].popleft()

            def requeue(unit: int) -> None:
                queues[locality_key(items[unit])].appendleft(unit)

        active = set(range(1, self.size))
        dead_local: set[int] = set()

        def sweep_dead() -> None:
            """Fold transport-level death flags into the dispatch state."""
            group = self.comm.group
            for global_rank in self.comm.network.dead_ranks():
                if global_rank not in group:
                    continue
                local = group.index(global_rank)
                if local in dead_local or local == 0:
                    continue
                dead_local.add(local)
                active.discard(local)
                now = time.monotonic()
                # In-flight units whose only live runner died go back to
                # the front of the queue; units the dead worker already
                # completed are lost with its local dataset and must be
                # redone from scratch.
                orphans = tracker.release_worker(local, now)
                lost_done = tracker.accepted_units(local)
                for unit in lost_done:
                    tracker.forget(unit)
                for unit in lost_done + orphans:
                    requeue(unit)
                tracker.reassigned += len(lost_done) + len(orphans)
                if trc.enabled:
                    trc.instant("sched.reassign", cat="sched", rank=local,
                                global_rank=global_rank,
                                inflight=len(orphans), completed=len(lost_done))
                # Void any requests the dead worker left in the mailbox.
                while self.comm._match(source=local, tag=_TAG_REQUEST,
                                       block=False) is not None:
                    pass

        def guarded_send(payload: Any, dest: int, tag: int = _TAG_ASSIGN) -> None:
            # In degraded mode a reply can race the destination's death
            # (process backend: broken pipe).  The next sweep retires it.
            if not degraded:
                self.comm.send(payload, dest=dest, tag=tag)
                return
            try:
                self.comm.send(payload, dest=dest, tag=tag)
            except MPIError:
                pass

        while active:
            if degraded:
                sweep_dead()
                if not active:
                    break
            msg = self.comm._match(source=ANY_SOURCE, tag=_TAG_REQUEST,
                                   block=False)
            if msg is None:
                time.sleep(0.002)
                continue
            src = msg.src
            if src in dead_local:
                continue  # stale request from a dead worker
            last_key, done = msg.payload
            now = time.monotonic()
            keep = False
            if done is not None:
                keep = tracker.complete(done, src, now)
            unit = next_task(last_key) if tracker.completed < nmap else None
            if unit is not None:
                tracker.assign(unit, src, now)
                guarded_send((keep, unit, None), src)
            elif tracker.completed < nmap:
                cand = None
                if speculation is not None:
                    cand = tracker.candidate(now, exclude_worker=src)
                if cand is not None:
                    tracker.assign(cand, src, now)
                    if trc.enabled:
                        trc.instant(
                            "sched.speculate", cat="sched", unit=cand,
                            rank=src, copies=len(tracker.runners(cand)),
                            median=tracker.median() or 0.0)
                    guarded_send((keep, cand, None), src)
                else:
                    guarded_send((keep, _WAIT_RETRY, 0.005), src)
            else:
                guarded_send((keep, _NO_MORE_WORK, None), src)
                active.discard(src)
        # Final death sweep: a worker that died after its last completion
        # (or between other workers' retirements) must still make it into
        # the dead set every survivor shrinks around.  If the sweep forgets
        # accepted units there is nobody left to redo them, so the map is
        # genuinely incomplete and the job aborts.
        if degraded:
            sweep_dead()
        if tracker.completed < nmap:
            raise MPIError(
                f"sched master: all workers lost with "
                f"{nmap - tracker.completed} of {nmap} units incomplete")
        lost_global = tuple(self.comm.group[r] for r in sorted(dead_local))
        report = tracker.report(lost_global, degraded=bool(dead_local))
        dead = frozenset(dead_local)
        for local in range(1, self.size):
            if local not in dead:
                guarded_send((report, tuple(sorted(dead))), local,
                             tag=_TAG_REPORT)
        return report, dead

    def _run_sched_worker(
        self,
        run_task: Callable[[int, KVStore], None],
        kv: KVStore,
        mapper: Any,
        key_of: Callable[[int], Any] | None,
        speculating: bool,
        degraded: bool,
    ) -> tuple[SchedReport, frozenset[int]]:
        """Worker side of sched dispatch.

        With speculation each unit runs against a fresh staging store that
        is merged into ``kv`` only once the master accepts the completion
        (first-copy-wins): a discarded loser leaves no trace, so output is
        identical to a no-speculation run.  Mappers with out-of-band state
        (e.g. mrsom's accumulator) expose optional ``begin_unit`` /
        ``commit_unit`` / ``discard_unit`` hooks that bracket each unit the
        same way.

        In degraded mode a rank failure is converted into
        :class:`DegradedRankLoss` after flagging this rank dead on the
        transport, so the master can route around it.
        """
        begin_hook = getattr(mapper, "begin_unit", None)
        commit_hook = getattr(mapper, "commit_unit", None)
        discard_hook = getattr(mapper, "discard_unit", None)
        last_key: Any = None
        pending: Optional[tuple[int, Optional[KVStore]]] = None
        stage: Optional[KVStore] = None
        try:
            while True:
                done = pending[0] if pending is not None else None
                self.comm.send((last_key, done), dest=0, tag=_TAG_REQUEST)
                keep, directive, extra = self.comm.recv(source=0, tag=_TAG_ASSIGN)
                if pending is not None:
                    unit, stage = pending
                    pending = None
                    if keep:
                        if stage is not None:
                            self._merge_stage(kv, stage)
                        if commit_hook is not None:
                            commit_hook(unit)
                    elif discard_hook is not None:
                        discard_hook(unit)
                    if stage is not None:
                        stage.close()
                        stage = None
                if directive == _NO_MORE_WORK:
                    # Retirement carries no membership; the master decides
                    # the dead set once, after every worker is parked, and
                    # distributes it with the report.
                    report, dead = self.comm.recv(source=0, tag=_TAG_REPORT)
                    return report, frozenset(dead)
                if directive == _WAIT_RETRY:
                    time.sleep(extra)
                    continue
                itask = directive
                if speculating:
                    stage = self._fresh_kv()
                if begin_hook is not None:
                    begin_hook(itask)
                run_task(itask, stage if speculating else kv)
                pending = (itask, stage)
                stage = None
                if key_of is not None:
                    last_key = key_of(itask)
        except RankFailure as exc:
            if stage is not None:
                stage.close()
            if pending is not None and pending[1] is not None:
                pending[1].close()
            if degraded:
                self.comm.network.mark_dead(self.comm.global_rank)
                raise DegradedRankLoss(self.comm.global_rank, repr(exc)) from exc
            raise

    @staticmethod
    def _merge_stage(kv: KVStore, stage: KVStore) -> None:
        """Append a staging store's pairs to the real dataset, plane-aware."""
        if isinstance(stage, ColumnarKeyValue):
            for karr, vcol in stage.iter_batches():
                kv.add_wire((karr,) + _v_to_arrays(vcol))
            return
        batch: list = []
        for pair in stage:
            batch.append(pair)
            if len(batch) >= 1024:
                kv.add_multi(batch)
                batch = []
        if batch:
            kv.add_multi(batch)

    def _static_tasks(self, nmap: int, style: MapStyle):
        if style is MapStyle.STRIDED:
            return range(self.rank, nmap, self.size)
        # CHUNK (and the degenerate single-rank MASTER_WORKER): contiguous block
        lo = self.rank * nmap // self.size
        hi = (self.rank + 1) * nmap // self.size
        if style is MapStyle.MASTER_WORKER and self.size == 1:
            return range(nmap)
        return range(lo, hi)

    def _run_master(self, nmap: int) -> None:
        """Rank 0: hand out task ids first-come-first-served, then retire all."""
        pending = deque(range(nmap))
        active_workers = self.size - 1
        while active_workers > 0:
            st = Status()
            self.comm.recv(source=ANY_SOURCE, tag=_TAG_REQUEST, status=st)
            if pending:
                self.comm.send(pending.popleft(), dest=st.Get_source(), tag=_TAG_ASSIGN)
            else:
                self.comm.send(_NO_MORE_WORK, dest=st.Get_source(), tag=_TAG_ASSIGN)
                active_workers -= 1

    def _run_locality_master(self, items: Sequence[Any], key_of: Callable[[Any], Any]) -> None:
        """Rank 0 with per-key queues: match, then claim, then steal."""
        queues: dict[Any, deque] = {}
        claim_order: deque = deque()
        for itask, item in enumerate(items):
            key = key_of(item)
            if key not in queues:
                queues[key] = deque()
                claim_order.append(key)
            queues[key].append(itask)

        def next_task(last_key: Any) -> int:
            q = queues.get(last_key)
            if q:
                return q.popleft()
            while claim_order:
                key = claim_order.popleft()  # claimed exclusively, like the
                q = queues.get(key)  # DES affinity scheduler
                if q:
                    return q.popleft()
            remaining = [k for k, q in queues.items() if q]
            if not remaining:
                return _NO_MORE_WORK
            victim = max(remaining, key=lambda k: len(queues[k]))
            return queues[victim].popleft()

        active_workers = self.size - 1
        while active_workers > 0:
            st = Status()
            last_key = self.comm.recv(source=ANY_SOURCE, tag=_TAG_REQUEST, status=st)
            itask = next_task(last_key)
            self.comm.send(itask, dest=st.Get_source(), tag=_TAG_ASSIGN)
            if itask == _NO_MORE_WORK:
                active_workers -= 1

    def _run_worker(
        self,
        run_task: Callable[[int], None],
        key_of: Callable[[int], Any] | None = None,
    ) -> None:
        last_key: Any = None
        while True:
            request = self.rank if key_of is None else last_key
            self.comm.send(request, dest=0, tag=_TAG_REQUEST)
            itask = self.comm.recv(source=0, tag=_TAG_ASSIGN)
            if itask == _NO_MORE_WORK:
                return
            run_task(itask)
            if key_of is not None:
                last_key = key_of(itask)

    def map_kv(
        self,
        mapper: Callable[[Any, Any, KVStore], None],
        count: bool = False,
        out_schema: Any = KEEP_SCHEMA,
    ) -> int:
        """Map over the *existing* KV pairs, producing a new KV dataset.

        The original library's ``map(mr, ...)`` variant: every local pair is
        passed to ``mapper(key, value, kv_out)``; no communication happens
        (pairs are transformed where they live).  Returns the local count
        (global with ``count=True``).  ``out_schema`` selects the output
        plane: the current schema by default, ``None`` for the object store,
        or a different :class:`RecordSchema`.
        """
        t0 = self._phase_begin("map")
        kv = self._require_kv()
        new_kv = self._out_kv(out_schema)
        try:
            for key, value in kv:
                mapper(key, value, new_kv)
        except BaseException:
            # The job is unwinding (abort, crash, mapper bug): the orphaned
            # intermediate must not leak its spill file.  Exceptions keep
            # this frame alive via their traceback, so GC won't save us.
            new_kv.close()
            raise
        kv.close()
        self.kv = new_kv
        self._phase_end("map", t0)
        if count:
            return self.kv_stats()[0]
        return len(new_kv)

    # -------------------------------------------------------- shuffle & group

    def aggregate(
        self,
        hash_fn: Callable[[Any], int] | None = None,
        exchange_bytes: int | None = None,
    ) -> int:
        """Redistribute KV pairs so all copies of a key land on one rank.

        The destination rank of a key is ``hash(key) % nprocs`` (stable FNV
        by default).  The exchange runs in *rounds* of personalised
        all-to-alls, each staging at most ``exchange_bytes`` (default:
        ``memsize``) of outgoing pairs per rank, so aggregation of an
        out-of-core dataset never materialises it in memory — the original
        library pages its exchange the same way.

        On the columnar plane each round is vectorised: one
        :func:`~repro.mrmpi.hashing.hash_key_column` over the staged key
        column, one stable argsort by destination, and per-destination
        array slices on the wire — no per-pair Python work.  A custom
        ``hash_fn`` forces the record-at-a-time path (the vectorised hash
        only reproduces the stable FNV).
        """
        t0 = self._phase_begin("aggregate")
        kv = self._require_kv()
        budget = self.memsize if exchange_bytes is None else int(exchange_bytes)
        if budget < 1:
            raise ValueError(f"exchange_bytes must be >= 1, got {budget}")
        if isinstance(kv, ColumnarKeyValue) and hash_fn is None:
            new_kv = self._aggregate_columnar(kv, budget)
        else:
            new_kv = self._aggregate_object(kv, hash_fn or stable_hash, budget)
        kv.close()
        self.kv = new_kv
        self._phase_end("aggregate", t0)
        return len(new_kv)

    def _aggregate_object(
        self, kv: KVStore, h: Callable[[Any], int], budget: int
    ) -> KVStore:
        if isinstance(kv, ColumnarKeyValue):
            new_kv: KVStore = ColumnarKeyValue(
                kv.schema, pagesize=self.memsize, spool_dir=self.spool_dir
            )
        else:
            new_kv = ObjectKeyValue(pagesize=self.memsize, spool_dir=self.spool_dir)
        source = iter(kv)
        local_done = False
        round_idx = 0
        try:
            while True:
                outgoing: list[list] = [[] for _ in range(self.size)]
                staged = 0
                moved_pairs = 0
                moved_bytes = 0
                while not local_done and staged < budget:
                    try:
                        key, value = next(source)
                    except StopIteration:
                        local_done = True
                        break
                    dest = h(key) % self.size
                    outgoing[dest].append((key, value))
                    sz = approx_size(key) + approx_size(value)
                    staged += sz
                    if dest != self.rank:
                        moved_pairs += 1
                        moved_bytes += sz
                self._bump("aggregate", moved_pairs, moved_bytes)
                incoming = self.comm.alltoall(outgoing)
                for batch in incoming:
                    new_kv.add_multi(batch)
                trc = self._tracer
                if trc.enabled:
                    trc.instant("mr.exchange_round", cat="mr", round=round_idx,
                                pairs=moved_pairs, bytes=moved_bytes,
                                **_arena_attrs(self.comm))
                round_idx += 1
                if self.comm.allreduce(local_done, op=LAND):
                    break
        except BaseException:
            # Interrupted mid-exchange (peer abort, injected crash): close
            # the half-built destination so its spill file is reclaimed.
            new_kv.close()
            raise
        return new_kv

    def _aggregate_columnar(self, kv: ColumnarKeyValue, budget: int) -> ColumnarKeyValue:
        schema = kv.schema
        new_kv = ColumnarKeyValue(schema, pagesize=self.memsize, spool_dir=self.spool_dir)
        batches = kv.iter_batches()
        leftover: tuple[np.ndarray, Any] | None = None
        local_done = False
        size = self.size
        round_idx = 0
        try:
            while True:
                round_pairs = 0
                round_bytes = 0
                staged: list[tuple[np.ndarray, Any]] = []
                staged_bytes = 0
                while not local_done and staged_bytes < budget:
                    if leftover is not None:
                        karr, vcol = leftover
                        leftover = None
                    else:
                        try:
                            karr, vcol = next(batches)
                        except StopIteration:
                            local_done = True
                            break
                    nb = int(karr.nbytes) + _v_nbytes(vcol)
                    if staged_bytes + nb > budget and len(karr) > 1:
                        # Split oversized batches so one round never stages
                        # far past the budget (rows are sized uniformly
                        # enough that a proportional cut is fine).
                        keep = max(1, (budget - staged_bytes) * len(karr) // nb)
                        if keep < len(karr):
                            staged.append((karr[:keep], _v_slice(vcol, 0, keep)))
                            leftover = (karr[keep:], _v_slice(vcol, keep, len(karr)))
                            break
                    staged.append((karr, vcol))
                    staged_bytes += nb
                if staged:
                    keys = np.concatenate([k for k, _ in staged])
                    vcol = _v_concat([v for _, v in staged])
                    dest = (
                        hash_key_column(keys, schema.key_kind) % np.uint64(size)
                    ).astype(np.int64)
                    order = np.argsort(dest, kind="stable")
                    skeys = keys[order]
                    svals = _v_take(vcol, order)
                    bounds = np.searchsorted(dest[order], np.arange(size + 1))
                    outgoing: list = []
                    for p in range(size):
                        lo, hi = int(bounds[p]), int(bounds[p + 1])
                        if lo == hi:
                            outgoing.append(None)
                            continue
                        arrs = (skeys[lo:hi],) + _v_to_arrays(_v_slice(svals, lo, hi))
                        outgoing.append(arrs)
                        if p != self.rank:
                            nb_out = sum(int(a.nbytes) for a in arrs)
                            self._bump("aggregate", hi - lo, nb_out)
                            round_pairs += hi - lo
                            round_bytes += nb_out
                else:
                    outgoing = [None] * size
                incoming = self.comm.alltoall(outgoing)
                for batch in incoming:
                    if batch is not None:
                        new_kv.add_wire(batch)
                trc = self._tracer
                if trc.enabled:
                    trc.instant("mr.exchange_round", cat="mr", round=round_idx,
                                pairs=round_pairs, bytes=round_bytes,
                                **_arena_attrs(self.comm))
                round_idx += 1
                if self.comm.allreduce(local_done, op=LAND):
                    break
        except BaseException:
            new_kv.close()
            raise
        return new_kv

    def _convert_local(self, kv: KVStore) -> KMVStore:
        if isinstance(kv, ColumnarKeyValue):
            return convert_columnar(kv, pagesize=self.memsize, spool_dir=self.spool_dir)
        return convert_kv_to_kmv(
            kv, pagesize=self.memsize, spool_dir=self.spool_dir, nbuckets=self.nbuckets
        )

    def convert(self) -> int:
        """Group the local KV pairs into KMV pairs (no communication).

        Columnar datasets group with a bounded-memory external merge sort
        (keys come out sorted); object datasets keep the hash-bucket path
        (keys come out in first-seen order per bucket).
        """
        t0 = self._phase_begin("convert")
        kv = self._require_kv()
        npairs = len(kv)
        self.kmv = self._convert_local(kv)
        kv.close()
        self.kv = None
        self._phase_end("convert", t0)
        self._bump("convert", npairs, 0)
        return len(self.kmv)

    def collate(self, hash_fn: Callable[[Any], int] | None = None) -> int:
        """``aggregate`` + ``convert``: the shuffle step of Fig. 1.

        Afterwards each unique key exists on exactly one rank with *all* its
        values grouped.  Returns the global number of unique keys.
        """
        self.aggregate(hash_fn)
        self.convert()
        return int(self.comm.allreduce(len(self._require_kmv()), op=SUM))

    # ------------------------------------------------------------------ reduce

    def compress(self, reducer: Callable[[Any, list, KVStore], None]) -> int:
        """Local combiner: convert + reduce *without* any communication.

        The original library's ``compress()``: each rank groups its own KV
        pairs and runs the reducer on the local groups, producing a new
        (smaller) KV dataset.  Used before ``collate`` to shrink the shuffle
        volume when the reducer is idempotent under pre-aggregation (e.g.
        per-query top-K selection).  Returns the local KV pair count.
        """
        t0 = self._phase_begin("compress")
        kv = self._require_kv()
        local_kmv = self._convert_local(kv)
        if isinstance(kv, ColumnarKeyValue):
            new_kv: KVStore = ColumnarKeyValue(
                kv.schema, pagesize=self.memsize, spool_dir=self.spool_dir
            )
        else:
            new_kv = ObjectKeyValue(pagesize=self.memsize, spool_dir=self.spool_dir)
        kv.close()
        try:
            for key, values in local_kmv:
                reducer(key, values, new_kv)
        except BaseException:
            new_kv.close()
            local_kmv.close()
            raise
        local_kmv.close()
        self.kv = new_kv
        self._phase_end("compress", t0)
        return len(new_kv)

    def reduce(
        self,
        reducer: Callable[[Any, list, KVStore], None],
        count: bool = False,
        out_schema: Any = KEEP_SCHEMA,
    ) -> int:
        """Call ``reducer(key, values, kv_out)`` once per local KMV pair.

        Returns the local number of KV pairs emitted (global with
        ``count=True``).  ``out_schema`` selects the output plane exactly
        like :meth:`map_kv` — mrblast's reducer, for instance, emits plain
        per-query summaries and passes ``out_schema=None``.
        """
        t0 = self._phase_begin("reduce")
        kmv = self._require_kmv()
        new_kv = self._out_kv(out_schema)
        try:
            for key, values in kmv:
                reducer(key, values, new_kv)
        except BaseException:
            new_kv.close()
            raise
        kmv.close()
        self.kmv = None
        self.kv = new_kv
        self._phase_end("reduce", t0)
        self._bump("reduce", len(new_kv), 0)
        if count:
            return self.kv_stats()[0]
        return len(new_kv)

    # ----------------------------------------------------------- repartitioning

    def gather(self, nranks: int = 1, exchange_bytes: int | None = None) -> int:
        """Move all KV pairs onto the first ``nranks`` ranks (rank r → r % nranks).

        Transfers are paged: each message stages at most ``exchange_bytes``
        (default ``memsize``) so gathering an out-of-core dataset never
        materialises it in one message; a ``None`` sentinel ends each
        sender's stream.  Receivers drain senders in rank order, so arrival
        order is deterministic.
        """
        t0 = self._phase_begin("gather")
        if not (1 <= nranks <= self.size):
            raise ValueError(f"nranks must be in [1, {self.size}], got {nranks}")
        budget = self.memsize if exchange_bytes is None else int(exchange_bytes)
        if budget < 1:
            raise ValueError(f"exchange_bytes must be >= 1, got {budget}")
        kv = self._require_kv()
        dest = self.rank % nranks
        if self.rank >= nranks:
            if isinstance(kv, ColumnarKeyValue):
                self._gather_send_columnar(kv, dest, budget)
            else:
                self._gather_send_object(kv, dest, budget)
            self.comm.send(None, dest=dest, tag=_TAG_GATHER)
            kv.close()
            self.kv = self._fresh_kv()
        else:
            senders = [r for r in range(nranks, self.size) if r % nranks == self.rank]
            for r in senders:
                while True:
                    msg = self.comm.recv(source=r, tag=_TAG_GATHER)
                    if msg is None:
                        break
                    if isinstance(msg, list):
                        kv.add_multi(msg)
                    else:
                        kv.add_wire(msg)
        self.comm.barrier()
        self._phase_end("gather", t0)
        return len(self._require_kv())

    def _gather_send_object(self, kv: ObjectKeyValue, dest: int, budget: int) -> None:
        batch: list = []
        batch_bytes = 0
        for key, value in kv:
            batch.append((key, value))
            batch_bytes += approx_size(key) + approx_size(value)
            if batch_bytes >= budget:
                self.comm.send(batch, dest=dest, tag=_TAG_GATHER)
                self._bump("gather", len(batch), batch_bytes)
                batch = []
                batch_bytes = 0
        if batch:
            self.comm.send(batch, dest=dest, tag=_TAG_GATHER)
            self._bump("gather", len(batch), batch_bytes)

    def _gather_send_columnar(self, kv: ColumnarKeyValue, dest: int, budget: int) -> None:
        for karr, vcol in kv.iter_batches():
            nb = int(karr.nbytes) + _v_nbytes(vcol)
            nchunks = max(1, -(-nb // budget))  # ceil
            step = max(1, -(-len(karr) // nchunks))
            for lo in range(0, len(karr), step):
                hi = min(lo + step, len(karr))
                arrs = (karr[lo:hi],) + _v_to_arrays(_v_slice(vcol, lo, hi))
                self.comm.send(arrs, dest=dest, tag=_TAG_GATHER)
                self._bump("gather", hi - lo, sum(int(a.nbytes) for a in arrs))

    # ----------------------------------------------------------------- sorting

    def sort_keys(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort local KV pairs by key (stable, spool-aware).

        Columnar datasets sort by native column order (bytes for 'S' keys,
        numeric for int/float) via the external merge sort; a custom ``key``
        function is record-at-a-time and only supported on the object
        plane.  Object datasets sort in memory when in-core and through
        sorted runs + a k-way merge when spilled.
        """
        kv = self._require_kv()
        if isinstance(kv, ColumnarKeyValue):
            if key is not None:
                raise TypeError(
                    "sort_keys(key=...) is record-at-a-time and not supported "
                    "on the columnar plane; use an object-plane MapReduce"
                )
            new_kv = ColumnarKeyValue(
                kv.schema, pagesize=kv.pagesize, spool_dir=kv._spool_dir
            )
            try:
                for karr, vcol in iter_sorted_batches(kv):
                    new_kv.add_wire((karr,) + _v_to_arrays(vcol))
            except BaseException:
                new_kv.close()
                raise
            kv.close()
            self.kv = new_kv
            return
        rank_of = (lambda p: key(p[0])) if key else (lambda p: key_bytes(p[0]))
        self.kv = self._rebuild_sorted_object(
            kv, rank_of, ObjectKeyValue(pagesize=kv.pagesize, spool_dir=kv._spool_dir)
        )

    def sort_values(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort local KV pairs by value (object plane only)."""
        kv = self._require_kv()
        if isinstance(kv, ColumnarKeyValue):
            raise TypeError(
                "sort_values() compares decoded value objects and is only "
                "supported on the object plane"
            )
        rank_of = (lambda p: key(p[1])) if key else (lambda p: p[1])
        self.kv = self._rebuild_sorted_object(
            kv, rank_of, ObjectKeyValue(pagesize=kv.pagesize, spool_dir=kv._spool_dir)
        )

    def sort_multivalues(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort the value list inside every local KMV pair.

        Streams group by group (spool-aware on both planes); memory is
        bounded by the largest single group, as in the original library.
        """
        kmv = self._require_kmv()
        if isinstance(kmv, ColumnarKeyMultiValue):
            new_kmv: KMVStore = ColumnarKeyMultiValue(
                kmv.schema, pagesize=kmv.pagesize, spool_dir=kmv._spool_dir
            )
        else:
            new_kmv = ObjectKeyMultiValue(pagesize=kmv.pagesize, spool_dir=kmv._spool_dir)
        try:
            for k, vs in kmv:
                new_kmv.add(k, sorted(vs, key=key))
        except BaseException:
            new_kmv.close()
            raise
        kmv.close()
        self.kmv = new_kmv

    def sort_kmv_keys(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort the local KMV pairs by key (stable, spool-aware).

        mrblast uses this so each rank's output file lists queries in the
        *original input order* (the paper: results "maintain the original
        order of the queries" within each per-rank file).
        """
        kmv = self._require_kmv()
        if isinstance(kmv, ColumnarKeyMultiValue):
            new_kmv = sort_kmv_columnar(kmv, key)
            kmv.close()
            self.kmv = new_kmv
            return
        rank_of = (lambda p: key(p[0])) if key else (lambda p: key_bytes(p[0]))
        self.kmv = self._rebuild_sorted_object(
            kmv, rank_of, ObjectKeyMultiValue(pagesize=kmv.pagesize, spool_dir=kmv._spool_dir)
        )

    def _rebuild_sorted_object(self, store, rank_of, fresh):
        """Rebuild an object KV/KMV store in ``rank_of`` order, spool-aware."""
        try:
            for record in self._sorted_object_records(store, rank_of):
                fresh.add(*record)
        except BaseException:
            fresh.close()
            raise
        store.close()
        return fresh

    def _sorted_object_records(self, store, rank_of):
        """Yield an object store's records in rank order with bounded memory.

        In-core: one ``sorted``.  Spilled: every page becomes a sorted run
        of chunk pages in a scratch spool, merged with ``heapq.merge``
        (stable across and within runs), so only one chunk per run is
        resident at a time.
        """
        live = store._page
        spool = store._spool
        if spool is None or spool.npages == 0:
            yield from sorted(live, key=rank_of)
            return
        nruns = spool.npages + (1 if live else 0)
        runs = PageSpool(dir=store._spool_dir, prefix="osort")
        try:
            run_pages: list[range] = []

            def write_run(records: list) -> None:
                records = sorted(records, key=rank_of)
                chunk = max(64, len(records) // max(nruns, 1))
                start = runs.npages
                for lo in range(0, len(records), chunk):
                    runs.write_page(records[lo : lo + chunk])
                run_pages.append(range(start, runs.npages))

            for i in range(spool.npages):
                write_run(spool.read_page(i))
            if live:
                write_run(list(live))

            def stream(pages: range):
                for idx in pages:
                    yield from runs.read_page(idx)

            yield from heapq.merge(*(stream(pr) for pr in run_pages), key=rank_of)
        finally:
            runs.close()

    # -------------------------------------------------------------- inspection

    def scan_kv(self, fn: Callable[[Any, Any], None]) -> None:
        """Apply ``fn(key, value)`` to every local KV pair (read-only)."""
        for key, value in self._require_kv():
            fn(key, value)

    def scan_kmv(self, fn: Callable[[Any, list], None]) -> None:
        """Apply ``fn(key, values)`` to every local KMV pair (read-only)."""
        for key, values in self._require_kmv():
            fn(key, values)

    def kv_stats(self) -> tuple[int, int]:
        """Collective: (global KV pair count, max per-rank count)."""
        local = 0 if self.kv is None else len(self.kv)
        return (
            int(self.comm.allreduce(local, op=SUM)),
            int(self.comm.allreduce(local, op=MAX)),
        )

    def kmv_stats(self) -> tuple[int, int]:
        """Collective: (global KMV pair count, global value count)."""
        nk = 0 if self.kmv is None else len(self.kmv)
        nv = 0 if self.kmv is None else self.kmv.nvalues
        return (
            int(self.comm.allreduce(nk, op=SUM)),
            int(self.comm.allreduce(nv, op=SUM)),
        )

    def shuffle_stats(self) -> dict[str, dict[str, int]]:
        """Collective: per-phase traffic counters summed over all ranks."""
        phases = sorted(set(self.comm.allreduce(list(self.stats), op=SUM)))
        out: dict[str, dict[str, int]] = {}
        for phase in phases:
            local = self.stats.get(phase, {"pairs_moved": 0, "bytes_moved": 0})
            out[phase] = {
                "pairs_moved": int(self.comm.allreduce(local["pairs_moved"], op=SUM)),
                "bytes_moved": int(self.comm.allreduce(local["bytes_moved"], op=SUM)),
            }
        return out

    # ------------------------------------------------------------------- admin

    def reset(self) -> None:
        """Drop the KV/KMV datasets but keep the handle alive for the next job.

        The resident service (:mod:`repro.serve`) reuses one MapReduce object
        per rank across its whole session — one ``dup``'d communicator, one
        spool directory, cumulative :attr:`timers`/:attr:`stats`/scheduler
        counters — instead of tearing it down per job.  ``reset()`` is the
        per-job boundary: both datasets are closed (spill pages reclaimed)
        so the next ``map_items`` starts clean.
        """
        if self.kv is not None:
            self.kv.close()
            self.kv = None
        if self.kmv is not None:
            self.kmv.close()
            self.kmv = None

    def close(self) -> None:
        if self.kv is not None:
            self.kv.close()
            self.kv = None
        if self.kmv is not None:
            self.kmv.close()
            self.kmv = None

    def __enter__(self) -> "MapReduce":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
