"""The MapReduce object: collective map/collate/reduce over MPI ranks.

Mirrors Sandia's MapReduce-MPI call sequence.  All methods below are
*collective*: every rank of the communicator must call them in the same
order (the class dups the caller's communicator so its internal traffic can
never collide with application messages).

Map styles (the ``mapstyle`` setting of the original library):

- ``CHUNK``:   task block ``[rank*nmap/P, (rank+1)*nmap/P)`` per rank.
- ``STRIDED``: task ``i`` runs on rank ``i % P``.
- ``MASTER_WORKER``: rank 0 acts as master and assigns tasks to the
  remaining ranks one at a time, first-come first-served.  This is the mode
  the paper uses for BLAST, where per-task runtimes are wildly non-uniform
  and dynamic load balancing is essential.
"""

from __future__ import annotations

import time
from collections import deque
from enum import IntEnum
from typing import Any, Callable, Optional, Sequence

from repro.mpi.comm import Comm
from repro.mpi.ops import ANY_SOURCE, LAND, MAX, SUM, Status
from repro.mrmpi.hashing import key_bytes, stable_hash
from repro.mrmpi.keymultivalue import KeyMultiValue, convert_kv_to_kmv
from repro.mrmpi.keyvalue import KeyValue
from repro.mrmpi.spool import approx_size

__all__ = ["MapReduce", "MapStyle"]

_TAG_REQUEST = 101
_TAG_ASSIGN = 102
_TAG_GATHER = 103

#: Sentinel task id telling a worker to retire.
_NO_MORE_WORK = -1


class MapStyle(IntEnum):
    CHUNK = 0
    STRIDED = 1
    MASTER_WORKER = 2


class MapReduce:
    """Per-rank handle on a distributed KV/KMV dataset.

    Parameters
    ----------
    comm:
        Communicator of the SPMD job (duplicated internally).
    memsize:
        Per-rank page size in bytes before KV/KMV pages spill to disk
        (the original library's ``memsize``, default 64 MB there too).
    mapstyle:
        Default task-distribution style for :meth:`map` / :meth:`map_items`.
    spool_dir:
        Directory for page files (defaults to the system temp dir).  On the
    paper's cluster this would be Lustre, since Ranger nodes have no
    local scratch — one reason mrblast bounds its working set instead.
    """

    def __init__(
        self,
        comm: Comm,
        memsize: int = 64 * 1024 * 1024,
        mapstyle: MapStyle = MapStyle.MASTER_WORKER,
        spool_dir: str | None = None,
        nbuckets: int = 16,
    ) -> None:
        self.comm = comm.dup()
        self.memsize = int(memsize)
        self.mapstyle = MapStyle(mapstyle)
        self.spool_dir = spool_dir
        self.nbuckets = nbuckets
        self.kv: Optional[KeyValue] = None
        self.kmv: Optional[KeyMultiValue] = None
        #: accumulated seconds per phase: map/aggregate/convert/reduce/gather
        self.timers: dict[str, float] = {}

    # --------------------------------------------------------------- plumbing

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def _fresh_kv(self) -> KeyValue:
        return KeyValue(pagesize=self.memsize, spool_dir=self.spool_dir)

    def _time(self, phase: str, t0: float) -> None:
        self.timers[phase] = self.timers.get(phase, 0.0) + (time.perf_counter() - t0)

    def _require_kv(self) -> KeyValue:
        if self.kv is None:
            raise RuntimeError("no KeyValue dataset; call map() first")
        return self.kv

    def _require_kmv(self) -> KeyMultiValue:
        if self.kmv is None:
            raise RuntimeError("no KeyMultiValue dataset; call convert()/collate() first")
        return self.kmv

    # -------------------------------------------------------------------- map

    def map(
        self,
        nmap: int,
        mapper: Callable[[int, KeyValue], None],
        addflag: bool = False,
        mapstyle: MapStyle | None = None,
    ) -> int:
        """Run ``mapper(itask, kv)`` for each task id in ``[0, nmap)``.

        Returns the global number of KV pairs after the map.  With
        ``addflag`` the new pairs are appended to the existing KV dataset
        (used by mrblast's multi-iteration loop); otherwise a fresh dataset
        is started.
        """
        return self.map_items(range(nmap), lambda i, item, kv: mapper(i, kv), addflag, mapstyle)

    def map_items(
        self,
        items: Sequence[Any],
        mapper: Callable[[int, Any, KeyValue], None],
        addflag: bool = False,
        mapstyle: MapStyle | None = None,
        locality_key: Callable[[Any], Any] | None = None,
    ) -> int:
        """Run ``mapper(itask, items[itask], kv)`` over a list of work items.

        ``items`` must be identical on every rank (SPMD); only task *indices*
        travel over the wire, matching how the original library hands out
        file/task ids rather than payloads.

        With ``locality_key`` (master/worker mode only) the master becomes
        *location-aware*: a worker requesting more work is preferentially
        given an item whose key matches the item it just finished — the
        scheduling improvement the paper announces in §V ("distribute the
        work unit tuples to those ranks that have already been processing
        the same DB partitions").  Workers with no matching work claim a
        fresh key (spreading keys across workers) and finally steal from the
        fullest remaining key.
        """
        t0 = time.perf_counter()
        style = self.mapstyle if mapstyle is None else MapStyle(mapstyle)
        if self.kv is None or not addflag:
            self.kv = self._fresh_kv()
        kv = self.kv
        nmap = len(items)

        if self.size == 1 or style is not MapStyle.MASTER_WORKER:
            for itask in self._static_tasks(nmap, style):
                mapper(itask, items[itask], kv)
        elif self.rank == 0:
            if locality_key is None:
                self._run_master(nmap)
            else:
                self._run_locality_master(items, locality_key)
        else:
            self._run_worker(
                lambda itask: mapper(itask, items[itask], kv),
                key_of=None if locality_key is None else (lambda i: locality_key(items[i])),
            )

        self._time("map", t0)
        return self.kv_stats()[0]

    def _static_tasks(self, nmap: int, style: MapStyle):
        if style is MapStyle.STRIDED:
            return range(self.rank, nmap, self.size)
        # CHUNK (and the degenerate single-rank MASTER_WORKER): contiguous block
        lo = self.rank * nmap // self.size
        hi = (self.rank + 1) * nmap // self.size
        if style is MapStyle.MASTER_WORKER and self.size == 1:
            return range(nmap)
        return range(lo, hi)

    def _run_master(self, nmap: int) -> None:
        """Rank 0: hand out task ids first-come-first-served, then retire all."""
        pending = deque(range(nmap))
        active_workers = self.size - 1
        while active_workers > 0:
            st = Status()
            self.comm.recv(source=ANY_SOURCE, tag=_TAG_REQUEST, status=st)
            if pending:
                self.comm.send(pending.popleft(), dest=st.Get_source(), tag=_TAG_ASSIGN)
            else:
                self.comm.send(_NO_MORE_WORK, dest=st.Get_source(), tag=_TAG_ASSIGN)
                active_workers -= 1

    def _run_locality_master(self, items: Sequence[Any], key_of: Callable[[Any], Any]) -> None:
        """Rank 0 with per-key queues: match, then claim, then steal."""
        queues: dict[Any, deque] = {}
        claim_order: deque = deque()
        for itask, item in enumerate(items):
            key = key_of(item)
            if key not in queues:
                queues[key] = deque()
                claim_order.append(key)
            queues[key].append(itask)

        def next_task(last_key: Any) -> int:
            q = queues.get(last_key)
            if q:
                return q.popleft()
            while claim_order:
                key = claim_order.popleft()  # claimed exclusively, like the
                q = queues.get(key)  # DES affinity scheduler
                if q:
                    return q.popleft()
            remaining = [k for k, q in queues.items() if q]
            if not remaining:
                return _NO_MORE_WORK
            victim = max(remaining, key=lambda k: len(queues[k]))
            return queues[victim].popleft()

        active_workers = self.size - 1
        while active_workers > 0:
            st = Status()
            last_key = self.comm.recv(source=ANY_SOURCE, tag=_TAG_REQUEST, status=st)
            itask = next_task(last_key)
            self.comm.send(itask, dest=st.Get_source(), tag=_TAG_ASSIGN)
            if itask == _NO_MORE_WORK:
                active_workers -= 1

    def _run_worker(
        self,
        run_task: Callable[[int], None],
        key_of: Callable[[int], Any] | None = None,
    ) -> None:
        last_key: Any = None
        while True:
            request = self.rank if key_of is None else last_key
            self.comm.send(request, dest=0, tag=_TAG_REQUEST)
            itask = self.comm.recv(source=0, tag=_TAG_ASSIGN)
            if itask == _NO_MORE_WORK:
                return
            run_task(itask)
            if key_of is not None:
                last_key = key_of(itask)

    def map_kv(self, mapper: Callable[[Any, Any, KeyValue], None]) -> int:
        """Map over the *existing* KV pairs, producing a new KV dataset.

        The original library's ``map(mr, ...)`` variant: every local pair is
        passed to ``mapper(key, value, kv_out)``; no communication happens
        (pairs are transformed where they live).  Returns the global count.
        """
        t0 = time.perf_counter()
        kv = self._require_kv()
        new_kv = self._fresh_kv()
        try:
            for key, value in kv:
                mapper(key, value, new_kv)
        except BaseException:
            # The job is unwinding (abort, crash, mapper bug): the orphaned
            # intermediate must not leak its spill file.  Exceptions keep
            # this frame alive via their traceback, so GC won't save us.
            new_kv.close()
            raise
        kv.close()
        self.kv = new_kv
        self._time("map", t0)
        return self.kv_stats()[0]

    # -------------------------------------------------------- shuffle & group

    def aggregate(
        self,
        hash_fn: Callable[[Any], int] | None = None,
        exchange_bytes: int | None = None,
    ) -> int:
        """Redistribute KV pairs so all copies of a key land on one rank.

        The destination rank of a key is ``hash(key) % nprocs`` (stable FNV
        by default).  The exchange runs in *rounds* of personalised
        all-to-alls, each staging at most ``exchange_bytes`` (default:
        ``memsize``) of outgoing pairs per rank, so aggregation of an
        out-of-core dataset never materialises it in memory — the original
        library pages its exchange the same way.
        """
        t0 = time.perf_counter()
        kv = self._require_kv()
        h = hash_fn or stable_hash
        budget = self.memsize if exchange_bytes is None else int(exchange_bytes)
        if budget < 1:
            raise ValueError(f"exchange_bytes must be >= 1, got {budget}")
        new_kv = self._fresh_kv()
        source = iter(kv)
        local_done = False
        try:
            while True:
                outgoing: list[list] = [[] for _ in range(self.size)]
                staged = 0
                while not local_done and staged < budget:
                    try:
                        key, value = next(source)
                    except StopIteration:
                        local_done = True
                        break
                    outgoing[h(key) % self.size].append((key, value))
                    staged += approx_size(key) + approx_size(value)
                incoming = self.comm.alltoall(outgoing)
                for batch in incoming:
                    new_kv.add_multi(batch)
                if self.comm.allreduce(local_done, op=LAND):
                    break
        except BaseException:
            # Interrupted mid-exchange (peer abort, injected crash): close
            # the half-built destination so its spill file is reclaimed.
            new_kv.close()
            raise
        kv.close()
        self.kv = new_kv
        self._time("aggregate", t0)
        return len(new_kv)

    def convert(self) -> int:
        """Group the local KV pairs into KMV pairs (no communication)."""
        t0 = time.perf_counter()
        kv = self._require_kv()
        self.kmv = convert_kv_to_kmv(
            kv, pagesize=self.memsize, spool_dir=self.spool_dir, nbuckets=self.nbuckets
        )
        kv.close()
        self.kv = None
        self._time("convert", t0)
        return len(self.kmv)

    def collate(self, hash_fn: Callable[[Any], int] | None = None) -> int:
        """``aggregate`` + ``convert``: the shuffle step of Fig. 1.

        Afterwards each unique key exists on exactly one rank with *all* its
        values grouped.  Returns the global number of unique keys.
        """
        self.aggregate(hash_fn)
        self.convert()
        return int(self.comm.allreduce(len(self._require_kmv()), op=SUM))

    # ------------------------------------------------------------------ reduce

    def compress(self, reducer: Callable[[Any, list, KeyValue], None]) -> int:
        """Local combiner: convert + reduce *without* any communication.

        The original library's ``compress()``: each rank groups its own KV
        pairs and runs the reducer on the local groups, producing a new
        (smaller) KV dataset.  Used before ``collate`` to shrink the shuffle
        volume when the reducer is idempotent under pre-aggregation (e.g.
        per-query top-K selection).  Returns the local KV pair count.
        """
        t0 = time.perf_counter()
        kv = self._require_kv()
        local_kmv = convert_kv_to_kmv(
            kv, pagesize=self.memsize, spool_dir=self.spool_dir, nbuckets=self.nbuckets
        )
        kv.close()
        new_kv = self._fresh_kv()
        try:
            for key, values in local_kmv:
                reducer(key, values, new_kv)
        except BaseException:
            new_kv.close()
            local_kmv.close()
            raise
        local_kmv.close()
        self.kv = new_kv
        self._time("compress", t0)
        return len(new_kv)

    def reduce(self, reducer: Callable[[Any, list, KeyValue], None]) -> int:
        """Call ``reducer(key, values, kv_out)`` once per local KMV pair.

        Returns the global number of KV pairs emitted.
        """
        t0 = time.perf_counter()
        kmv = self._require_kmv()
        new_kv = self._fresh_kv()
        try:
            for key, values in kmv:
                reducer(key, values, new_kv)
        except BaseException:
            new_kv.close()
            raise
        kmv.close()
        self.kmv = None
        self.kv = new_kv
        self._time("reduce", t0)
        return self.kv_stats()[0]

    # ----------------------------------------------------------- repartitioning

    def gather(self, nranks: int = 1) -> int:
        """Move all KV pairs onto the first ``nranks`` ranks (rank r → r % nranks)."""
        t0 = time.perf_counter()
        if not (1 <= nranks <= self.size):
            raise ValueError(f"nranks must be in [1, {self.size}], got {nranks}")
        kv = self._require_kv()
        dest = self.rank % nranks
        if self.rank >= nranks:
            self.comm.send(list(kv), dest=dest, tag=_TAG_GATHER)
            kv.close()
            self.kv = self._fresh_kv()
        else:
            senders = [r for r in range(nranks, self.size) if r % nranks == self.rank]
            for _ in senders:
                batch = self.comm.recv(tag=_TAG_GATHER)
                kv.add_multi(batch)
        self.comm.barrier()
        self._time("gather", t0)
        return len(self._require_kv())

    # ----------------------------------------------------------------- sorting

    def sort_keys(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort local KV pairs by key (stable; materialises the local set)."""
        kv = self._require_kv()
        pairs = sorted(kv, key=(lambda p: key(p[0])) if key else (lambda p: key_bytes(p[0])))
        kv.clear()
        kv.add_multi(pairs)

    def sort_values(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort local KV pairs by value."""
        kv = self._require_kv()
        pairs = sorted(kv, key=(lambda p: key(p[1])) if key else (lambda p: p[1]))
        kv.clear()
        kv.add_multi(pairs)

    def sort_multivalues(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort the value list inside every local KMV pair."""
        kmv = self._require_kmv()
        groups = [(k, sorted(vs, key=key)) for k, vs in kmv]
        kmv.clear()
        for k, vs in groups:
            kmv.add(k, vs)

    def sort_kmv_keys(self, key: Callable[[Any], Any] | None = None) -> None:
        """Sort the local KMV pairs by key.

        mrblast uses this so each rank's output file lists queries in the
        *original input order* (the paper: results "maintain the original
        order of the queries" within each per-rank file).
        """
        kmv = self._require_kmv()
        pairs = sorted(
            kmv, key=(lambda p: key(p[0])) if key else (lambda p: key_bytes(p[0]))
        )
        kmv.clear()
        for k, vs in pairs:
            kmv.add(k, vs)

    # -------------------------------------------------------------- inspection

    def scan_kv(self, fn: Callable[[Any, Any], None]) -> None:
        """Apply ``fn(key, value)`` to every local KV pair (read-only)."""
        for key, value in self._require_kv():
            fn(key, value)

    def scan_kmv(self, fn: Callable[[Any, list], None]) -> None:
        """Apply ``fn(key, values)`` to every local KMV pair (read-only)."""
        for key, values in self._require_kmv():
            fn(key, values)

    def kv_stats(self) -> tuple[int, int]:
        """Collective: (global KV pair count, max per-rank count)."""
        local = 0 if self.kv is None else len(self.kv)
        return (
            int(self.comm.allreduce(local, op=SUM)),
            int(self.comm.allreduce(local, op=MAX)),
        )

    def kmv_stats(self) -> tuple[int, int]:
        """Collective: (global KMV pair count, global value count)."""
        nk = 0 if self.kmv is None else len(self.kmv)
        nv = 0 if self.kmv is None else self.kmv.nvalues
        return (
            int(self.comm.allreduce(nk, op=SUM)),
            int(self.comm.allreduce(nv, op=SUM)),
        )

    # ------------------------------------------------------------------- admin

    def close(self) -> None:
        if self.kv is not None:
            self.kv.close()
            self.kv = None
        if self.kmv is not None:
            self.kmv.close()
            self.kmv = None

    def __enter__(self) -> "MapReduce":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
