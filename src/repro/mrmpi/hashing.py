"""Deterministic key hashing for aggregate()/collate().

MapReduce-MPI assigns each unique key to a processor with a hash of the key
modulo nprocs.  Python's builtin ``hash`` is salted per interpreter, so we
use a stable FNV-1a over a canonical byte encoding: results are identical
across runs, platforms and rank counts, which the tests rely on.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

__all__ = ["stable_hash", "key_bytes", "hash_key_column"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def key_bytes(key: Any) -> bytes:
    """Canonical byte encoding of a key.

    Supported key types mirror what the applications emit: bytes, str, int,
    float, and (nested) tuples of those.  Anything else is rejected loudly —
    silent fallback to ``repr`` would make hashing fragile.
    """
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, bool):  # before int: bool is an int subclass
        return b"?" + (b"1" if key else b"0")
    if isinstance(key, int):
        return b"i" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f" + struct.pack("<d", key)
    if isinstance(key, tuple):
        parts = [b"t", str(len(key)).encode("ascii")]
        for item in key:
            enc = key_bytes(item)
            parts.append(str(len(enc)).encode("ascii"))
            parts.append(b":")
            parts.append(enc)
        return b"".join(parts)
    raise TypeError(
        f"unsupported key type {type(key).__name__!r}; use bytes/str/int/float/tuple"
    )


def stable_hash(key: Any) -> int:
    """64-bit FNV-1a of the canonical key encoding (always non-negative)."""
    h = _FNV_OFFSET
    for byte in key_bytes(key):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def _fnv1a_matrix(mat: np.ndarray, lengths: np.ndarray, prefix: bytes) -> np.ndarray:
    """FNV-1a over each row of a (n, width) uint8 matrix, rows of varying
    ``lengths``, every hash seeded with the scalar ``prefix`` bytes.

    Column ``j`` only updates rows with ``lengths > j``, so the result equals
    hashing ``prefix + row[:length]`` per row — the exact byte stream
    :func:`key_bytes` feeds :func:`stable_hash` — at one vectorised sweep per
    byte *position* instead of one Python loop iteration per byte.
    """
    prime = np.uint64(_FNV_PRIME)
    h = np.full(mat.shape[0], _FNV_OFFSET, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for byte in prefix:
            h = (h ^ np.uint64(byte)) * prime
        for j in range(mat.shape[1]):
            live = lengths > j
            h = np.where(live, (h ^ mat[:, j].astype(np.uint64)) * prime, h)
    return h


def _byte_matrix(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(n, width) uint8 view of an ``S``-dtype column plus per-row lengths
    (trailing NULs are padding, exactly what numpy strips on conversion)."""
    width = column.dtype.itemsize
    mat = column.view(np.uint8).reshape(len(column), width)
    nonzero = mat != 0
    lengths = width - np.argmax(nonzero[:, ::-1], axis=1)
    lengths[~nonzero.any(axis=1)] = 0
    return mat, lengths


def hash_key_column(column: np.ndarray, kind: str) -> np.ndarray:
    """Vectorised :func:`stable_hash` over a whole key column.

    ``kind`` is the *logical* key type of the schema ('bytes', 'str', 'int'
    or 'float'); the result is element-wise identical to
    ``stable_hash(decoded_key)``, which is what keeps columnar and object
    aggregates placing every key on the same rank.
    """
    column = np.ascontiguousarray(column)
    if kind in ("bytes", "str"):
        mat, lengths = _byte_matrix(column)
        return _fnv1a_matrix(mat, lengths, b"b" if kind == "bytes" else b"s")
    if kind == "int":
        # key_bytes uses the decimal ASCII form; astype('S') produces it.
        as_text = column.astype("S21")
        mat, lengths = _byte_matrix(as_text)
        return _fnv1a_matrix(mat, lengths, b"i")
    if kind == "float":
        # key_bytes packs the raw little-endian IEEE-754 doubles.
        mat = column.astype("<f8").view(np.uint8).reshape(len(column), 8)
        lengths = np.full(len(column), 8)
        return _fnv1a_matrix(mat, lengths, b"f")
    raise ValueError(f"unsupported key kind {kind!r}")
