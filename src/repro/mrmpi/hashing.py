"""Deterministic key hashing for aggregate()/collate().

MapReduce-MPI assigns each unique key to a processor with a hash of the key
modulo nprocs.  Python's builtin ``hash`` is salted per interpreter, so we
use a stable FNV-1a over a canonical byte encoding: results are identical
across runs, platforms and rank counts, which the tests rely on.
"""

from __future__ import annotations

import struct
from typing import Any

__all__ = ["stable_hash", "key_bytes"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def key_bytes(key: Any) -> bytes:
    """Canonical byte encoding of a key.

    Supported key types mirror what the applications emit: bytes, str, int,
    float, and (nested) tuples of those.  Anything else is rejected loudly —
    silent fallback to ``repr`` would make hashing fragile.
    """
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, bool):  # before int: bool is an int subclass
        return b"?" + (b"1" if key else b"0")
    if isinstance(key, int):
        return b"i" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f" + struct.pack("<d", key)
    if isinstance(key, tuple):
        parts = [b"t", str(len(key)).encode("ascii")]
        for item in key:
            enc = key_bytes(item)
            parts.append(str(len(enc)).encode("ascii"))
            parts.append(b":")
            parts.append(enc)
        return b"".join(parts)
    raise TypeError(
        f"unsupported key type {type(key).__name__!r}; use bytes/str/int/float/tuple"
    )


def stable_hash(key: Any) -> int:
    """64-bit FNV-1a of the canonical key encoding (always non-negative)."""
    h = _FNV_OFFSET
    for byte in key_bytes(key):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h
