"""Page spill files for out-of-core key-value processing.

MapReduce-MPI transparently pages its KV/KMV stores to per-processor files
when the working set exceeds the configured memory budget.  The paper leans
on this ("out-of-core processing") and explains that mrblast loops over query
subsets precisely to keep the working set in memory because Ranger has no
node-local scratch.  This module provides the paging primitive: an
append-only sequence of pages on disk with streaming read-back *and* random
page access (the external merge sort reads runs by page index).

Two page formats share one spool file, distinguished by a tag byte:

- **object pages** (tag ``0``): pickled lists of records — the legacy path
  for arbitrary Python keys/values;
- **array pages** (tag ``1``): a tuple of raw numpy buffers written with
  ``np.save`` (``allow_pickle=False``) — the columnar path.  No pickle
  touches these pages, and :meth:`PageSpool.write_arrays` returns the
  *exact* number of bytes written, which is what the columnar stores use
  for byte accounting instead of :func:`approx_size` estimates.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from typing import Any, Iterable, Iterator

import numpy as np

from repro.obs.trace import current_tracer

__all__ = ["PageSpool", "approx_size"]

_TAG_OBJECT = 0
_TAG_ARRAYS = 1


def approx_size(obj: Any) -> int:
    """Cheap size estimate (bytes) used for the paging threshold.

    Exact accounting is not required on the object path — the real library
    also tracks page occupancy approximately — but the estimate must grow
    with payload size so big values trigger spills.  Columnar pages do not
    use this at all: their occupancy is the exact sum of array ``nbytes``.
    """
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 33
    if isinstance(obj, str):
        return len(obj) + 49
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96
    if isinstance(obj, (tuple, list)):
        return 56 + sum(approx_size(x) for x in obj)
    if isinstance(obj, dict):
        return 64 + sum(approx_size(k) + approx_size(v) for k, v in obj.items())
    if hasattr(obj, "__dataclass_fields__"):
        # getsizeof ignores attribute payloads; records like HSPs are the
        # dominant KV values, so count their fields.
        return 64 + sum(
            approx_size(getattr(obj, name)) for name in obj.__dataclass_fields__
        )
    return max(sys.getsizeof(obj), 48)


class PageSpool:
    """Append-only spill storage: write pages of records, read them back.

    One spool owns one file.  Every page is framed as ``tag byte + u64
    payload length + payload``; page start offsets are kept in memory so
    :meth:`read_page` can fetch any page directly — sequential iteration
    (:meth:`iter_pages`) and the merge sort's random run access share the
    same frames.
    """

    def __init__(self, dir: str | None = None, prefix: str = "mrmpi") -> None:
        fd, self._path = tempfile.mkstemp(prefix=f"{prefix}.", suffix=".page", dir=dir)
        self._file = os.fdopen(fd, "w+b")
        self._offsets: list[int] = []
        self._end = 0
        self._nrecords = 0
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    @property
    def npages(self) -> int:
        return len(self._offsets)

    @property
    def nrecords(self) -> int:
        return self._nrecords

    @property
    def nbytes(self) -> int:
        """Exact bytes written to the spool file so far (frames included)."""
        return self._end

    def _begin_page(self, tag: int) -> None:
        if self._closed:
            raise ValueError("spool is closed")
        self._offsets.append(self._end)
        self._file.seek(self._end)
        self._file.write(bytes([tag]))

    def _finish_page(self, nrecords: int) -> int:
        start = self._offsets[-1]
        self._end = self._file.tell()
        self._nrecords += nrecords
        return self._end - start

    def write_page(self, records: Iterable[Any]) -> int:
        """Append one object (pickled) page; returns the record count."""
        records = list(records)
        blob = pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)
        self._begin_page(_TAG_OBJECT)
        self._file.write(len(blob).to_bytes(8, "little"))
        self._file.write(blob)
        nbytes = self._finish_page(len(records))
        trc = current_tracer()
        if trc.enabled:
            trc.instant("spool.write", cat="spool", page=len(self._offsets) - 1,
                        records=len(records), bytes=nbytes)
            trc.metrics.counter("spool.pages_written").inc()
            trc.metrics.counter("spool.bytes_written").add(nbytes)
        return len(records)

    def write_arrays(self, arrays: tuple[np.ndarray, ...], nrecords: int) -> int:
        """Append one binary array page; returns the *exact* bytes written.

        The payload is the concatenation of ``np.save`` frames — raw buffers
        plus numpy's tiny self-describing header, no pickle — so dtype and
        shape round-trip exactly, including structured dtypes with subarray
        fields.
        """
        self._begin_page(_TAG_ARRAYS)
        self._file.write(len(arrays).to_bytes(8, "little"))
        for arr in arrays:
            np.save(self._file, np.ascontiguousarray(arr))
        nbytes = self._finish_page(nrecords)
        trc = current_tracer()
        if trc.enabled:
            trc.instant("spool.write", cat="spool", page=len(self._offsets) - 1,
                        records=nrecords, bytes=nbytes)
            trc.metrics.counter("spool.pages_written").inc()
            trc.metrics.counter("spool.bytes_written").add(nbytes)
        return nbytes

    def read_page(self, index: int) -> Any:
        """Read page ``index``: a list (object page) or tuple of arrays."""
        if self._closed:
            raise ValueError("spool is closed")
        if not (0 <= index < len(self._offsets)):
            raise IndexError(f"page {index} out of range [0, {len(self._offsets)})")
        trc = current_tracer()
        if trc.enabled:
            trc.instant("spool.read", cat="spool", page=index)
            trc.metrics.counter("spool.pages_read").inc()
        self._file.flush()
        self._file.seek(self._offsets[index])
        tag = self._file.read(1)[0]
        count = int.from_bytes(self._file.read(8), "little")
        if tag == _TAG_OBJECT:
            return pickle.loads(self._file.read(count))
        arrays = tuple(
            np.load(self._file, allow_pickle=False) for _ in range(count)
        )
        return arrays

    def iter_pages(self) -> Iterator[Any]:
        """Stream pages back in write order."""
        for index in range(len(self._offsets)):
            yield self.read_page(index)

    def iter_records(self) -> Iterator[Any]:
        for page in self.iter_pages():
            yield from page

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._file.close()
            finally:
                try:
                    os.unlink(self._path)
                except OSError:
                    pass

    def __enter__(self) -> "PageSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
