"""Page spill files for out-of-core key-value processing.

MapReduce-MPI transparently pages its KV/KMV stores to per-processor files
when the working set exceeds the configured memory budget.  The paper leans
on this ("out-of-core processing") and explains that mrblast loops over query
subsets precisely to keep the working set in memory because Ranger has no
node-local scratch.  This module provides the paging primitive: an
append-only sequence of pickled pages on disk with streaming read-back.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from typing import Any, Iterable, Iterator

import numpy as np

__all__ = ["PageSpool", "approx_size"]


def approx_size(obj: Any) -> int:
    """Cheap size estimate (bytes) used for the paging threshold.

    Exact accounting is not required — the real library also tracks page
    occupancy approximately — but the estimate must grow with payload size
    so big values trigger spills.
    """
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 33
    if isinstance(obj, str):
        return len(obj) + 49
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96
    if isinstance(obj, (tuple, list)):
        return 56 + sum(approx_size(x) for x in obj)
    if isinstance(obj, dict):
        return 64 + sum(approx_size(k) + approx_size(v) for k, v in obj.items())
    if hasattr(obj, "__dataclass_fields__"):
        # getsizeof ignores attribute payloads; records like HSPs are the
        # dominant KV values, so count their fields.
        return 64 + sum(
            approx_size(getattr(obj, name)) for name in obj.__dataclass_fields__
        )
    return max(sys.getsizeof(obj), 48)


class PageSpool:
    """Append-only spill storage: write pages of records, stream them back.

    One spool owns one file; pages are length-prefixed pickles so reading
    streams page by page without loading the whole spool.
    """

    def __init__(self, dir: str | None = None, prefix: str = "mrmpi") -> None:
        fd, self._path = tempfile.mkstemp(prefix=f"{prefix}.", suffix=".page", dir=dir)
        self._file = os.fdopen(fd, "w+b")
        self._npages = 0
        self._nrecords = 0
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    @property
    def npages(self) -> int:
        return self._npages

    @property
    def nrecords(self) -> int:
        return self._nrecords

    def write_page(self, records: Iterable[Any]) -> int:
        """Append one page; returns the number of records written."""
        if self._closed:
            raise ValueError("spool is closed")
        records = list(records)
        blob = pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.seek(0, os.SEEK_END)
        self._file.write(len(blob).to_bytes(8, "little"))
        self._file.write(blob)
        self._npages += 1
        self._nrecords += len(records)
        return len(records)

    def iter_pages(self) -> Iterator[list]:
        """Stream pages back in write order."""
        if self._closed:
            raise ValueError("spool is closed")
        self._file.flush()
        pos = 0
        self._file.seek(0)
        for _ in range(self._npages):
            self._file.seek(pos)
            header = self._file.read(8)
            size = int.from_bytes(header, "little")
            blob = self._file.read(size)
            pos = self._file.tell()
            yield pickle.loads(blob)

    def iter_records(self) -> Iterator[Any]:
        for page in self.iter_pages():
            yield from page

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._file.close()
            finally:
                try:
                    os.unlink(self._path)
                except OSError:
                    pass

    def __enter__(self) -> "PageSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
