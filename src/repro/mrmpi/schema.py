"""Typed record schemas for the columnar KV data plane.

A :class:`RecordSchema` fixes, per dataset, how keys and values are laid
out as numpy columns:

- **keys** are one fixed-width column ('S<w>' bytes/str, int64 or float64).
  The *logical* kind ('bytes'/'str'/'int'/'float') is tracked separately
  from the storage dtype so hashing and decoding reproduce exactly what the
  object path's :func:`~repro.mrmpi.hashing.key_bytes` canonicalisation
  does — columnar and object aggregates place every key on the same rank.
- **values** are either one structured (fixed-width) column — mrblast's HSP
  rows, mrsom's accumulator rows — or a ragged bytes column (one uint8
  buffer plus int64 offsets) when payloads have no fixed width.

Optional ``encode_values``/``decode_value`` hooks translate between
application objects and rows at the dataset edge; everything between emit
and reduce then moves as contiguous buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

__all__ = ["RecordSchema", "RAGGED_BYTES"]

#: Sentinel value dtype: variable-length bytes values (buffer + offsets).
RAGGED_BYTES = "ragged_bytes"

_KEY_KINDS = ("bytes", "str", "int", "float")


def _infer_kind(dtype: np.dtype) -> str:
    if dtype.kind == "S":
        return "bytes"
    if dtype.kind in "iu":
        return "int"
    if dtype.kind == "f":
        return "float"
    raise ValueError(f"cannot infer key kind from dtype {dtype}")


@dataclass(frozen=True)
class RecordSchema:
    """Column layout of one KV dataset (identical on every rank).

    Parameters
    ----------
    key_dtype:
        Fixed-width numpy dtype of the key column ('S<w>', int64, float64).
    value_dtype:
        Structured/plain numpy dtype of the value column, or
        :data:`RAGGED_BYTES` for variable-length bytes values.
    key_kind:
        Logical key type ('bytes', 'str', 'int', 'float'); inferred from
        ``key_dtype`` when omitted ('S' storage defaults to 'bytes' — pass
        'str' explicitly for text keys such as mrblast's query ids).
    encode_values / decode_value:
        Optional object↔row translators used at the dataset edge (scalar
        ``add``, iteration, reducers).  ``encode_values(values)`` returns a
        ``value_dtype`` array; ``decode_value(row)`` returns the
        application object for one row.
    """

    key_dtype: Any
    value_dtype: Any
    key_kind: Optional[str] = None
    encode_values: Optional[Callable[[Sequence[Any]], np.ndarray]] = None
    decode_value: Optional[Callable[[Any], Any]] = None

    def __post_init__(self) -> None:
        kd = np.dtype(self.key_dtype)
        object.__setattr__(self, "key_dtype", kd)
        if kd.kind not in "Siuf" or kd.itemsize == 0:
            raise ValueError(f"key_dtype must be fixed-width S/int/float, got {kd}")
        kind = self.key_kind or _infer_kind(kd)
        if kind not in _KEY_KINDS:
            raise ValueError(f"key_kind must be one of {_KEY_KINDS}, got {kind!r}")
        if kind == "str" and kd.kind != "S":
            raise ValueError("key_kind 'str' requires an 'S<w>' key_dtype")
        object.__setattr__(self, "key_kind", kind)
        if not self.ragged_values:
            object.__setattr__(self, "value_dtype", np.dtype(self.value_dtype))

    # ----------------------------------------------------------------- keys

    @property
    def ragged_values(self) -> bool:
        return isinstance(self.value_dtype, str) and self.value_dtype == RAGGED_BYTES

    def encode_keys(self, keys: Sequence[Any] | np.ndarray) -> np.ndarray:
        """Build the key column; rejects keys wider than the schema."""
        if isinstance(keys, np.ndarray) and keys.dtype == self.key_dtype:
            return keys
        if self.key_kind == "str":
            encoded = [k.encode("utf-8") for k in keys]
        elif self.key_kind == "bytes":
            encoded = list(keys)
        else:
            arr = np.asarray(keys).astype(self.key_dtype)
            return arr
        width = self.key_dtype.itemsize
        for k in encoded:
            if len(k) > width:
                raise ValueError(
                    f"key {k!r} is {len(k)} bytes, wider than the schema's "
                    f"{self.key_dtype} key column"
                )
            if k.endswith(b"\x00"):
                raise ValueError(
                    f"key {k!r} has trailing NUL bytes, which fixed-width 'S' "
                    f"columns cannot represent; use the object path"
                )
        return np.array(encoded, dtype=self.key_dtype)

    def decode_key(self, raw: Any) -> Any:
        """One stored key back to its logical Python value."""
        if self.key_kind == "str":
            return bytes(raw).decode("utf-8")
        if self.key_kind == "bytes":
            return bytes(raw)
        if self.key_kind == "int":
            return int(raw)
        return float(raw)

    # ---------------------------------------------------------------- values

    def build_values(self, values: Sequence[Any] | np.ndarray):
        """Build a value column (array, or (buffer, offsets) when ragged)."""
        if self.ragged_values:
            if isinstance(values, tuple) and len(values) == 2:
                return values  # already (buffer, offsets)
            chunks = [np.frombuffer(v, dtype=np.uint8) for v in values]
            offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
            np.cumsum([len(c) for c in chunks], out=offsets[1:])
            buf = (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=np.uint8)
            )
            return buf, offsets
        if isinstance(values, np.ndarray) and values.dtype == self.value_dtype:
            return values
        if self.encode_values is not None:
            arr = self.encode_values(values)
            if arr.dtype != self.value_dtype:
                raise ValueError(
                    f"encode_values returned dtype {arr.dtype}, schema says "
                    f"{self.value_dtype}"
                )
            return arr
        return np.asarray(values, dtype=self.value_dtype)

    def decode_one(self, row: Any) -> Any:
        """One stored value row back to the application object."""
        if self.ragged_values:
            return row  # already bytes
        if self.decode_value is not None:
            return self.decode_value(row)
        return row
