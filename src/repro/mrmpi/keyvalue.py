"""KeyValue store: the per-rank bag of (key, value) pairs.

Mappers and reducers emit into a ``KeyValue`` with :meth:`add`.  When the
in-memory page grows past ``pagesize`` bytes the page is spilled to disk and
a fresh page starts — MapReduce-MPI's "out-of-core" mode.  Iteration streams
spilled pages first (write order), then the live page, so out-of-core and
in-core runs see pairs in the same order.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mrmpi.hashing import key_bytes
from repro.mrmpi.spool import PageSpool, approx_size

__all__ = ["ObjectKeyValue", "KeyValue"]


class ObjectKeyValue:
    """A pageable multiset of (key, value) pairs owned by one rank.

    This is the legacy *object* store — arbitrary Python keys/values, pickle
    spill pages, estimated byte accounting.  The columnar plane
    (:class:`~repro.mrmpi.columnar.ColumnarKeyValue`) supersedes it for
    schema-typed datasets; the object store remains both the fallback for
    untyped data and the parity oracle the columnar tests compare against.
    """

    def __init__(self, pagesize: int = 64 * 1024 * 1024, spool_dir: str | None = None):
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        self.pagesize = pagesize
        self._spool_dir = spool_dir
        self._page: list[tuple[Any, Any]] = []
        self._page_bytes = 0
        self._spool: PageSpool | None = None
        self._nkv = 0

    # ------------------------------------------------------------------ write

    def add(self, key: Any, value: Any) -> None:
        """Emit one pair.  Key must be canonically hashable (see hashing)."""
        key_bytes(key)  # validate early: bad key types fail at emit time
        self._page.append((key, value))
        self._page_bytes += approx_size(key) + approx_size(value)
        self._nkv += 1
        if self._page_bytes >= self.pagesize:
            self._spill()

    def add_multi(self, pairs) -> None:
        for k, v in pairs:
            self.add(k, v)

    def _spill(self) -> None:
        if not self._page:
            return
        if self._spool is None:
            self._spool = PageSpool(dir=self._spool_dir, prefix="kv")
        self._spool.write_page(self._page)
        self._page = []
        self._page_bytes = 0

    # ------------------------------------------------------------------- read

    def __len__(self) -> int:
        return self._nkv

    @property
    def out_of_core(self) -> bool:
        """True when at least one page has been spilled to disk."""
        return self._spool is not None and self._spool.npages > 0

    @property
    def spilled_pages(self) -> int:
        return 0 if self._spool is None else self._spool.npages

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        if self._spool is not None:
            yield from self._spool.iter_records()
        yield from self._page

    # ------------------------------------------------------------------ admin

    def clear(self) -> None:
        self._page = []
        self._page_bytes = 0
        self._nkv = 0
        if self._spool is not None:
            self._spool.close()
            self._spool = None

    def close(self) -> None:
        self.clear()

    def __enter__(self) -> "ObjectKeyValue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObjectKeyValue(nkv={self._nkv}, pages_spilled={self.spilled_pages}, "
            f"pagesize={self.pagesize})"
        )


#: Historical name, kept so existing mappers/tests keep working unchanged.
KeyValue = ObjectKeyValue
