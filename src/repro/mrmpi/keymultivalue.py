"""KeyMultiValue store: (key, [values...]) pairs produced by convert/collate.

``convert`` performs external grouping so it works out-of-core: KV pairs are
first partitioned into hash buckets (each bucket spooled to disk), then each
bucket is grouped in memory.  Memory use is bounded by the largest bucket,
not the whole KV set; ``nbuckets`` trades file count against per-bucket
memory exactly like the real library's page-partitioned convert.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mrmpi.hashing import key_bytes, stable_hash
from repro.mrmpi.keyvalue import KeyValue
from repro.mrmpi.spool import PageSpool, approx_size

__all__ = ["ObjectKeyMultiValue", "KeyMultiValue", "convert_kv_to_kmv"]


class ObjectKeyMultiValue:
    """A pageable sequence of (key, list-of-values) pairs owned by one rank."""

    def __init__(self, pagesize: int = 64 * 1024 * 1024, spool_dir: str | None = None):
        if pagesize <= 0:
            raise ValueError(f"pagesize must be positive, got {pagesize}")
        self.pagesize = pagesize
        self._spool_dir = spool_dir
        self._page: list[tuple[Any, list]] = []
        self._page_bytes = 0
        self._spool: PageSpool | None = None
        self._nkmv = 0
        self._nvalues = 0

    def add(self, key: Any, values: list) -> None:
        key_bytes(key)
        values = list(values)
        self._page.append((key, values))
        self._page_bytes += approx_size(key) + approx_size(values)
        self._nkmv += 1
        self._nvalues += len(values)
        if self._page_bytes >= self.pagesize:
            self._spill()

    def _spill(self) -> None:
        if not self._page:
            return
        if self._spool is None:
            self._spool = PageSpool(dir=self._spool_dir, prefix="kmv")
        self._spool.write_page(self._page)
        self._page = []
        self._page_bytes = 0

    def __len__(self) -> int:
        return self._nkmv

    @property
    def nvalues(self) -> int:
        return self._nvalues

    @property
    def out_of_core(self) -> bool:
        return self._spool is not None and self._spool.npages > 0

    def __iter__(self) -> Iterator[tuple[Any, list]]:
        if self._spool is not None:
            yield from self._spool.iter_records()
        yield from self._page

    def clear(self) -> None:
        self._page = []
        self._page_bytes = 0
        self._nkmv = 0
        self._nvalues = 0
        if self._spool is not None:
            self._spool.close()
            self._spool = None

    def close(self) -> None:
        self.clear()

    def __enter__(self) -> "ObjectKeyMultiValue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectKeyMultiValue(nkmv={self._nkmv}, nvalues={self._nvalues})"


def convert_kv_to_kmv(
    kv: KeyValue,
    pagesize: int,
    spool_dir: str | None = None,
    nbuckets: int = 16,
) -> ObjectKeyMultiValue:
    """Group a KeyValue store into a KeyMultiValue store (external grouping).

    Within each key, value order follows KV iteration order (stable).  Keys
    are emitted bucket by bucket and, inside a bucket, in first-seen order —
    a deterministic order given the same KV contents.
    """
    if nbuckets < 1:
        raise ValueError(f"nbuckets must be >= 1, got {nbuckets}")
    kmv = ObjectKeyMultiValue(pagesize=pagesize, spool_dir=spool_dir)

    if not kv.out_of_core and len(kv) > 0:
        # Fast path: whole KV fits in one page; group in memory directly.
        groups: dict[bytes, tuple[Any, list]] = {}
        for key, value in kv:
            kb = key_bytes(key)
            if kb not in groups:
                groups[kb] = (key, [])
            groups[kb][1].append(value)
        for key, values in groups.values():
            kmv.add(key, values)
        return kmv

    # Out-of-core path: partition into hash buckets on disk, then group
    # bucket by bucket.
    buckets = [PageSpool(dir=spool_dir, prefix=f"cvt{b}") for b in range(nbuckets)]
    try:
        staged: list[list] = [[] for _ in range(nbuckets)]
        staged_bytes = [0] * nbuckets
        stage_limit = max(pagesize // max(nbuckets, 1), 4096)
        for key, value in kv:
            b = stable_hash(key) % nbuckets
            staged[b].append((key, value))
            staged_bytes[b] += approx_size(key) + approx_size(value)
            if staged_bytes[b] >= stage_limit:
                buckets[b].write_page(staged[b])
                staged[b] = []
                staged_bytes[b] = 0
        for b in range(nbuckets):
            if staged[b]:
                buckets[b].write_page(staged[b])
        for b in range(nbuckets):
            groups = {}
            for key, value in buckets[b].iter_records():
                kb = key_bytes(key)
                if kb not in groups:
                    groups[kb] = (key, [])
                groups[kb][1].append(value)
            for key, values in groups.values():
                kmv.add(key, values)
    finally:
        for spool in buckets:
            spool.close()
    return kmv


#: Historical name, kept so existing reducers/tests keep working unchanged.
KeyMultiValue = ObjectKeyMultiValue
