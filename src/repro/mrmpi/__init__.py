"""Python port of Sandia's MapReduce-MPI library.

MapReduce-MPI (Plimpton & Devine) implements the MapReduce pattern as a
regular MPI program: no daemons, no distributed file system — key-value pairs
live in the collective memory of the MPI ranks and are exchanged with MPI
calls, spilling to page files when a per-processor memory budget is exceeded
("out-of-core processing").

This port keeps the original object model and call sequence:

- :class:`~repro.mrmpi.mapreduce.MapReduce` — the per-rank MapReduce object;
  collective methods: ``map`` (mapstyles: chunk, strided, master/worker),
  ``aggregate``, ``convert``, ``collate``, ``reduce``, ``gather``,
  ``sort_keys``, ``scan_kv``/``scan_kmv``.
- :class:`~repro.mrmpi.keyvalue.KeyValue` — a pageable store of (key, value)
  pairs; mappers and reducers emit into it with ``add``.
- :class:`~repro.mrmpi.keymultivalue.KeyMultiValue` — (key, [values...])
  pairs produced by ``convert``/``collate``.

The paper's two applications use exactly this surface: BLAST uses
``map`` (master/worker) → ``collate`` → ``reduce``; the SOM uses ``map`` plus
direct MPI calls (``Bcast``/``Reduce``) and no reduce stage.
"""

from repro.mrmpi.keyvalue import KeyValue, ObjectKeyValue
from repro.mrmpi.keymultivalue import KeyMultiValue, ObjectKeyMultiValue
from repro.mrmpi.columnar import (
    ColumnarKeyMultiValue,
    ColumnarKeyValue,
    convert_columnar,
    sort_kmv_columnar,
)
from repro.mrmpi.mapreduce import KEEP_SCHEMA, MapReduce, MapStyle
from repro.mrmpi.hashing import hash_key_column, stable_hash
from repro.mrmpi.schema import RAGGED_BYTES, RecordSchema

__all__ = [
    "MapReduce",
    "MapStyle",
    "KeyValue",
    "KeyMultiValue",
    "ObjectKeyValue",
    "ObjectKeyMultiValue",
    "ColumnarKeyValue",
    "ColumnarKeyMultiValue",
    "RecordSchema",
    "RAGGED_BYTES",
    "KEEP_SCHEMA",
    "convert_columnar",
    "sort_kmv_columnar",
    "stable_hash",
    "hash_key_column",
]
