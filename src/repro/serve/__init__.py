"""Always-on BLAST query service over the resident SPMD runtime.

The one-shot drivers in ``repro.core.mrblast`` spawn ranks, load the
database and tear everything down per call.  This package keeps the ranks
*resident*: they come up once, hold warm DB partitions and lookup caches,
and serve a stream of queries coalesced into query blocks.

Layers (front to back):

- :mod:`repro.serve.service` — :class:`QueryService`: async submit /
  future-based results, admission control, backpressure, crash restart
  with exactly-once delivery.
- :mod:`repro.serve.coalescer` — deadline/size batching on an injected
  clock, batch sizing advised by the measured α/β machine model.
- :mod:`repro.serve.admission` — weighted-fair queueing, per-tenant
  quotas, watermark backpressure.
- :mod:`repro.serve.session` — the resident rank loop itself.
- :mod:`repro.serve.cli` — the ``mrblast-serve`` console entry point.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    BackpressureGauge,
    FairQueue,
)
from repro.serve.coalescer import (
    Coalescer,
    QueryBatch,
    Submission,
    advise_batch_size,
    load_machine_model,
)
from repro.serve.service import DeliveryLedger, QueryFuture, QueryService
from repro.serve.session import (
    BlockJob,
    BlockResult,
    ResidentBlastSession,
    ServeConfig,
    ServeRankStats,
    serve_rank_main,
)

__all__ = [
    "QueryService",
    "QueryFuture",
    "DeliveryLedger",
    "ServeConfig",
    "ResidentBlastSession",
    "BlockJob",
    "BlockResult",
    "ServeRankStats",
    "serve_rank_main",
    "Coalescer",
    "Submission",
    "QueryBatch",
    "advise_batch_size",
    "load_machine_model",
    "AdmissionController",
    "AdmissionError",
    "BackpressureGauge",
    "FairQueue",
]
