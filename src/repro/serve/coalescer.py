"""Submission coalescing: turn a trickle of queries into query blocks.

The always-on service accepts queries one at a time, but the MR-MPI BLAST
pipeline amortises its fixed costs (master/worker dispatch, collate
collectives, reduce barrier) over a whole *query block*.  The coalescer is
the pure state machine between the two: submissions accumulate per tenant
and are flushed as a :class:`QueryBatch` when either

- **size** triggers — enough submissions are pending to fill a batch, or
- **deadline** triggers — the oldest pending submission's flush time
  (``min(submission deadline, arrival + max_delay)``) has passed.

Every method takes ``now`` explicitly; the coalescer never reads a wall
clock and never sleeps, which is what lets the unit suite drive it on a
:class:`~repro.obs.trace.TickClock` deterministically.

Batch sizing is advised by the α/β machine model measured by the shuffle
benchmark (``BENCH_shuffle.json``): a batch pays roughly
``collectives x α x nprocs`` of latency no matter how many queries it
carries, so :func:`advise_batch_size` picks the smallest batch for which
that fixed cost stays below a target fraction of the useful per-query work.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.bio.seq import SeqRecord
from repro.serve.admission import FairQueue

__all__ = [
    "Submission",
    "QueryBatch",
    "Coalescer",
    "load_machine_model",
    "advise_batch_size",
]


@dataclass(frozen=True)
class Submission:
    """One query waiting in (or moving through) the service.

    ``deadline`` is an *absolute* time on the service clock by which the
    submission must be flushed into a batch (not completed); ``None`` means
    the coalescer's ``max_delay`` alone bounds its wait.
    """

    seq: int
    query: SeqRecord
    tenant: str = "default"
    submitted_at: float = 0.0
    deadline: float | None = None

    def flush_at(self, max_delay: float) -> float:
        """Latest time this submission may sit unbatched."""
        latest = self.submitted_at + max_delay
        if self.deadline is not None:
            latest = min(latest, self.deadline)
        return latest


@dataclass(frozen=True)
class QueryBatch:
    """A flushed query block, ready to dispatch as one MapReduce job."""

    batch_id: int
    submissions: tuple[Submission, ...]
    formed_at: float
    #: why the flush happened: "size", "deadline" or "forced"
    reason: str = "size"

    def __len__(self) -> int:
        return len(self.submissions)

    @property
    def query_ids(self) -> tuple[str, ...]:
        """Query record ids in batch order."""
        return tuple(s.query.id for s in self.submissions)

    @property
    def queries(self) -> list[SeqRecord]:
        """The batch's query block (records in batch order)."""
        return [s.query for s in self.submissions]


class Coalescer:
    """Pure batching state machine over a weighted-fair tenant queue.

    ``add`` and ``poll`` never block and never read a clock — the caller
    supplies ``now``.  Batches pop submissions in stride-scheduled fair
    order (see :class:`~repro.serve.admission.FairQueue`), so a saturating
    tenant cannot starve a light one.  Two submissions carrying the same
    query id are never placed in the same batch: the mapper would search
    the duplicated record twice and collate would merge the duplicate hits
    under one key, breaking per-query byte parity with a standalone run.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_delay: float = 0.05,
        weights: dict[str, float] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._queue = FairQueue(weights)
        self._flush_at: dict[int, float] = {}
        self._next_batch_id = 0
        self.batches_formed = 0
        self.submissions_seen = 0

    @property
    def pending(self) -> int:
        """Number of submissions waiting to be batched."""
        return len(self._queue)

    def add(self, submission: Submission, now: float) -> None:
        """Enqueue one submission (``now`` only feeds bookkeeping)."""
        self._queue.push(submission.tenant, submission)
        self._flush_at[submission.seq] = submission.flush_at(self.max_delay)
        self.submissions_seen += 1

    def next_flush_at(self) -> float | None:
        """Earliest pending flush time, or None when nothing is pending."""
        if not self._flush_at:
            return None
        return min(self._flush_at.values())

    def _form_batch(self, now: float, reason: str) -> QueryBatch:
        picked: list[Submission] = []
        seen_ids: set[str] = set()
        deferred: list[tuple[str, Submission]] = []
        while self._queue and len(picked) < self.max_batch:
            sub = self._queue.pop()
            if sub.query.id in seen_ids:
                # Same query id twice: defer the later copy to the next
                # batch (parity rule — see the class docstring).
                deferred.append((sub.tenant, sub))
                continue
            seen_ids.add(sub.query.id)
            picked.append(sub)
            del self._flush_at[sub.seq]
        for tenant, sub in reversed(deferred):
            self._queue.push_front(tenant, sub)
        batch = QueryBatch(
            batch_id=self._next_batch_id,
            submissions=tuple(picked),
            formed_at=now,
            reason=reason,
        )
        self._next_batch_id += 1
        self.batches_formed += 1
        return batch

    def poll(self, now: float) -> list[QueryBatch]:
        """Flush every batch that is due at ``now`` (possibly none).

        Size triggers fire first (a full batch never waits on a deadline);
        then one deadline batch is formed if the oldest flush time has
        passed — partially filled, carrying everything pending up to
        ``max_batch``.
        """
        batches: list[QueryBatch] = []
        while self.pending >= self.max_batch:
            batch = self._form_batch(now, "size")
            if not batch.submissions:  # pragma: no cover - defensive
                break
            batches.append(batch)
        while self.pending:
            due = self.next_flush_at()
            if due is None or due > now:
                break
            batches.append(self._form_batch(now, "deadline"))
        return batches

    def flush(self, now: float) -> list[QueryBatch]:
        """Force everything pending out, regardless of deadlines."""
        batches: list[QueryBatch] = []
        while self.pending:
            batches.append(self._form_batch(now, "forced"))
        return batches


def load_machine_model(
    path: str, backend: str = "thread", arena: bool = True
) -> dict[str, float]:
    """Read the α/β point-to-point model the shuffle bench fitted.

    Returns ``{"alpha_s": latency per message in seconds, "bandwidth_bytes_s":
    sustained bandwidth}`` for the given transport.  The process backend has
    two entries — with and without the shared-memory arena — matching how
    the bench measured it.
    """
    with open(path) as fh:
        data = json.load(fh)
    if backend == "thread":
        key = "thread"
    elif backend == "process":
        key = "process+arena" if arena else "process"
    else:
        raise ValueError(f"unknown backend {backend!r}")
    model = data["machine_model"][key]
    return {
        "alpha_s": float(model["alpha_us"]) * 1e-6,
        "bandwidth_bytes_s": float(model["bandwidth_mib_s"]) * 1024 * 1024,
    }


def advise_batch_size(
    model: dict[str, float],
    nprocs: int,
    per_query_seconds: float,
    collectives_per_batch: int = 8,
    overhead_fraction: float = 0.1,
    max_batch: int = 64,
) -> int:
    """Smallest batch that keeps dispatch overhead under the target fraction.

    A batch pays a fixed latency cost of roughly ``collectives_per_batch x
    alpha x nprocs`` (each collective round touches every rank) regardless
    of how many queries it carries, while useful work scales with the batch.
    The advised size is the smallest ``b`` with ``fixed <=
    overhead_fraction x b x per_query_seconds``, clamped to
    ``[1, max_batch]`` — bigger batches only add queueing latency.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if per_query_seconds <= 0 or overhead_fraction <= 0:
        return max_batch
    fixed = collectives_per_batch * model["alpha_s"] * nprocs
    advised = math.ceil(fixed / (overhead_fraction * per_query_seconds))
    return max(1, min(advised, max_batch))
