"""The resident rank session: ranks come up once, serve many query blocks.

One-shot :func:`~repro.core.mrblast.driver.run_mrblast` pays its setup cost
(rank spawn, DB alias load, partition open, lookup-table build) on every
call.  The resident session keeps an SPMD job alive between requests: every
rank holds one warm :class:`~repro.core.mrblast.mapper.MrBlastMapper` (open
DB partition + cross-partition lookup cache) and one
:class:`~repro.mrmpi.mapreduce.MapReduce` handle for its whole lifetime,
and executes query blocks pushed through a job queue.

Control flow per rank: rank 0 pops the next :class:`BlockJob` from the
parent's queue and broadcasts it; every rank then runs the standard
map → collate → sort → reduce pipeline over the block, with the reduce step
demuxing per-query result bytes (:class:`~repro.core.mrblast.reducer.DemuxReducer`)
instead of appending to rank files.  Rank 0 gathers the demuxed dicts and
ships one result envelope back.  While the queue is idle, rank 0 broadcasts
keepalive ticks so blocked ranks never trip the transport's operation
timeout.

Degraded mode composes unchanged: a worker dying mid-map raises
:class:`~repro.mpi.exceptions.DegradedRankLoss` out of the rank loop (the
rank leaves the session permanently), survivors shrink the session
communicator past it and keep serving.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DatabaseAlias
from repro.blast.hsp import HSP
from repro.blast.options import BlastOptions
from repro.core.mrblast.mapper import MrBlastMapper
from repro.core.mrblast.reducer import DemuxReducer
from repro.core.mrblast.workitems import build_work_items
from repro.mpi.comm import Comm
from repro.mpi.exceptions import MPIError
from repro.mpi.faultplan import FaultPlan
from repro.mpi.runtime import SpmdJob, resolve_backend
from repro.mrmpi.mapreduce import MapReduce, MapStyle

__all__ = [
    "ServeConfig",
    "BlockJob",
    "BlockResult",
    "ServeRankStats",
    "ResidentBlastSession",
    "serve_rank_main",
]


@dataclass
class ServeConfig:
    """Everything a resident BLAST service needs.

    Mirrors the one-shot :class:`~repro.core.mrblast.driver.MrBlastConfig`
    knobs that matter for a long-lived session, plus the service-side
    batching/intake parameters.  ``idle_tick`` must stay well below the
    transport operation timeout: it is the cadence of rank 0's keepalive
    broadcasts while the job queue is empty.
    """

    alias_path: str
    nprocs: int = 2
    options: BlastOptions = field(default_factory=BlastOptions.blastn)
    backend: str | None = None
    arena_mb: int | None = None
    memsize: int = 64 * 1024 * 1024
    work_order: str = "partition_major"
    locality_aware: bool = True
    lookup_cache_blocks: int = 8
    columnar: bool = True
    id_width: int = 64
    spool_dir: str | None = None
    hit_filter: Callable[[str, HSP], bool] | None = None
    #: resilience: degraded-mode completion on worker death is the default
    #: for a service (finish the batch, keep serving on survivors)
    degraded: bool = True
    speculation_factor: float | None = None
    #: test/chaos hook forwarded to the mapper (see MrBlastConfig)
    unit_fault_injector: Callable[..., None] | None = None
    #: keepalive cadence of the idle rank loop, seconds
    idle_tick: float = 0.25
    #: transport operation timeout override (None = transport default)
    op_timeout: float | None = None
    #: join budget for the shutdown drain, seconds — the clock starts when
    #: :meth:`ResidentBlastSession.stop` enqueues the stop sentinel, never
    #: at session start (a resident session may legitimately serve, or
    #: idle, for hours)
    session_budget: float = 3600.0
    # ---- service-side intake/batching knobs -------------------------
    max_batch: int = 8
    max_delay: float = 0.05
    max_pending: int = 256
    tenant_weights: dict[str, float] = field(default_factory=dict)
    #: backpressure watermarks as fractions of nprocs x memsize
    high_watermark: float = 0.8
    low_watermark: float = 0.5

    def validate(self) -> None:
        """Fail-fast checks before any rank spawns (raises ValueError)."""
        if not os.path.isfile(self.alias_path):
            raise ValueError(f"serve config: alias_path {self.alias_path!r} does not exist")
        try:
            DatabaseAlias.load(self.alias_path)
        except Exception as exc:
            raise ValueError(
                f"serve config: alias_path {self.alias_path!r} is not a readable "
                f"database alias ({exc})"
            ) from exc
        if self.nprocs < 1:
            raise ValueError(f"serve config: nprocs must be >= 1, got {self.nprocs}")
        if self.memsize < 1:
            raise ValueError(f"serve config: memsize must be >= 1, got {self.memsize}")
        if self.idle_tick <= 0:
            raise ValueError(f"serve config: idle_tick must be > 0, got {self.idle_tick}")
        if self.max_batch < 1:
            raise ValueError(f"serve config: max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(f"serve config: max_delay must be >= 0, got {self.max_delay}")
        if self.work_order not in ("partition_major", "query_major"):
            raise ValueError(f"serve config: unknown work_order {self.work_order!r}")
        if not 0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                "serve config: need 0 < low_watermark <= high_watermark <= 1.0")
        resolve_backend(self.backend)


@dataclass(frozen=True)
class BlockJob:
    """One coalesced query block submitted to the rank session."""

    job_id: int
    queries: tuple[SeqRecord, ...]


@dataclass
class BlockResult:
    """Rank 0's result envelope for one :class:`BlockJob`.

    ``results`` maps query id to its encoded outfmt-6 block; queries with
    no surviving hits are simply absent (the service resolves them to empty
    bytes).  ``kv_bytes`` is the exact summed ``nbytes`` of the columnar KV
    dataset after map — the measurement the service's backpressure gauge
    feeds on.
    """

    job_id: int
    results: dict[str, bytes]
    hits: int = 0
    kv_bytes: int = 0
    degraded: bool = False
    lost_ranks: tuple[int, ...] = ()


@dataclass
class ServeRankStats:
    """Per-rank lifetime counters, returned when the session shuts down."""

    rank: int
    jobs_run: int = 0
    units_processed: int = 0
    partition_switches: int = 0
    hits_emitted: int = 0
    lookup_cache_hits: int = 0
    ticks_seen: int = 0
    degraded: bool = False
    lost_ranks: tuple[int, ...] = ()


def _run_block_job(
    cfg: ServeConfig,
    alias: DatabaseAlias,
    mapper: MrBlastMapper,
    mr: MapReduce,
    job: BlockJob,
    speculation,
) -> dict[str, bytes] | None:
    """Execute one query block on this rank; rank 0 returns the merged demux."""
    from repro.mpi.ops import SUM

    mapper.set_query_blocks([list(job.queries)])
    items = build_work_items(1, alias.num_partitions, cfg.work_order)
    mr.reset()
    mr.map_items(
        items,
        mapper,
        locality_key=(lambda it: it.partition_index) if cfg.locality_aware else None,
        speculation=speculation,
        degraded=cfg.degraded,
    )
    kv_bytes = int(mr.comm.allreduce(getattr(mr.kv, "nbytes", 0), op=SUM))
    mr.collate()
    order = {rec.id: i for i, rec in enumerate(job.queries)}
    mr.sort_kmv_keys(key=lambda qid: order.get(qid, len(order)))
    demux = DemuxReducer(mapper.options)
    mr.reduce(demux, out_schema=None)
    gathered = mr.comm.gather(demux.results, root=0)
    if mr.comm.rank != 0:
        return None
    merged: dict[str, bytes] = {}
    for part in gathered or []:
        merged.update(part)
    # Stash the measurement for the envelope builder (rank 0 only).
    merged["\x00kv_bytes"] = kv_bytes  # type: ignore[assignment]
    return merged


def serve_rank_main(comm: Comm, cfg: ServeConfig, jobs: Any, results: Any) -> ServeRankStats:
    """SPMD body of the resident session: loop on broadcast directives.

    ``jobs``/``results`` are queues shared with the parent (``queue.Queue``
    on the thread backend, fork-inherited ``multiprocessing`` queues on the
    process backend).  Only rank 0 touches them; peers learn everything via
    broadcast.  Directives are ``("job", BlockJob)``, ``("tick", None)``
    (keepalive) and ``("stop", None)``.
    """
    alias = DatabaseAlias.load(cfg.alias_path)
    mapper = MrBlastMapper(
        alias,
        [],
        cfg.options,
        hit_filter=cfg.hit_filter,
        lookup_cache_blocks=cfg.lookup_cache_blocks,
        fault_injector=cfg.unit_fault_injector,
    )
    schema = None
    if cfg.columnar:
        from repro.core.mrblast.hspcodec import hsp_schema

        schema = hsp_schema(cfg.id_width)
    mr = MapReduce(
        comm,
        memsize=cfg.memsize,
        mapstyle=MapStyle.MASTER_WORKER,
        spool_dir=cfg.spool_dir,
        schema=schema,
    )
    speculation = None
    if cfg.speculation_factor is not None:
        from repro.sched import SpeculationPolicy

        speculation = SpeculationPolicy(factor=cfg.speculation_factor)

    stats = ServeRankStats(rank=comm.rank)
    live_comm = comm
    trc = comm.tracer
    try:
        while True:
            if live_comm.rank == 0:
                try:
                    directive = ("job", jobs.get(timeout=cfg.idle_tick))
                except queue.Empty:
                    # Keepalive: peers are blocked in this bcast; ticking
                    # well inside the op timeout keeps the idle session from
                    # tripping deadlock detection.
                    directive = ("tick", None)
                else:
                    if directive[1] is None:
                        directive = ("stop", None)
            else:
                directive = None
            kind, payload = live_comm.bcast(directive, root=0)
            if kind == "stop":
                break
            if kind == "tick":
                stats.ticks_seen += 1
                continue
            job: BlockJob = payload
            # Jobs must leave the span stack exactly as they found it:
            # resident ranks outlive any one job, so an unwound exception
            # (degraded loss, abort fallout) may not leak open spans into
            # the next job's trace.
            depth = trc.open_depth
            sid = None
            if trc.enabled:
                sid = trc.begin("serve.job", cat="serve",
                                job_id=job.job_id, queries=len(job.queries))
            try:
                merged = _run_block_job(cfg, alias, mapper, mr, job, speculation)
                if live_comm.rank == 0 and merged is not None:
                    kv_bytes = merged.pop("\x00kv_bytes", 0)
                    results.put(BlockResult(
                        job_id=job.job_id,
                        results=merged,
                        hits=sum(v.count(b"\n") for v in merged.values()),
                        kv_bytes=int(kv_bytes),
                        degraded=mr.degraded_run,
                        lost_ranks=mr.lost_ranks,
                    ))
                if trc.enabled:
                    trc.end(sid)
            finally:
                trc.unwind(to_depth=depth)
            stats.jobs_run += 1
            if mr.degraded_run and set(mr.lost_ranks) - set(stats.lost_ranks):
                # Survivors agree on the newly dead global ranks (the sched
                # master told everyone); shrink the session communicator so
                # subsequent broadcasts span only the living.
                newly = set(mr.lost_ranks) - set(stats.lost_ranks)
                dead_local = [i for i, g in enumerate(live_comm.group) if g in newly]
                live_comm = live_comm.shrink(sorted(dead_local))
                stats.degraded = True
                stats.lost_ranks = mr.lost_ranks
    finally:
        mr.close()
        mapper.release()
    stats.units_processed = mapper.stats.units_processed
    stats.partition_switches = mapper.stats.partition_switches
    stats.hits_emitted = mapper.stats.hits_emitted
    stats.lookup_cache_hits = mapper.stats.lookup_cache_hits
    return stats


class ResidentBlastSession:
    """Parent-side handle on one launched rank session.

    ``start()`` brings the ranks up (DB partitions preload lazily on first
    use, lookup caches stay warm across jobs); ``submit()`` enqueues a
    :class:`BlockJob`; ``poll_result()`` retrieves envelopes; ``stop()``
    broadcasts the shutdown sentinel and joins.  A watcher thread owns the
    join so a crashed session is detected promptly: check :attr:`failed` /
    :attr:`failure` between pumps.
    """

    def __init__(self, cfg: ServeConfig, trace=None, fault_plan: FaultPlan | None = None) -> None:
        cfg.validate()
        self.cfg = cfg
        self.trace = trace
        self.fault_plan = fault_plan
        self.backend = resolve_backend(cfg.backend)
        self._job: SpmdJob | None = None
        self._jobs_q: Any = None
        self._results_q: Any = None
        self._watcher: threading.Thread | None = None
        self._done = threading.Event()
        self._failure: BaseException | None = None
        self._rank_stats: list[ServeRankStats | None] | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ResidentBlastSession":
        """Launch the ranks and return self (idempotent start is an error)."""
        if self._job is not None:
            raise RuntimeError("session already started")
        if self.backend == "process":
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._jobs_q = ctx.Queue()
            self._results_q = ctx.Queue()
        else:
            self._jobs_q = queue.Queue()
            self._results_q = queue.Queue()
        self._job = SpmdJob(
            self.cfg.nprocs,
            serve_rank_main,
            (self.cfg, self._jobs_q, self._results_q),
            op_timeout=self.cfg.op_timeout,
            fault_plan=self.fault_plan,
            trace=self.trace,
            backend=self.backend,
            arena_mb=self.cfg.arena_mb,
        )
        self._job.start()
        self._watcher = threading.Thread(
            target=self._watch, name="serve-session-watcher", daemon=True)
        self._watcher.start()
        return self

    def _watch(self) -> None:
        try:
            # No lifetime deadline: both engines' joins return as soon as a
            # rank dies, so crash detection stays prompt without one, and a
            # finite budget here would force-abort a perfectly healthy
            # session once it had merely been *up* that long.  The
            # ``session_budget`` join budget applies only to the shutdown
            # drain and is enforced by :meth:`stop`, which aborts the
            # transport if the ranks outlive it.
            self._rank_stats = self._job.wait(float("inf"))
        except BaseException as exc:  # noqa: BLE001 - report anything
            self._failure = exc
        finally:
            self._done.set()

    @property
    def failed(self) -> bool:
        """True once the session died with an error (vs. clean shutdown)."""
        return self._failure is not None

    @property
    def failure(self) -> BaseException | None:
        """The terminal session error, if any."""
        return self._failure

    @property
    def closed(self) -> bool:
        """True once every rank has exited (cleanly or not)."""
        return self._done.is_set()

    @property
    def rank_stats(self) -> list[ServeRankStats | None] | None:
        """Per-rank lifetime counters after a clean shutdown (else None)."""
        return self._rank_stats

    # -- request plane -------------------------------------------------

    def submit(self, job: BlockJob) -> None:
        """Enqueue one query block for execution."""
        if self._job is None:
            raise RuntimeError("session not started")
        if self._done.is_set():
            raise RuntimeError("session is closed")
        self._jobs_q.put(job)

    def poll_result(self, timeout: float | None = 0.0) -> BlockResult | None:
        """Next result envelope, or None when nothing is ready in time."""
        if self._results_q is None:
            return None
        try:
            if timeout is None or timeout <= 0:
                return self._results_q.get_nowait()
            return self._results_q.get(timeout=timeout)
        except queue.Empty:
            return None

    def stop(self, timeout: float | None = None) -> list[ServeRankStats | None] | None:
        """Broadcast shutdown, join the ranks, return per-rank stats.

        The join budget (``timeout``, defaulting to ``cfg.session_budget``)
        runs from the shutdown sentinel enqueued here — a session that
        served for hours still gets the full budget to drain.  Ranks that
        outlive it are forcibly aborted and the stall is raised.
        """
        if self._job is None:
            return None
        budget = self.cfg.session_budget if timeout is None else timeout
        if not self._done.is_set():
            self._jobs_q.put(None)
        if not self._done.wait(budget):
            err = MPIError(
                f"resident session did not drain within {budget:.0f}s of "
                f"the shutdown sentinel")
            self._job.network.abort(err)
            self._done.wait(5.0)
            raise err
        if self._failure is not None:
            raise self._failure
        return self._rank_stats
