"""Command-line front end for the always-on BLAST query service.

Brings a resident rank session up, streams every query of the given FASTA
files through the service, waits for all of them to resolve and writes the
per-query results — in submission order — to one output file::

    mrblast-serve --db outdir/mydb.pal.json --queries q.fasta \\
        --np 4 --out results.tsv --max-batch 0

``--max-batch 0`` asks the α/β machine model recorded by the shuffle
benchmark (``--machine-model``, default ``BENCH_shuffle.json`` when
present) to advise the batch size; any positive value pins it.  The
output is byte-identical, per query, to what a one-shot ``mrblast`` run
would have produced for the same inputs.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.blast.options import BlastOptions
from repro.bio.fasta import read_fasta
from repro.serve.admission import AdmissionError
from repro.serve.coalescer import advise_batch_size, load_machine_model
from repro.serve.service import DeliveryLedger, QueryService
from repro.serve.session import ServeConfig

__all__ = ["main", "build_parser", "submit_all"]


def submit_all(service: QueryService, records) -> list:
    """Submit every record, pumping the service whenever intake is full.

    A plain ``[service.submit(r) for r in records]`` overruns the admission
    window as soon as ``len(records)`` exceeds ``max_pending`` (nothing
    resolves between submits).  Here a refusal — capacity, tenant quota or
    backpressure — runs scheduling steps until resolved queries free space,
    then retries; only ``"closed"`` (service shut down) is terminal.
    Returns the futures in submission order.
    """
    futures = []
    for rec in records:
        while True:
            try:
                futures.append(service.submit(rec))
                break
            except AdmissionError as exc:
                if exc.reason == "closed":
                    raise
                if service.pump(wait=0.01) == 0:
                    # Nothing resolved: push parked submissions out so the
                    # ranks have work whose completion frees capacity.
                    service.flush()
    return futures


def build_parser() -> argparse.ArgumentParser:
    """The ``mrblast-serve`` argument parser."""
    ap = argparse.ArgumentParser(prog="mrblast-serve", description=__doc__)
    ap.add_argument("--db", required=True, help="database alias file (.pal.json)")
    ap.add_argument("--queries", nargs="+", required=True,
                    help="query FASTA files (records are submitted one by one)")
    ap.add_argument("--out", default="serve_out.tsv",
                    help="file receiving the per-query results in submission order")
    ap.add_argument("--np", type=int, default=4, help="number of resident MPI ranks")
    ap.add_argument("--backend", choices=["thread", "process"], default=None,
                    help="transport backend (default: $REPRO_MPI_BACKEND or thread)")
    ap.add_argument("--program", choices=["blastn", "blastp", "blastx"], default="blastn")
    ap.add_argument("--evalue", type=float, default=10.0)
    ap.add_argument("--max-hits", type=int, default=500)
    ap.add_argument("--max-batch", type=int, default=0,
                    help="queries per dispatched block; 0 = advise from the "
                         "machine model (or 8 when no model file is found)")
    ap.add_argument("--max-delay", type=float, default=0.05,
                    help="longest a submission may wait unbatched, seconds")
    ap.add_argument("--machine-model", default="BENCH_shuffle.json",
                    help="shuffle-bench JSON holding the fitted alpha/beta model")
    ap.add_argument("--per-query-seconds", type=float, default=0.05,
                    help="expected serial cost of one query (feeds batch advice)")
    ap.add_argument("--ledger", default=None, metavar="PATH",
                    help="delivery-ledger JSON enabling exactly-once resume "
                         "(results then also append to --out via the ledger)")
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="overall drain timeout, seconds")
    return ap


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``mrblast-serve`` console script."""
    args = build_parser().parse_args(argv)
    factory = {
        "blastn": BlastOptions.blastn,
        "blastp": BlastOptions.blastp,
        "blastx": BlastOptions.blastx,
    }[args.program]
    options = factory(evalue=args.evalue, max_hits=args.max_hits)

    max_batch = args.max_batch
    advised = False
    if max_batch < 1:
        if os.path.isfile(args.machine_model):
            model = load_machine_model(
                args.machine_model,
                backend=args.backend or os.environ.get("REPRO_MPI_BACKEND", "thread"),
            )
            max_batch = advise_batch_size(model, args.np, args.per_query_seconds)
            advised = True
        else:
            max_batch = 8

    cfg = ServeConfig(
        alias_path=args.db,
        nprocs=args.np,
        options=options,
        backend=args.backend,
        max_batch=max_batch,
        max_delay=args.max_delay,
    )
    ledger = None
    if args.ledger:
        ledger = DeliveryLedger(args.ledger, args.out)

    records = [rec for path in args.queries for rec in read_fasta(path)]
    service = QueryService(cfg, ledger=ledger).start()
    t0 = time.perf_counter()
    try:
        futures = submit_all(service, records)
        service.drain(timeout=args.timeout)
        results = [f.result(timeout=0.0) for f in futures]
    finally:
        service.close()
    elapsed = time.perf_counter() - t0

    if ledger is None:
        with open(args.out, "wb") as fh:
            for data in results:
                fh.write(data)

    hit_lines = sum(data.count(b"\n") for data in results)
    with_hits = sum(1 for data in results if data)
    print(
        f"served {len(records)} queries in {elapsed:.2f}s "
        f"({len(records) / elapsed:.1f} qps) across {args.np} resident ranks"
    )
    print(
        f"batching: max_batch={max_batch}"
        + (" (advised by machine model)" if advised else "")
        + f", batches dispatched={service.stats['batches']}"
    )
    print(f"{with_hits} queries with hits, {hit_lines} hit lines -> {args.out}")
    if service.stats["degraded_batches"]:
        print(f"degraded batches: {service.stats['degraded_batches']}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
