"""The query service front door: submit → coalesce → dispatch → resolve.

:class:`QueryService` sits between callers and one
:class:`~repro.serve.session.ResidentBlastSession`:

- :meth:`QueryService.submit` gates each query through admission control
  (global capacity, per-tenant weighted quota, backpressure) and parks it
  in the coalescer; the returned :class:`QueryFuture` resolves to exactly
  the outfmt-6 bytes a standalone ``run_mrblast`` would have produced for
  that query.
- :meth:`QueryService.pump` is the single scheduling step: flush due
  batches from the coalescer (weighted-fair order), dispatch them to the
  rank session, drain result envelopes, resolve futures.  All timing
  decisions read the injected ``clock``, so tests drive the whole service
  on virtual time.
- A session that dies (non-degraded rank failure) is restarted and every
  *unresolved* in-flight submission is resubmitted; the optional
  :class:`DeliveryLedger` additionally persists delivered results so a
  restarted *service* never appends a query's results to its sink twice.

Backpressure: the rank session reports the exact columnar-KV ``nbytes``
each batch materialised; the service keeps an EWMA of bytes per query and
engages the high/low watermark gauge when the estimated working set of
everything admitted-but-unresolved approaches the ranks' ``memsize``
budget.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

from repro.bio.seq import SeqRecord
from repro.core.checkpoint import atomic_write_json, read_json
from repro.obs.trace import NULL_TRACER
from repro.serve.admission import AdmissionController, AdmissionError, BackpressureGauge
from repro.serve.coalescer import Coalescer, QueryBatch, Submission
from repro.serve.session import BlockJob, BlockResult, ResidentBlastSession, ServeConfig

__all__ = ["QueryFuture", "DeliveryLedger", "QueryService"]


class QueryFuture:
    """Handle on one submitted query's eventual result bytes."""

    def __init__(self, submission: Submission) -> None:
        self.submission = submission
        self._event = threading.Event()
        self._result: bytes | None = None
        self._error: BaseException | None = None

    @property
    def query_id(self) -> str:
        """Id of the submitted query record."""
        return self.submission.query.id

    def done(self) -> bool:
        """True once the future holds a result or an error."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> bytes:
        """Block until resolved; return the per-query outfmt-6 bytes.

        Queries with no surviving hits resolve to ``b""`` — the same
        content a standalone run would have contributed for them.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(f"query {self.query_id!r} not resolved in time")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self) -> BaseException | None:
        """The rejection error, if the future was rejected."""
        return self._error

    def _resolve(self, data: bytes) -> None:
        if not self._event.is_set():
            self._result = data
            self._event.set()

    def _reject(self, exc: BaseException) -> None:
        if not self._event.is_set():
            self._error = exc
            self._event.set()


class DeliveryLedger:
    """Exactly-once delivery journal: sink offsets committed per query.

    Results append to ``sink_path``; after each append the ledger commits
    ``{query_id: [offset, length]}`` atomically.  A service restarted over
    the same ledger recognises already-delivered queries, serves their
    bytes back from the sink and never appends them again — the
    no-duplicates half of checkpoint resume.  A crash *between* the sink
    append and the ledger commit leaves orphaned bytes past the last
    committed offset; reopening the ledger truncates the sink back to that
    offset, so the sink itself — not just ledger reads — stays exactly-once.
    """

    def __init__(self, path: str, sink_path: str) -> None:
        self.path = path
        self.sink_path = sink_path
        self._entries: dict[str, list[int]] = {}
        if os.path.exists(path):
            data = read_json(path)
            if data:
                self._entries = {k: list(v) for k, v in data.get("entries", {}).items()}
        committed_end = max(
            (offset + length for offset, length in self._entries.values()),
            default=0)
        if not os.path.exists(sink_path):
            open(sink_path, "wb").close()
        elif os.path.getsize(sink_path) > committed_end:
            with open(sink_path, "r+b") as fh:
                fh.truncate(committed_end)

    def delivered(self, query_id: str) -> bool:
        """True when this query's results are already in the sink."""
        return query_id in self._entries

    def record(self, query_id: str, data: bytes) -> None:
        """Append one query's bytes to the sink and commit the offset."""
        if query_id in self._entries:
            return
        with open(self.sink_path, "ab") as fh:
            offset = fh.tell()
            fh.write(data)
        self._entries[query_id] = [offset, len(data)]
        atomic_write_json(self.path, {"entries": self._entries})

    def read(self, query_id: str) -> bytes:
        """Re-read a delivered query's bytes from the sink."""
        offset, length = self._entries[query_id]
        with open(self.sink_path, "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def __len__(self) -> int:
        return len(self._entries)


class QueryService:
    """Always-on BLAST front door over one resident rank session.

    ``clock`` supplies every queue/batch/admission timestamp (inject a
    :class:`~repro.obs.trace.TickClock` for deterministic tests);
    ``tracer`` receives ``serve.submit`` / ``serve.batch`` /
    ``serve.backpressure`` instants; ``session_factory`` builds (and
    starts) replacement sessions after a crash — it defaults to plain
    ``ResidentBlastSession(cfg).start()``.

    The service is thread-safe: one re-entrant lock serialises
    :meth:`submit`, :meth:`pump`, :meth:`flush` and :meth:`close`, so
    callers may submit from any thread while a background pump
    (``start(pump_interval=...)``) schedules and resolves.
    """

    def __init__(
        self,
        cfg: ServeConfig,
        clock: Callable[[], float] = time.monotonic,
        tracer=None,
        session_factory: Callable[[], ResidentBlastSession] | None = None,
        ledger: DeliveryLedger | None = None,
        max_restarts: int = 3,
    ) -> None:
        self.cfg = cfg
        self._clock = clock
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._factory = session_factory or (lambda: ResidentBlastSession(cfg).start())
        self._ledger = ledger
        self.max_restarts = max_restarts
        self._coalescer = Coalescer(
            max_batch=cfg.max_batch, max_delay=cfg.max_delay, weights=cfg.tenant_weights)
        self._admission = AdmissionController(
            max_pending=cfg.max_pending, weights=cfg.tenant_weights)
        budget = cfg.memsize * max(cfg.nprocs, 1)
        self._gauge = BackpressureGauge(
            high_bytes=int(budget * cfg.high_watermark),
            low_bytes=int(budget * cfg.low_watermark),
        )
        self._session: ResidentBlastSession | None = None
        self._futures: dict[int, QueryFuture] = {}
        self._tenant_pending: dict[str, int] = {}
        self._inflight: dict[int, tuple[Submission, ...]] = {}
        self._next_seq = 0
        self._next_job_id = 0
        self._closed = False
        self._bytes_per_query = 0.0
        self._lock = threading.RLock()
        self._pump_thread: threading.Thread | None = None
        self._pump_stop = threading.Event()
        self.stats = {
            "submitted": 0, "delivered": 0, "batches": 0, "rejected": 0,
            "restarts": 0, "degraded_batches": 0, "backpressure_engages": 0,
            "resubmitted": 0,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self, pump_interval: float | None = None) -> "QueryService":
        """Bring the rank session up; optionally run a background pump."""
        if self._session is None:
            self._session = self._factory()
        if pump_interval is not None:
            self._pump_stop.clear()
            self._pump_thread = threading.Thread(
                target=self._pump_forever, args=(pump_interval,),
                name="serve-pump", daemon=True)
            self._pump_thread.start()
        return self

    def _pump_forever(self, interval: float) -> None:
        while not self._pump_stop.wait(interval):
            try:
                self.pump()
            except BaseException as exc:  # noqa: BLE001 - nobody above to catch
                # An exception escaping pump() is terminal (e.g. restarts
                # exceeded max_restarts).  Swallowing it would leave every
                # outstanding future hanging until caller timeout with no
                # indication of failure — fail them all loudly instead.
                self._abort_service(exc)
                return

    def _abort_service(self, exc: BaseException) -> None:
        """Terminal failure: stop intake and reject everything outstanding."""
        with self._lock:
            self._closed = True
            for fut in list(self._futures.values()):
                fut._reject(exc)
            self._futures.clear()
            self._inflight.clear()
            self._tenant_pending.clear()

    def close(self, timeout: float = 60.0) -> None:
        """Stop intake, shut the session down, reject unresolved futures."""
        self._closed = True
        # Stop the pump thread before taking the lock: it may be inside a
        # pump() holding the lock right now, and it must never find the
        # lock held by close() for the whole session teardown.
        if self._pump_thread is not None:
            self._pump_stop.set()
            self._pump_thread.join(timeout=5.0)
            self._pump_thread = None
        with self._lock:
            if self._session is not None:
                try:
                    if not self._session.failed:
                        self._session.stop(timeout)
                except BaseException:
                    pass
                self._session = None
            for fut in list(self._futures.values()):
                fut._reject(AdmissionError("closed", "service shut down"))
            self._futures.clear()
            self._inflight.clear()
            self._tenant_pending.clear()

    # -- intake --------------------------------------------------------

    def _unresolved(self) -> int:
        return len(self._futures)

    def _estimate_bytes(self) -> int:
        return int(self._unresolved() * self._bytes_per_query)

    def submit(
        self,
        query: SeqRecord,
        tenant: str = "default",
        deadline: float | None = None,
    ) -> QueryFuture:
        """Admit one query; returns its future or raises AdmissionError.

        ``deadline`` is an absolute time on the service clock by which the
        query must be flushed into a batch (it bounds queueing delay, not
        total completion time).
        """
        with self._lock:
            now = self._clock()
            if self._closed:
                self.stats["rejected"] += 1
                raise AdmissionError("closed", "service is shut down")
            if self._gauge.engaged:
                self.stats["rejected"] += 1
                raise AdmissionError(
                    "backpressure",
                    f"KV working-set estimate {self._gauge.last_estimate} >= "
                    f"{self._gauge.high_bytes}")
            try:
                self._admission.try_admit(
                    tenant, self._unresolved(), self._tenant_pending.get(tenant, 0))
            except AdmissionError:
                self.stats["rejected"] += 1
                raise
            sub = Submission(
                seq=self._next_seq, query=query, tenant=tenant,
                submitted_at=now, deadline=deadline)
            self._next_seq += 1
            fut = QueryFuture(sub)
            self._futures[sub.seq] = fut
            self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + 1
            self._coalescer.add(sub, now)
            self.stats["submitted"] += 1
            if self._tracer.enabled:
                self._tracer.instant(
                    "serve.submit", cat="serve", seq=sub.seq, tenant=tenant,
                    query=query.id, pending=self._unresolved())
            self._update_gauge()
            return fut

    def _update_gauge(self) -> None:
        transition = self._gauge.update(self._estimate_bytes())
        if transition is not None:
            if transition == "engage":
                self.stats["backpressure_engages"] += 1
            if self._tracer.enabled:
                self._tracer.instant(
                    "serve.backpressure", cat="serve", state=transition,
                    estimate_bytes=self._gauge.last_estimate,
                    high=self._gauge.high_bytes, low=self._gauge.low_bytes)

    # -- scheduling ----------------------------------------------------

    def _ensure_session(self) -> ResidentBlastSession:
        if self._session is None:
            self._session = self._factory()
        if self._session.failed:
            self._restart()
        assert self._session is not None
        return self._session

    def _restart(self) -> None:
        """Replace a dead session and resubmit unresolved in-flight work."""
        assert self._session is not None
        failure = self._session.failure
        self.stats["restarts"] += 1
        if self.stats["restarts"] > self.max_restarts:
            raise RuntimeError(
                f"session failed {self.stats['restarts']} times; giving up"
            ) from failure
        if self._tracer.enabled:
            self._tracer.instant(
                "serve.restart", cat="serve", error=repr(failure),
                inflight=len(self._inflight))
        self._session = self._factory()
        pending = list(self._inflight.items())
        self._inflight.clear()
        for _, submissions in pending:
            unresolved = tuple(
                s for s in submissions
                if s.seq in self._futures and not self._futures[s.seq].done())
            if unresolved:
                self.stats["resubmitted"] += len(unresolved)
                self._dispatch_submissions(unresolved, reason="resubmit")

    def _dispatch_submissions(self, submissions: tuple[Submission, ...], reason: str) -> None:
        job_id = self._next_job_id
        self._next_job_id += 1
        self._inflight[job_id] = submissions
        try:
            self._session.submit(
                BlockJob(job_id=job_id, queries=tuple(s.query for s in submissions)))
        except RuntimeError:
            # Session died between the failure check and the enqueue: the
            # batch stays in _inflight and the next pump's restart
            # resubmits its unresolved queries.
            if not self._session.closed:
                raise
            return
        self.stats["batches"] += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "serve.batch", cat="serve", job_id=job_id,
                size=len(submissions), reason=reason)

    def _dispatch(self, batch: QueryBatch) -> None:
        self._dispatch_submissions(batch.submissions, reason=batch.reason)

    def _deliver(self, env: BlockResult) -> None:
        submissions = self._inflight.pop(env.job_id, ())
        if env.degraded:
            self.stats["degraded_batches"] += 1
        if env.kv_bytes and submissions:
            per_query = env.kv_bytes / len(submissions)
            # EWMA so one unusual batch does not whipsaw the gauge.
            self._bytes_per_query = (
                per_query if self._bytes_per_query == 0.0
                else 0.5 * self._bytes_per_query + 0.5 * per_query)
        for sub in submissions:
            fut = self._futures.pop(sub.seq, None)
            if fut is None or fut.done():
                continue
            qid = sub.query.id
            if self._ledger is not None and self._ledger.delivered(qid):
                data = self._ledger.read(qid)
            else:
                data = env.results.get(qid, b"")
                if self._ledger is not None:
                    self._ledger.record(qid, data)
            fut._resolve(data)
            self.stats["delivered"] += 1
            left = self._tenant_pending.get(sub.tenant, 1) - 1
            if left <= 0:
                self._tenant_pending.pop(sub.tenant, None)
            else:
                self._tenant_pending[sub.tenant] = left
        self._update_gauge()

    def pump(self, now: float | None = None, wait: float = 0.0) -> int:
        """One scheduling step: dispatch due batches, drain results.

        Returns the number of result envelopes delivered.  ``wait`` bounds
        a single blocking poll on the result queue (0 = non-blocking) — the
        drain loop uses it to avoid spinning.
        """
        with self._lock:
            if self._closed:
                return 0
            now = self._clock() if now is None else now
            session = self._ensure_session()
            for batch in self._coalescer.poll(now):
                self._dispatch(batch)
            delivered = 0
            env = session.poll_result(timeout=wait)
            while env is not None:
                self._deliver(env)
                delivered += 1
                env = session.poll_result(timeout=0.0)
            if session.failed:
                self._restart()
            return delivered

    def flush(self, now: float | None = None) -> None:
        """Force everything pending in the coalescer out as batches now."""
        with self._lock:
            if self._closed:
                return
            now = self._clock() if now is None else now
            self._ensure_session()
            for batch in self._coalescer.flush(now):
                self._dispatch(batch)

    def drain(self, timeout: float = 120.0) -> None:
        """Flush and pump until every admitted query has resolved."""
        deadline = time.monotonic() + timeout
        self.flush()
        while self._futures:
            self.pump(wait=0.05)
            if self._coalescer.pending:
                self.flush()
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(self._futures)} queries unresolved after {timeout}s")
