"""Intake control for the always-on service: fairness, quotas, backpressure.

Three independent pure mechanisms, composed by the service front door:

- :class:`FairQueue` — stride-scheduled weighted fair ordering across
  tenants, so the coalescer drains a saturating tenant no faster than its
  weight share allows.
- :class:`AdmissionController` — bounded intake: a global pending cap plus
  a per-tenant quota proportional to weight (with a burst allowance), so
  one tenant cannot fill the whole queue.
- :class:`BackpressureGauge` — a high/low watermark hysteresis over the
  estimated columnar-KV working set: intake stops when the estimate
  approaches the ranks' ``memsize`` budget and resumes only after it falls
  below the low watermark (no flapping at the threshold).

None of these reads a clock or sleeps; the service drives them with
explicit state, which keeps the unit suite on virtual time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

__all__ = [
    "AdmissionError",
    "FairQueue",
    "AdmissionController",
    "BackpressureGauge",
]


class AdmissionError(RuntimeError):
    """A submission was refused at the front door; ``reason`` says why.

    Reasons: ``"capacity"`` (global pending cap), ``"tenant-quota"``
    (per-tenant share exhausted), ``"backpressure"`` (KV working set near
    the memory budget), ``"closed"`` (service shutting down).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"submission refused ({reason})" + (f": {detail}" if detail else ""))
        self.reason = reason


class FairQueue:
    """Weighted fair queue over tenants (stride scheduling).

    Each tenant holds a FIFO of items and a running ``pass`` value; a pop
    drains the tenant with the smallest pass and advances it by
    ``1 / weight``, so over time tenants are served proportionally to their
    weights.  Ties break on tenant name, making the pop order fully
    deterministic — a property the virtual-time tests pin down.  A tenant
    absent from the weight table gets weight 1.0.
    """

    def __init__(self, weights: dict[str, float] | None = None) -> None:
        self._weights = dict(weights or {})
        for tenant, w in self._weights.items():
            if w <= 0:
                raise ValueError(f"tenant {tenant!r} weight must be > 0, got {w}")
        self._queues: dict[str, deque] = {}
        self._pass: dict[str, float] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def weight(self, tenant: str) -> float:
        """The tenant's configured weight (1.0 when unconfigured)."""
        return self._weights.get(tenant, 1.0)

    def pending(self, tenant: str) -> int:
        """Items currently queued for one tenant."""
        q = self._queues.get(tenant)
        return len(q) if q else 0

    def push(self, tenant: str, item: Any) -> None:
        """Append an item to the tenant's FIFO."""
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
            # A newly active tenant starts at the current minimum pass so it
            # neither jumps the line nor pays for time it was idle.
            live = [self._pass[t] for t, qq in self._queues.items() if qq and t != tenant]
            self._pass[tenant] = min(live) if live else self._pass.get(tenant, 0.0)
        elif not q:
            live = [self._pass[t] for t, qq in self._queues.items() if qq and t != tenant]
            if live:
                self._pass[tenant] = max(self._pass.get(tenant, 0.0), min(live))
        q.append(item)
        self._len += 1

    def push_front(self, tenant: str, item: Any) -> None:
        """Return an item to the head of its tenant's FIFO (undo a pop)."""
        q = self._queues.setdefault(tenant, deque())
        self._pass.setdefault(tenant, 0.0)
        q.appendleft(item)
        self._len += 1

    def pop(self) -> Any:
        """Remove and return the next item in weighted-fair order."""
        if self._len == 0:
            raise IndexError("pop from empty FairQueue")
        tenant = min(
            (t for t, q in self._queues.items() if q),
            key=lambda t: (self._pass[t], t),
        )
        self._pass[tenant] += 1.0 / self.weight(tenant)
        self._len -= 1
        return self._queues[tenant].popleft()


@dataclass
class AdmissionController:
    """Bounded intake: global capacity plus per-tenant weighted quotas.

    The per-tenant quota is ``burst x (weight / total weight) x
    max_pending`` (at least 1), with tenants not in the weight table
    counted at weight 1.0 against the weights actually seen so far.  The
    burst factor lets a lone active tenant use more than its long-run
    share; the global cap still bounds the sum.
    """

    max_pending: int = 256
    weights: dict[str, float] | None = None
    burst: float = 2.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1.0, got {self.burst}")
        self._known = dict(self.weights or {})

    def _quota(self, tenant: str) -> int:
        self._known.setdefault(tenant, 1.0)
        total = sum(self._known.values())
        share = self._known[tenant] / total if total > 0 else 1.0
        return max(1, int(self.burst * share * self.max_pending))

    def try_admit(self, tenant: str, pending_total: int, pending_tenant: int) -> None:
        """Raise :class:`AdmissionError` if this submission must be refused.

        ``pending_total`` / ``pending_tenant`` count submissions already
        accepted but not yet resolved (queued or in flight).
        """
        if pending_total >= self.max_pending:
            raise AdmissionError(
                "capacity", f"{pending_total}/{self.max_pending} pending")
        quota = self._quota(tenant)
        if pending_tenant >= quota:
            raise AdmissionError(
                "tenant-quota", f"tenant {tenant!r} at {pending_tenant}/{quota}")


class BackpressureGauge:
    """High/low watermark hysteresis over a working-set byte estimate.

    ``update(estimate)`` returns ``"engage"`` when the estimate crosses the
    high watermark from below, ``"release"`` when it falls back under the
    low watermark while engaged, and ``None`` otherwise.  The gap between
    the watermarks prevents flapping when the estimate hovers near the
    limit.
    """

    def __init__(self, high_bytes: int, low_bytes: int) -> None:
        if high_bytes <= 0 or low_bytes <= 0 or low_bytes > high_bytes:
            raise ValueError(
                f"need 0 < low_bytes <= high_bytes, got {low_bytes}/{high_bytes}")
        self.high_bytes = high_bytes
        self.low_bytes = low_bytes
        self.engaged = False
        self.engage_count = 0
        self.last_estimate = 0

    def update(self, estimate_bytes: int) -> str | None:
        """Feed a fresh estimate; return the transition it caused, if any."""
        self.last_estimate = int(estimate_bytes)
        if not self.engaged and estimate_bytes >= self.high_bytes:
            self.engaged = True
            self.engage_count += 1
            return "engage"
        if self.engaged and estimate_bytes < self.low_bytes:
            self.engaged = False
            return "release"
        return None
