"""Message router shared by all ranks of an in-process MPI job.

The network owns one mailbox per rank.  A message is matched by
``(context, source, tag)`` with MPI's non-overtaking guarantee: among the
messages a rank has posted to the same destination with a matching tag and
context, the earliest-posted one is received first (mailboxes are
arrival-ordered lists and matching scans from the front).

Contexts isolate communicators: collectives run in the same context as the
communicator they belong to, and split communicators get fresh contexts, so
traffic can never leak across communicators even with wildcard receives.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mpi.exceptions import AbortError, DeadlockError, MPIError
from repro.mpi.ops import ANY_SOURCE, ANY_TAG

__all__ = ["Network", "Message"]


@dataclass
class Message:
    """An in-flight message (payload already isolated by the sender)."""

    src: int
    dst: int
    tag: int
    context: int
    payload: Any
    seq: int = 0


class Network:
    """Shared state of one SPMD job: mailboxes, contexts, abort flag."""

    #: Default timeout (seconds) for any single blocking operation. Generous
    #: enough for slow CI machines, small enough that a deadlocked test fails
    #: rather than hangs.
    DEFAULT_OP_TIMEOUT = 120.0

    def __init__(self, nprocs: int, op_timeout: float | None = None) -> None:
        if nprocs < 1:
            raise MPIError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.op_timeout = op_timeout if op_timeout is not None else self.DEFAULT_OP_TIMEOUT
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(nprocs)]
        self._mailboxes: list[list[Message]] = [[] for _ in range(nprocs)]
        self._seq = itertools.count()
        self._contexts: dict[tuple, int] = {}
        self._next_context = itertools.count(1)
        self._aborted: Optional[BaseException] = None

    # ------------------------------------------------------------------ abort

    def abort(self, exc: BaseException) -> None:
        """Mark the job failed; wake every blocked rank with AbortError."""
        with self._lock:
            if self._aborted is None:
                self._aborted = exc
            for cond in self._conds:
                cond.notify_all()

    @property
    def aborted(self) -> Optional[BaseException]:
        return self._aborted

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise AbortError(f"another rank failed: {self._aborted!r}")

    # ----------------------------------------------------------------- routing

    def post(self, msg: Message) -> None:
        """Deliver ``msg`` to the destination mailbox (eager buffered send)."""
        if not (0 <= msg.dst < self.nprocs):
            raise MPIError(f"invalid destination rank {msg.dst} (nprocs={self.nprocs})")
        with self._lock:
            self._check_abort()
            msg.seq = next(self._seq)
            self._mailboxes[msg.dst].append(msg)
            self._conds[msg.dst].notify_all()

    @staticmethod
    def _matches(msg: Message, context: int, source: int, tag: int) -> bool:
        if msg.context != context:
            return False
        if source != ANY_SOURCE and msg.src != source:
            return False
        if tag != ANY_TAG and msg.tag != tag:
            return False
        return True

    def probe(self, dst: int, context: int, source: int, tag: int) -> Optional[Message]:
        """Non-destructively return the first matching message, or ``None``."""
        with self._lock:
            self._check_abort()
            for msg in self._mailboxes[dst]:
                if self._matches(msg, context, source, tag):
                    return msg
        return None

    def match(
        self,
        dst: int,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        block: bool = True,
    ) -> Optional[Message]:
        """Remove and return the first matching message for rank ``dst``.

        Blocks until a match arrives.  Raises :class:`DeadlockError` on
        timeout and :class:`AbortError` if the job was aborted while waiting.
        With ``block=False`` returns ``None`` immediately when nothing
        matches.
        """
        deadline_budget = self.op_timeout if timeout is None else timeout
        cond = self._conds[dst]
        with self._lock:
            while True:
                self._check_abort()
                box = self._mailboxes[dst]
                for i, msg in enumerate(box):
                    if self._matches(msg, context, source, tag):
                        del box[i]
                        return msg
                if not block:
                    return None
                if not cond.wait(timeout=deadline_budget):
                    raise DeadlockError(
                        f"rank {dst} timed out after {deadline_budget:.0f}s waiting for "
                        f"(source={source}, tag={tag}, context={context})"
                    )

    # ---------------------------------------------------------------- contexts

    def allocate_context(self, key: tuple) -> int:
        """Return the context id for ``key``, allocating it on first use.

        All members of a collective context-creating call (e.g. ``split``)
        compute the same ``key``, so they agree on the id without extra
        synchronisation.
        """
        with self._lock:
            if key not in self._contexts:
                self._contexts[key] = next(self._next_context)
            return self._contexts[key]

    # ------------------------------------------------------------------ stats

    def pending_count(self, dst: int | None = None) -> int:
        """Number of undelivered messages (for tests / leak detection)."""
        with self._lock:
            if dst is not None:
                return len(self._mailboxes[dst])
            return sum(len(b) for b in self._mailboxes)
