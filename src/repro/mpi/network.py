"""Message router shared by all ranks of an in-process MPI job.

The network owns one mailbox per rank.  A message is matched by
``(context, source, tag)`` with MPI's non-overtaking guarantee: among the
messages a rank has posted to the same destination with a matching tag and
context, the earliest-posted one is received first (mailboxes are
arrival-ordered lists and matching scans from the front).

Contexts isolate communicators: collectives run in the same context as the
communicator they belong to, and split communicators get fresh contexts, so
traffic can never leak across communicators even with wildcard receives.

The network is also where faults happen.  With a
:class:`~repro.mpi.faultplan.FaultPlan` attached, every MPI call consults the
plan: a scheduled crash turns the acting rank's call into
:class:`~repro.mpi.exceptions.RankFailure` (and every later call by that rank
too), scheduled message faults drop/duplicate/delay individual posts, and
stalls sleep the acting rank.  Each call also stamps a per-rank heartbeat the
supervisor reads to name stalled ranks.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.mpi.exceptions import AbortError, DeadlockError, MPIError, RankFailure
from repro.mpi.faultplan import (
    CrashRank,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    FaultPlan,
    StallRank,
)
from repro.mpi.ops import ANY_SOURCE, ANY_TAG
from repro.mpi.transport import TransportEndpoint, matches
from repro.obs.trace import NULL_TRACER

__all__ = ["Network", "Message"]


@dataclass
class Message:
    """An in-flight message (payload already isolated by the sender)."""

    src: int
    dst: int
    tag: int
    context: int
    payload: Any
    seq: int = 0
    #: monotonic time before which the message is invisible to receivers
    #: (0 = deliverable immediately; used by injected delivery delays)
    not_before: float = 0.0


class Network(TransportEndpoint):
    """Shared state of one SPMD job: mailboxes, contexts, abort flag, faults.

    This is the *thread* transport endpoint: one shared object, ranks are
    threads, everything behind one lock.  See
    :mod:`repro.mpi.transport` for the contract and
    :class:`repro.mpi.process.ProcessNetwork` for the per-process twin.
    """

    #: Default timeout (seconds) for any single blocking operation. Generous
    #: enough for slow CI machines, small enough that a deadlocked test fails
    #: rather than hangs.
    DEFAULT_OP_TIMEOUT = TransportEndpoint.DEFAULT_OP_TIMEOUT

    def __init__(
        self,
        nprocs: int,
        op_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        trace=None,
    ) -> None:
        if nprocs < 1:
            raise MPIError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.op_timeout = op_timeout if op_timeout is not None else self.DEFAULT_OP_TIMEOUT
        self.fault_plan = fault_plan
        if trace is not None:
            self._tracers = [trace.tracer(rank) for rank in range(nprocs)]
        else:
            self._tracers = [NULL_TRACER] * nprocs
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(nprocs)]
        self._mailboxes: list[list[Message]] = [[] for _ in range(nprocs)]
        self._seq = itertools.count()
        self._contexts: dict[tuple, int] = {}
        self._next_context = itertools.count(1)
        self._aborted: Optional[BaseException] = None
        self._op_counts = [0] * nprocs
        self._send_counts = [0] * nprocs
        self._heartbeats = [time.monotonic()] * nprocs
        self._crashed = [False] * nprocs
        self._dead = [False] * nprocs

    # ------------------------------------------------------------------ abort

    def abort(self, exc: BaseException) -> None:
        """Mark the job failed; wake every blocked rank with AbortError."""
        with self._lock:
            if self._aborted is None:
                self._aborted = exc
            for cond in self._conds:
                cond.notify_all()

    @property
    def aborted(self) -> Optional[BaseException]:
        return self._aborted

    # ------------------------------------------------------------- dead ranks

    def mark_dead(self, rank: int) -> None:
        """Record that ``rank`` left the job in degraded mode (no abort).

        Wakes every blocked rank so a master polling for requests can run
        its death sweep promptly.
        """
        if not (0 <= rank < self.nprocs):
            return
        with self._lock:
            self._dead[rank] = True
            for cond in self._conds:
                cond.notify_all()

    def dead_ranks(self) -> frozenset[int]:
        """Global ranks that declared themselves lost (degraded mode)."""
        with self._lock:
            return frozenset(r for r, d in enumerate(self._dead) if d)

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise AbortError(f"another rank failed: {self._aborted!r}")

    # ----------------------------------------------------------------- tracing

    def tracer_for(self, rank: int):
        """The tracer owned by ``rank`` (the shared null tracer when off)."""
        if 0 <= rank < self.nprocs:
            return self._tracers[rank]
        return NULL_TRACER

    # ------------------------------------------------------------------- arena

    # Threads share one address space: payloads already cross as zero-copy
    # frozen views, so there is no arena here — the contract's no-op
    # passthrough (``arena_enabled = False``, empty ``arena_stats()``) is
    # inherited from TransportEndpoint and restated for discoverability.
    arena_enabled = False

    def arena_stats(self) -> dict:
        return {}

    # ------------------------------------------------------------------ faults

    def _pre_op(self, rank: int) -> None:
        """Heartbeat + fault hook at the start of every MPI call by ``rank``.

        Must be called *outside* the network lock (it takes the lock itself,
        and an injected stall sleeps after releasing it).
        """
        if not (0 <= rank < self.nprocs):
            return
        stall = 0.0
        failure: RankFailure | None = None
        fired: list[tuple[str, dict]] = []
        with self._lock:
            self._heartbeats[rank] = time.monotonic()
            self._op_counts[rank] += 1
            op_index = self._op_counts[rank]
            if self._crashed[rank]:
                failure = RankFailure(rank, op_index)
            elif self.fault_plan is not None:
                for ev in self.fault_plan.op_event(rank, op_index):
                    if isinstance(ev, CrashRank):
                        self._crashed[rank] = True
                        failure = RankFailure(rank, op_index)
                        fired.append(("fault.crash", {"op_index": op_index}))
                    elif isinstance(ev, StallRank):
                        stall += ev.seconds
                        fired.append(("fault.stall",
                                      {"op_index": op_index,
                                       "seconds": ev.seconds}))
        if fired:
            trc = self._tracers[rank]
            if trc.enabled:
                for name, attrs in fired:
                    trc.instant(name, cat="fault", **attrs)
        if stall > 0.0 and failure is None:
            time.sleep(stall)
        if failure is not None:
            raise failure

    def heartbeat_ages(self) -> list[float]:
        """Seconds since each rank's last MPI call (supervisor telemetry)."""
        now = time.monotonic()
        with self._lock:
            return [now - hb for hb in self._heartbeats]

    def op_count(self, rank: int) -> int:
        """MPI calls made by ``rank`` so far (deterministic per program)."""
        with self._lock:
            return self._op_counts[rank]

    # ----------------------------------------------------------------- routing

    def post(self, msg: Message, acting: int | None = None) -> None:
        """Deliver ``msg`` to the destination mailbox (eager buffered send).

        ``acting`` is the sender's *global* rank for fault accounting;
        ``msg.src`` can be a communicator-local rank and defaults in.
        """
        if not (0 <= msg.dst < self.nprocs):
            raise MPIError(f"invalid destination rank {msg.dst} (nprocs={self.nprocs})")
        sender = msg.src if acting is None else acting
        self._pre_op(sender)
        trc = self.tracer_for(sender)
        duplicate = False
        dropped = False
        delayed = 0.0
        with self._lock:
            self._check_abort()
            if self.fault_plan is not None and 0 <= sender < self.nprocs:
                self._send_counts[sender] += 1
                ev = self.fault_plan.send_event(sender, self._send_counts[sender])
                if isinstance(ev, DropMessage):
                    dropped = True  # silently lost on the wire
                elif isinstance(ev, DuplicateMessage):
                    duplicate = True
                elif isinstance(ev, DelayMessage):
                    msg.not_before = time.monotonic() + ev.seconds
                    delayed = ev.seconds
            if not dropped:
                msg.seq = next(self._seq)
                self._mailboxes[msg.dst].append(msg)
                if duplicate:
                    copy = Message(
                        src=msg.src,
                        dst=msg.dst,
                        tag=msg.tag,
                        context=msg.context,
                        payload=msg.payload,
                        seq=next(self._seq),
                        not_before=msg.not_before,
                    )
                    self._mailboxes[msg.dst].append(copy)
                self._conds[msg.dst].notify_all()
        if trc.enabled:
            if dropped:
                trc.instant("fault.drop", cat="fault", dst=msg.dst, tag=msg.tag)
                return
            trc.instant("mpi.send", cat="mpi", dst=msg.dst, tag=msg.tag,
                        context=msg.context)
            if duplicate:
                trc.instant("fault.duplicate", cat="fault", dst=msg.dst,
                            tag=msg.tag)
            if delayed:
                trc.instant("fault.delay", cat="fault", dst=msg.dst,
                            tag=msg.tag, seconds=delayed)

    # Matching logic lives in the transport module so every backend runs
    # the exact same predicate the thread-backend tests pin down.
    _matches = staticmethod(matches)

    def probe(self, dst: int, context: int, source: int, tag: int) -> Optional[Message]:
        """Non-destructively return the first deliverable match, or ``None``."""
        with self._lock:
            self._check_abort()
            now = time.monotonic()
            for msg in self._mailboxes[dst]:
                if self._matches(msg, context, source, tag) and msg.not_before <= now:
                    return msg
        return None

    def match(
        self,
        dst: int,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        block: bool = True,
    ) -> Optional[Message]:
        """Remove and return the first matching message for rank ``dst``.

        Blocks until a match arrives.  Raises :class:`DeadlockError` when the
        total wait exceeds the budget and :class:`AbortError` if the job was
        aborted while waiting.  With ``block=False`` returns ``None``
        immediately when nothing matches.  Messages whose ``not_before`` lies
        in the future (injected delivery delays) are held back until due.
        """
        budget = self.op_timeout if timeout is None else timeout
        self._pre_op(dst)
        deadline = time.monotonic() + budget
        cond = self._conds[dst]
        with self._lock:
            while True:
                self._check_abort()
                now = time.monotonic()
                box = self._mailboxes[dst]
                next_ready: float | None = None
                for i, msg in enumerate(box):
                    if self._matches(msg, context, source, tag):
                        if msg.not_before <= now:
                            del box[i]
                            trc = self._tracers[dst]
                            if trc.enabled:
                                trc.instant("mpi.recv", cat="mpi",
                                            src=msg.src, tag=msg.tag,
                                            context=msg.context)
                            return msg
                        if next_ready is None or msg.not_before < next_ready:
                            next_ready = msg.not_before
                if not block:
                    return None
                remaining = deadline - now
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {dst} timed out after {budget:.0f}s waiting for "
                        f"(source={source}, tag={tag}, context={context})"
                    )
                wait_for = remaining
                if next_ready is not None:
                    wait_for = min(wait_for, max(next_ready - now, 0.001))
                cond.wait(timeout=wait_for)

    # ---------------------------------------------------------------- contexts

    def allocate_context(self, key: tuple) -> int:
        """Return the context id for ``key``, allocating it on first use.

        All members of a collective context-creating call (e.g. ``split``)
        compute the same ``key``, so they agree on the id without extra
        synchronisation.
        """
        with self._lock:
            if key not in self._contexts:
                self._contexts[key] = next(self._next_context)
            return self._contexts[key]

    # ------------------------------------------------------------------ stats

    def pending_count(self, dst: int | None = None) -> int:
        """Number of undelivered messages (for tests / leak detection)."""
        with self._lock:
            if dst is not None:
                return len(self._mailboxes[dst])
            return sum(len(b) for b in self._mailboxes)
