"""MPIPool: an mpi4py.futures-style task pool on the in-process runtime.

The glide-in discussion in the paper is really about *farming serial tasks
from inside an MPI job* — which is exactly what an MPI worker pool does
without any external scheduler.  This pool mirrors ``MPIPoolExecutor``'s
shape: rank 0 becomes the submitting side, the remaining ranks serve tasks
until shutdown::

    def main(comm):
        with MPIPool(comm) as pool:
            if pool is not None:                      # rank 0 only
                squares = pool.map(lambda x: x * x, range(100))
                return squares
            return None                               # workers served

Tasks are dispatched first-come-first-served (dynamic load balancing, like
mrblast's master/worker map), exceptions propagate to the caller, and
``map`` preserves input order regardless of completion order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Optional

from repro.mpi.comm import Comm
from repro.mpi.ops import ANY_SOURCE, Status

__all__ = ["MPIPool"]

_TAG_TASK = 201
_TAG_RESULT = 202
_TAG_READY = 203

_SHUTDOWN = "__pool_shutdown__"


class MPIPool:
    """Master/worker task pool over an existing communicator.

    Entering the context returns the pool on rank 0 and ``None`` on worker
    ranks — workers block inside, serving tasks, until rank 0 leaves the
    context.  With a single rank the pool degrades to local execution.
    """

    def __init__(self, comm: Comm) -> None:
        self.comm = comm.dup()
        self._is_master = comm.rank == 0
        self._entered = False
        self._closed = False

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> Optional["MPIPool"]:
        self._entered = True
        if self._is_master or self.comm.size == 1:
            return self
        self._serve()
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._is_master:
            self.shutdown()

    def shutdown(self) -> None:
        if self._closed or not self._is_master:
            return
        self._closed = True
        if self.comm.size > 1:
            for worker in range(1, self.comm.size):
                self.comm.send((_SHUTDOWN, None, None), dest=worker, tag=_TAG_TASK)

    # --------------------------------------------------------------- workers

    def _serve(self) -> None:
        while True:
            task = self.comm.recv(source=0, tag=_TAG_TASK)
            kind, task_id, payload = task
            if kind == _SHUTDOWN:
                return
            fn, args = payload
            try:
                result = (True, fn(*args))
            except BaseException as exc:  # noqa: BLE001 - report to master
                result = (False, exc)
            self.comm.send((task_id, result), dest=0, tag=_TAG_RESULT)

    # ---------------------------------------------------------------- master

    def map(self, fn: Callable, iterable: Iterable, *more: Iterable) -> list:
        """Apply ``fn`` over items with dynamic dispatch; ordered results.

        With multiple iterables, ``fn`` is called with one argument from
        each (like builtin ``map``).  The first worker exception is
        re-raised after the in-flight tasks drain.
        """
        if not self._entered:
            raise RuntimeError("use MPIPool as a context manager")
        if not self._is_master:
            raise RuntimeError("only rank 0 may submit work")
        if self._closed:
            raise RuntimeError("pool already shut down")
        tasks = deque(enumerate(zip(iterable, *more)))
        n_tasks = len(tasks)
        results: list[Any] = [None] * n_tasks

        if self.comm.size == 1:
            for task_id, args in tasks:
                results[task_id] = fn(*args)
            return results

        failure: Optional[BaseException] = None
        idle = deque(range(1, self.comm.size))
        outstanding = 0
        while tasks or outstanding:
            while tasks and idle:
                task_id, args = tasks.popleft()
                self.comm.send(
                    ("task", task_id, (fn, tuple(args))), dest=idle.popleft(), tag=_TAG_TASK
                )
                outstanding += 1
            st = Status()
            task_id, (ok, value) = self.comm.recv(
                source=ANY_SOURCE, tag=_TAG_RESULT, status=st
            )
            outstanding -= 1
            idle.append(st.Get_source())
            if ok:
                results[task_id] = value
            elif failure is None:
                failure = value
                tasks.clear()  # stop submitting; drain what's in flight
        if failure is not None:
            raise failure
        return results

    def starmap(self, fn: Callable, iterable: Iterable[tuple]) -> list:
        """Like :meth:`map` but items are pre-formed argument tuples."""
        if not self._is_master:
            raise RuntimeError("only rank 0 may submit work")
        items = [tuple(args) for args in iterable]
        return self.map(lambda *a: fn(*a), *zip(*items)) if items else []
