"""Communicator: point-to-point + collectives over the in-process network.

Collectives use textbook algorithms (binomial-tree bcast/reduce,
dissemination barrier, linear gather/scatter) implemented *on top of* the
point-to-point layer, exactly as a real MPI library structures them.  All
collective traffic runs with negative tags, which are reserved: user
point-to-point tags must be ``>= 0``, so collectives and user traffic can
never match each other even inside the same context.
"""

from __future__ import annotations

import copy
import functools
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.mpi.exceptions import MPIError
from repro.mpi.network import Message, Network
from repro.mpi.ops import ANY_SOURCE, ANY_TAG, SUM, Op, Status

__all__ = ["Comm", "Request"]


def _traced_collective(name: str) -> Callable:
    """Wrap a primitive collective in a ``mpi.<name>`` span.

    Only primitives are wrapped (composites like ``allreduce`` reuse them,
    so wrapping both would double-count).  With tracing off the wrapper
    costs one attribute check.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            trc = self._tracer
            if not trc.enabled:
                return fn(self, *args, **kwargs)
            sid = trc.begin(f"mpi.{name}", cat="mpi")
            try:
                return fn(self, *args, **kwargs)
            finally:
                trc.end(sid)

        return wrapper

    return deco

# Reserved (negative) tags for collective plumbing.
_TAG_BCAST = -2
_TAG_REDUCE = -3
_TAG_BARRIER = -4
_TAG_GATHER = -5
_TAG_SCATTER = -6
_TAG_ALLTOALL = -7
_TAG_SCAN = -8


def _isolate(obj: Any) -> Any:
    """Copy a payload so sender/receiver can never alias mutable state.

    Immutable builtins pass through untouched; numpy arrays are copied
    cheaply; everything else takes the deepcopy path (mirrors the pickle
    round-trip a real MPI send implies).
    """
    if obj is None or isinstance(obj, (int, float, bool, str, bytes, frozenset)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple) and all(
        o is None or isinstance(o, (int, float, bool, str, bytes)) for o in obj
    ):
        return obj
    return copy.deepcopy(obj)


def _wire(obj: Any) -> Any:
    """Isolation with a buffer-protocol fast path for array payloads.

    MPI buffer semantics put the aliasing burden on the *caller*: a buffer
    handed to a send must not be mutated until the operation completes.
    Under that contract a bare ndarray — or a container of ndarrays, the
    columnar page wire format — needs no defensive copy at all: the thread
    transport passes a read-only *view* (receivers can read, nobody can
    write), and the process transport serialises straight out of the
    caller's buffer into the shared arena.  Collectives double as
    synchronisation fences, so the SOM epoch loop and the shuffle pipeline
    satisfy the contract naturally.

    One extra nesting level is honoured — a sequence whose items are
    ``None``, arrays, or sequences of arrays, which is exactly what
    allgather's internal bcast-of-a-gathered-list and the paged columnar
    gather produce — so those stay no-copy (and arena-frameable) too.

    Everything else keeps the conservative :func:`_isolate` deep copy.
    """
    if isinstance(obj, np.ndarray):
        view = obj.view()
        view.setflags(write=False)
        return view
    if isinstance(obj, (tuple, list)) and obj:
        if all(isinstance(a, np.ndarray) for a in obj):
            # A fresh container (so receivers can't reorder the sender's
            # list) holding frozen views.
            frozen = []
            for a in obj:
                view = a.view()
                view.setflags(write=False)
                frozen.append(view)
            return tuple(frozen) if isinstance(obj, tuple) else frozen
        if all(
            o is None
            or isinstance(o, np.ndarray)
            or (isinstance(o, (tuple, list)) and o
                and all(isinstance(a, np.ndarray) for a in o))
            for o in obj
        ):
            nested = [None if o is None else _wire(o) for o in obj]
            return tuple(nested) if isinstance(obj, tuple) else nested
    return _isolate(obj)


def _payload_count(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return int(obj.size)
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    return 1


class Request:
    """Handle for a non-blocking operation (mpi4py-style ``wait``/``test``)."""

    def __init__(
        self,
        comm: "Comm",
        kind: str,
        *,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        payload: Any = None,
    ) -> None:
        self._comm = comm
        self._kind = kind  # "send" (already completed) or "recv"
        self._source = source
        self._tag = tag
        self._payload = payload
        self._done = kind == "send"

    def wait(self, status: Optional[Status] = None) -> Any:
        """Block until completion; for receives, return the payload."""
        if self._done:
            return self._payload
        msg = self._comm._match(source=self._source, tag=self._tag)
        self._done = True
        self._payload = msg.payload
        self._fill_status(status, msg)
        return self._payload

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        """Poll for completion: ``(flag, payload-or-None)``."""
        if self._done:
            return True, self._payload
        msg = self._comm._match(source=self._source, tag=self._tag, block=False)
        if msg is None:
            return False, None
        self._done = True
        self._payload = msg.payload
        self._fill_status(status, msg)
        return True, self._payload

    @staticmethod
    def _fill_status(status: Optional[Status], msg: Message) -> None:
        if status is not None:
            status.source = msg.src
            status.tag = msg.tag
            status.count = _payload_count(msg.payload)


class Comm:
    """An MPI communicator bound to one rank of an SPMD job.

    Unlike mpi4py (where one ``Comm`` object is shared), every rank holds its
    own ``Comm`` carrying its rank id — the natural shape for a runtime where
    ranks are threads of one process.
    """

    def __init__(self, network: Network, rank: int, group: Sequence[int], context: int = 0):
        self._network = network
        self._group = list(group)  # comm rank -> global (network) rank
        self._context = context
        if rank < 0 or rank >= len(self._group):
            raise MPIError(f"rank {rank} outside group of size {len(self._group)}")
        self._rank = rank
        self._global_rank = self._group[rank]
        self._tracer = network.tracer_for(self._global_rank)

    # -------------------------------------------------------------- properties

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._group)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    @property
    def network(self) -> Network:
        return self._network

    @property
    def group(self) -> tuple[int, ...]:
        """Comm-local rank -> global (network) rank mapping."""
        return tuple(self._group)

    @property
    def global_rank(self) -> int:
        """This rank's global (network) rank."""
        return self._global_rank

    @property
    def tracer(self):
        """This rank's tracer (the shared null tracer when tracing is off)."""
        return self._tracer

    # ------------------------------------------------------------ point-to-point

    def _check_peer(self, peer: int) -> int:
        if not (0 <= peer < self.size):
            raise MPIError(f"peer rank {peer} outside communicator of size {self.size}")
        return self._group[peer]

    def _post(self, obj: Any, dest: int, tag: int) -> None:
        # ``src`` is the communicator-local rank (receivers index gathers by
        # it); the *global* rank travels separately so fault injection and
        # heartbeats account to the right physical rank on sub-communicators.
        self._network.post(
            Message(
                src=self._rank,
                dst=self._check_peer(dest),
                tag=tag,
                context=self._context,
                payload=_wire(obj),
            ),
            acting=self._global_rank,
        )

    def _match(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        block: bool = True,
    ) -> Optional[Message]:
        return self._network.match(
            dst=self._global_rank,
            context=self._context,
            source=source,
            tag=tag,
            block=block,
        )

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered (eager) send of a Python object."""
        if tag < 0:
            raise MPIError(f"user tags must be >= 0, got {tag}")
        self._post(obj, dest, tag)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Blocking receive; returns the received object."""
        msg = self._match(source=source, tag=tag)
        Request._fill_status(status, msg)
        return msg.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (eager: completes immediately)."""
        self.send(obj, dest, tag)
        return Request(self, "send", payload=None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; complete it with ``wait``/``test``."""
        return Request(self, "recv", source=source, tag=tag)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Combined send+receive (deadlock-free thanks to eager sends)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source=source, tag=recvtag, status=status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; do not consume it."""
        # Eager implementation: poll via the network with tiny sleeps is not
        # needed — match-and-repost would reorder, so use network.probe with
        # a condition-wait loop via match(block=False).
        import time

        deadline = self._network.op_timeout
        waited = 0.0
        while True:
            msg = self._network.probe(self._global_rank, self._context, source, tag)
            if msg is not None:
                st = Status(source=msg.src, tag=msg.tag, count=_payload_count(msg.payload))
                return st
            time.sleep(0.0005)
            waited += 0.0005
            if waited > deadline:
                from repro.mpi.exceptions import DeadlockError

                raise DeadlockError(f"probe timed out on rank {self._rank}")

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe."""
        return self._network.probe(self._global_rank, self._context, source, tag) is not None

    # -------------------------------------------------- numpy buffer variants

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Send a numpy array (contents copied at send time)."""
        if tag < 0:
            raise MPIError(f"user tags must be >= 0, got {tag}")
        self._post(np.ascontiguousarray(buf), dest, tag)

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> None:
        """Receive into a pre-allocated numpy array (in place)."""
        msg = self._match(source=source, tag=tag)
        data = np.asarray(msg.payload)
        if data.size != buf.size:
            raise MPIError(f"Recv buffer size {buf.size} != message size {data.size}")
        flat = buf.reshape(-1)
        flat[:] = data.reshape(-1)
        Request._fill_status(status, msg)

    # -------------------------------------------------------------- collectives

    @_traced_collective("barrier")
    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2(P)) rounds of pairwise messages."""
        size, rank = self.size, self._rank
        k = 0
        while (1 << k) < size:
            dist = 1 << k
            self._post(None, (rank + dist) % size, _TAG_BARRIER - k)
            self._match(source=(rank - dist) % size, tag=_TAG_BARRIER - k)
            k += 1

    Barrier = barrier

    @_traced_collective("bcast")
    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the broadcast object on all ranks."""
        size, rank = self.size, self._rank
        vrank = (rank - root) % size
        value = obj
        mask = 1
        while mask < size:
            if vrank & mask:
                src = ((vrank - mask) + root) % size
                value = self._match(source=src, tag=_TAG_BCAST).payload
                break
            mask <<= 1
        # Forward to children in decreasing mask order.
        mask >>= 1
        while mask > 0:
            child = vrank + mask
            if child < size:
                self._post(value, (child + root) % size, _TAG_BCAST)
            mask >>= 1
        return value

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        """In-place broadcast of a numpy array (the SOM codebook path)."""
        out = self.bcast(buf if self._rank == root else None, root=root)
        if self._rank != root:
            buf.reshape(-1)[:] = np.asarray(out).reshape(-1)

    @_traced_collective("reduce")
    def reduce(self, sendobj: Any, op: Op = SUM, root: int = 0) -> Any:
        """Binomial-tree reduction; returns the result on ``root`` else None."""
        size, rank = self.size, self._rank
        vrank = (rank - root) % size
        value = _isolate(sendobj)
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = ((vrank - mask) + root) % size
                self._post(value, dst, _TAG_REDUCE)
                break
            partner = vrank | mask
            if partner < size:
                other = self._match(source=(partner + root) % size, tag=_TAG_REDUCE).payload
                # ``value`` covers lower ranks than ``other``: keep rank order.
                value = op(value, other)
            mask <<= 1
        return value if rank == root else None

    def allreduce(self, sendobj: Any, op: Op = SUM) -> Any:
        """Reduce to rank 0 then broadcast (the classic composition)."""
        return self.bcast(self.reduce(sendobj, op=op, root=0), root=0)

    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        """Element-wise numpy reduction into ``recvbuf`` on the root.

        This is the direct-MPI call the paper's SOM uses to combine the
        per-rank numerator/denominator accumulators (Fig. 2).
        """
        result = self.reduce(np.ascontiguousarray(sendbuf), op=op, root=root)
        if self._rank == root:
            if recvbuf is None:
                raise MPIError("root must supply recvbuf to Reduce")
            recvbuf.reshape(-1)[:] = np.asarray(result).reshape(-1)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        result = self.allreduce(np.ascontiguousarray(sendbuf), op=op)
        recvbuf.reshape(-1)[:] = np.asarray(result).reshape(-1)

    @_traced_collective("gather")
    def gather(self, sendobj: Any, root: int = 0) -> Optional[list]:
        """Gather one object per rank into a rank-ordered list on root."""
        if self._rank != root:
            self._post(sendobj, root, _TAG_GATHER)
            return None
        out: list[Any] = [None] * self.size
        out[root] = _wire(sendobj)
        for _ in range(self.size - 1):
            msg = self._match(source=ANY_SOURCE, tag=_TAG_GATHER)
            # msg.src carries the sender's communicator-local rank (senders
            # stamp their own rank within this context), so it indexes
            # ``out`` directly — using the network rank here would break
            # gathers on nested sub-communicators.
            out[msg.src] = msg.payload
        return out

    def allgather(self, sendobj: Any) -> list:
        """Gather to rank 0 then broadcast the full list."""
        return self.bcast(self.gather(sendobj, root=0), root=0)

    @_traced_collective("scatter")
    def scatter(self, sendobjs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter a rank-ordered sequence from root; returns this rank's item."""
        if self._rank == root:
            if sendobjs is None or len(sendobjs) != self.size:
                raise MPIError(
                    f"scatter needs exactly {self.size} items on root, got "
                    f"{None if sendobjs is None else len(sendobjs)}"
                )
            for peer in range(self.size):
                if peer != root:
                    self._post(sendobjs[peer], peer, _TAG_SCATTER)
            return _wire(sendobjs[root])
        return self._match(source=root, tag=_TAG_SCATTER).payload

    @_traced_collective("alltoall")
    def alltoall(self, sendobjs: Sequence[Any]) -> list:
        """Personalised all-to-all: item ``i`` of my list goes to rank ``i``.

        On an arena-backed transport the exchange runs the classic
        pairwise XOR-peer schedule: round ``r`` pairs each rank with
        ``rank ^ r`` (sendrecv), so at most one outbound payload per rank
        is in flight at a time and peak arena residency per round is one
        slot, not ``P-1`` — that is what lets a ring sized well below the
        full shuffle volume keep a 100% hit rate.  Both schedules make
        exactly ``size-1`` posts and ``size-1`` matches per rank, so
        FaultPlan op/send counters (and therefore seeded fault traces)
        are identical across backends.
        """
        if len(sendobjs) != self.size:
            raise MPIError(f"alltoall needs {self.size} items, got {len(sendobjs)}")
        size, rank = self.size, self._rank
        out: list[Any] = [None] * size
        out[rank] = _wire(sendobjs[rank])
        if getattr(self._network, "arena_enabled", False):
            pow2 = 1
            while pow2 < size:
                pow2 <<= 1
            for r in range(1, pow2):
                peer = rank ^ r
                if peer < size:
                    self._post(sendobjs[peer], peer, _TAG_ALLTOALL)
                    out[peer] = self._match(
                        source=peer, tag=_TAG_ALLTOALL).payload
            return out
        for peer in range(size):
            if peer != rank:
                self._post(sendobjs[peer], peer, _TAG_ALLTOALL)
        for _ in range(size - 1):
            msg = self._match(source=ANY_SOURCE, tag=_TAG_ALLTOALL)
            out[msg.src] = msg.payload  # comm-local sender rank
        return out

    @_traced_collective("scan")
    def scan(self, sendobj: Any, op: Op = SUM) -> Any:
        """Inclusive prefix reduction in rank order (linear chain)."""
        value = _isolate(sendobj)
        if self._rank > 0:
            prev = self._match(source=self._rank - 1, tag=_TAG_SCAN).payload
            value = op(prev, value)
        if self._rank < self.size - 1:
            self._post(value, self._rank + 1, _TAG_SCAN)
        return value

    @_traced_collective("exscan")
    def exscan(self, sendobj: Any, op: Op = SUM) -> Any:
        """Exclusive prefix reduction; undefined (None) on rank 0."""
        value = _isolate(sendobj)
        prev = None
        if self._rank > 0:
            prev = self._match(source=self._rank - 1, tag=_TAG_SCAN).payload
        if self._rank < self.size - 1:
            nxt = value if prev is None else op(prev, value)
            self._post(nxt, self._rank + 1, _TAG_SCAN)
        return prev

    # ------------------------------------------------------------ communicator ops

    def split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """MPI_Comm_split: group ranks by ``color``, order by ``(key, rank)``.

        Ranks passing ``color=None`` (MPI_UNDEFINED) get ``None`` back.
        """
        triples = self.allgather((color, key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color
        )  # (key, old rank) pairs
        group_global = [self._group[r] for (_k, r) in members]
        my_new_rank = next(i for i, (_k, r) in enumerate(members) if r == self._rank)
        ctx = self._network.allocate_context(("split", self._context, color, tuple(group_global)))
        return Comm(self._network, my_new_rank, group_global, context=ctx)

    def dup(self) -> "Comm":
        """Duplicate this communicator with an isolated context.

        ``dup`` is collective; every member increments the same per-comm
        counter, so all agree on the context key without extra messages.
        """
        self._dup_count = getattr(self, "_dup_count", 0) + 1
        ctx = self._network.allocate_context(
            ("dup", self._context, self._dup_count, tuple(self._group))
        )
        return Comm(self._network, self._rank, self._group, context=ctx)

    def shrink(self, dead: Sequence[int]) -> "Comm":
        """Drop ``dead`` comm-local ranks; return the survivors' communicator.

        Degraded-mode analogue of ULFM's ``MPI_Comm_shrink``, but
        *non-collective by construction*: every survivor already knows the
        same dead set (the master broadcast it / the transport's dead flags
        named it), so all survivors derive the same group and context key
        without an extra round of messages — which matters because the dead
        ranks can no longer participate in a collective.

        The caller must be a survivor.  Ranks are renumbered densely in
        the old order.
        """
        dead_set = set(dead)
        if self._rank in dead_set:
            raise MPIError(
                f"rank {self._rank} cannot shrink a communicator it was "
                f"dropped from")
        group_global = [g for i, g in enumerate(self._group) if i not in dead_set]
        if not group_global:
            raise MPIError("shrink would leave an empty communicator")
        my_new_rank = group_global.index(self._global_rank)
        ctx = self._network.allocate_context(
            ("shrink", self._context, tuple(group_global))
        )
        return Comm(self._network, my_new_rank, group_global, context=ctx)
