"""Reduction operators, wildcards and Status for the in-process MPI.

Operators work both element-wise on numpy arrays (capitalised buffer API) and
on scalar Python objects (lowercase object API), mirroring mpi4py.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Op",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "LAND",
    "LOR",
    "MAXLOC",
    "MINLOC",
    "Status",
]

#: Wildcard source for :meth:`Comm.recv` (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Comm.recv` (matches any tag).
ANY_TAG = -1


@dataclass(frozen=True)
class Op:
    """A reduction operator.

    ``fn`` combines two values (numpy arrays combine element-wise).
    ``commutative`` is informational; all built-ins are commutative and the
    tree reduction preserves rank order for the non-commutative case anyway.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name})"


def _maxloc(a, b):
    """(value, index) pair-wise max; ties resolved to the lower index."""
    (av, ai), (bv, bi) = a, b
    if av > bv or (av == bv and ai <= bi):
        return (av, ai)
    return (bv, bi)


def _minloc(a, b):
    (av, ai), (bv, bi) = a, b
    if av < bv or (av == bv and ai <= bi):
        return (av, ai)
    return (bv, bi)


SUM = Op("SUM", lambda a, b: a + b)
PROD = Op("PROD", lambda a, b: a * b)
MIN = Op("MIN", lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b))
MAX = Op("MAX", lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b))
LAND = Op("LAND", lambda a, b: np.logical_and(a, b) if isinstance(a, np.ndarray) else bool(a and b))
LOR = Op("LOR", lambda a, b: np.logical_or(a, b) if isinstance(a, np.ndarray) else bool(a or b))
MAXLOC = Op("MAXLOC", _maxloc)
MINLOC = Op("MINLOC", _minloc)


@dataclass
class Status:
    """Receive status: who sent the matched message and with what tag."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0
    _extra: dict = field(default_factory=dict, repr=False)

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.count
