"""Payload codec for the process transport: arena frames + shm fallback.

Two wire formats coexist on the data pipes, distinguished by the first
byte of every frame:

**Arena frames** (:data:`FRAME_ARENA`) are the bulk fast path.  Any
payload that is a tree (two container levels deep) of numpy arrays /
``None`` is written once into the sender's ring of the per-job shared
arena (:mod:`repro.mpi.arena`) and described by one fixed-width packed
struct — envelope fields, slot coordinates, a structure grammar and a
per-array dtype/shape/offset table.  No pickle on either side; the
receiver surfaces the bytes as read-only zero-copy views.

**Pickle frames** (:data:`FRAME_PICKLE`) carry everything else — the
lowercase object path — as a pickled :class:`~repro.mpi.network.Message`.
Inside a pickle frame, bulk array payloads that missed the arena (arena
disabled, ring overflow, slot table exhausted) still avoid the pipe
buffer: they travel as a *per-message* ``shared_memory`` block behind a
tiny :class:`ShmHandle`, the PR-6 protocol, which doubles as the parity
oracle for the arena path.

Per-message block lifetime: the *sender* creates the block and never
unlinks it; the *receiver* unlinks after decoding.  Arena segments and
per-message blocks share the job's name prefix, so the parent sweeps both
kinds of straggler from ``/dev/shm`` after an abnormal teardown
(:func:`sweep_job_blocks`).  Python's ``resource_tracker`` would
double-unlink blocks that cross a fork boundary, so blocks are explicitly
unregistered from it on both sides.

Payloads below :data:`SHM_MIN_BYTES` that miss the arena are pickled
straight through the pipe — two shm syscalls cost more than a small
pickle.
"""

from __future__ import annotations

import ast
import os
import struct
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.mpi.arena import Arena

__all__ = [
    "FRAME_ARENA",
    "FRAME_PICKLE",
    "SHM_MIN_BYTES",
    "ShmHandle",
    "encode_payload",
    "decode_payload",
    "pack_arena_message",
    "unpack_arena_message",
    "sweep_job_blocks",
]

#: Below this many payload bytes, pickling through the pipe is cheaper than
#: two shm syscalls plus a mmap.  32 KiB is far above any control message
#: and far below a columnar page.
SHM_MIN_BYTES = 32 * 1024

_SHM_DIR = "/dev/shm"


@dataclass
class ShmHandle:
    """The envelope that crosses the pipe in place of the array bytes."""

    name: str
    total_bytes: int
    #: per-array (dtype, shape, byte offset) header
    metas: list
    #: "array" for a bare ndarray, "tuple"/"list" for a sequence of them
    container: str


def _untrack(name: str) -> None:
    """Detach a block from resource_tracker (we own its lifetime)."""
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def _shm_eligible(obj) -> list | None:
    """Return the list of arrays to ship via shm, or None to pickle."""
    if isinstance(obj, np.ndarray):
        arrays = [obj]
    elif (
        isinstance(obj, (tuple, list))
        and obj
        and all(isinstance(a, np.ndarray) for a in obj)
    ):
        arrays = list(obj)
    else:
        return None
    total = 0
    for a in arrays:
        if a.dtype.hasobject:
            return None  # object dtypes must pickle
        total += a.nbytes
    if total < SHM_MIN_BYTES:
        return None
    return arrays


def encode_payload(obj, name_prefix: str, seq: int):
    """Encode *obj* into a :class:`ShmHandle` when profitable.

    Returns *obj* unchanged when it is not a bulk array payload — the pipe
    pickles it as usual.  ``name_prefix``/``seq`` make the block name
    unique per job and per send (a duplicated send encodes twice, so each
    delivery owns its own block).
    """
    arrays = _shm_eligible(obj)
    if arrays is None:
        return obj
    total = sum(a.nbytes for a in arrays)
    block = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=f"{name_prefix}{seq}"
    )
    _untrack(block.name)
    metas = []
    offset = 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        dst = np.ndarray(a.shape, dtype=a.dtype, buffer=block.buf, offset=offset)
        dst[...] = a
        metas.append((a.dtype, a.shape, offset))
        offset += a.nbytes
    if isinstance(obj, np.ndarray):
        container = "array"
    else:
        container = "tuple" if isinstance(obj, tuple) else "list"
    handle = ShmHandle(
        name=block.name,
        total_bytes=total,
        metas=metas,
        container=container,
    )
    block.close()
    return handle


def decode_payload(wire):
    """Materialise a pipe payload: map + copy out of shm, then unlink.

    Decoded arrays are marked read-only — the same aliasing contract the
    thread backend's frozen-view fast path hands receivers.
    """
    if not isinstance(wire, ShmHandle):
        return wire
    block = shared_memory.SharedMemory(name=wire.name)
    # No _untrack here: on 3.11 attaching registers with the receiver's
    # resource tracker and ``unlink()`` below unregisters again — the pair
    # balances itself.
    out = []
    for dtype, shape, offset in wire.metas:
        a = np.ndarray(shape, dtype=dtype, buffer=block.buf, offset=offset).copy()
        a.setflags(write=False)
        out.append(a)
    block.close()
    try:
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - double delivery race
        pass
    if wire.container == "array":
        return out[0]
    return tuple(out) if wire.container == "tuple" else out


# --------------------------------------------------------------- arena frames

#: First byte of every data-pipe frame.
FRAME_PICKLE = 0x00
FRAME_ARENA = 0x01

#: Per-array start alignment inside a slot (keeps typed views aligned for
#: any dtype numpy ships).
_ARR_ALIGN = 16

# Fixed-width envelope: frame byte, pad, src, dst, tag, context,
# not_before, slot, epoch, slot offset, payload bytes, n_arrays,
# structure-grammar length.
_FIXED = struct.Struct("<B3xiiqqdIQQQHH")
# Per-array entry: offset within the slot, ndim, dtype-string length
# (dtype bytes and ndim x i64 shape follow).
_META = struct.Struct("<QBH")

# Structure grammar opcodes (a pre-order walk of the payload tree):
# A = next array, N = None, T/L <u16 count> = tuple/list of count children.
_OP_ARRAY, _OP_NONE, _OP_TUPLE, _OP_LIST = 0x41, 0x4E, 0x54, 0x4C


class _Ineligible(Exception):
    """Internal: payload must take the pickle path."""


def _arena_flatten(obj) -> tuple[list, bytes] | None:
    """Flatten an array tree into (arrays, structure grammar), or None.

    Eligible payloads are numpy arrays (no object dtypes), ``None``, and
    up to two nested levels of tuple/list of those — exactly the shapes
    the columnar shuffle, the capitalized buffer path and the collectives'
    gathered-list broadcasts produce.  Anything else pickles.
    """
    arrays: list = []
    out = bytearray()

    def walk(o, depth: int) -> None:
        if isinstance(o, np.ndarray):
            if o.dtype.hasobject or o.ndim > 255:
                raise _Ineligible
            arrays.append(o)
            out.append(_OP_ARRAY)
        elif o is None:
            out.append(_OP_NONE)
        elif isinstance(o, (tuple, list)):
            if depth >= 2 or len(o) > 0xFFFF:
                raise _Ineligible
            out.append(_OP_TUPLE if isinstance(o, tuple) else _OP_LIST)
            out.extend(len(o).to_bytes(2, "little"))
            for child in o:
                walk(child, depth + 1)
        else:
            raise _Ineligible

    if obj is None:
        return None  # a bare None pickles in a handful of bytes
    try:
        walk(obj, 0)
    except _Ineligible:
        return None
    if not arrays or len(arrays) > 0xFFFF:
        return None
    return arrays, bytes(out)


_DTYPE_DECODE_CACHE: dict[bytes, np.dtype] = {}
_DTYPE_ENCODE_CACHE: dict = {}

_SHAPE_STRUCTS: dict[int, struct.Struct] = {}


def _shape_struct(ndim: int) -> struct.Struct:
    s = _SHAPE_STRUCTS.get(ndim)
    if s is None:
        s = _SHAPE_STRUCTS[ndim] = struct.Struct(f"<{ndim}q")
    return s


def _dtype_to_bytes(dt: np.dtype) -> bytes:
    enc = _DTYPE_ENCODE_CACHE.get(dt)
    if enc is None:
        if dt.names is not None:
            # Structured dtypes (the mrblast VALUE_DTYPE records): ``descr``
            # round-trips through literal_eval; plain ``str`` does not.
            enc = b"D" + repr(dt.descr).encode("utf-8")
        else:
            enc = b"P" + dt.str.encode("ascii")
        if len(enc) > 0xFFFF:
            raise _Ineligible
        _DTYPE_ENCODE_CACHE[dt] = enc
    return enc


def _dtype_from_bytes(raw: bytes) -> np.dtype:
    dt = _DTYPE_DECODE_CACHE.get(raw)
    if dt is None:
        if raw[:1] == b"D":
            dt = np.dtype(ast.literal_eval(raw[1:].decode("utf-8")))
        else:
            dt = np.dtype(raw[1:].decode("ascii"))
        _DTYPE_DECODE_CACHE[raw] = dt
    return dt


def pack_arena_message(msg, arena: Arena) -> bytes | None:
    """Pack ``msg`` into an arena frame, or None for the pickle fallback.

    None either means the payload shape is not an array tree (object
    path), or the ring could not hold it right now (overflow — already
    counted in ``arena.stats``).  The caller owns the fallback; a packed
    frame owns its slot, released when the receiver's views die.
    """
    flat = _arena_flatten(msg.payload)
    if flat is None:
        return None
    arrays, structure = flat
    try:
        metas = []
        total = 0
        for a in arrays:
            total = -(-total // _ARR_ALIGN) * _ARR_ALIGN
            metas.append((total, a.ndim, _dtype_to_bytes(a.dtype), a.shape))
            total += a.nbytes
    except _Ineligible:  # pragma: no cover - >64KiB dtype string
        return None
    res = arena.alloc(total)
    if res is None:
        return None
    slot, epoch, base = res
    buf = arena.own_slice(base, total)
    for a, (off, _nd, _db, _shape) in zip(arrays, metas):
        if a.nbytes:
            if a.flags.c_contiguous:
                # Straight memcpy; the ndarray-wrapper assignment below
                # costs a few µs of construction per array.
                buf[off:off + a.nbytes] = a.data.cast("B")
            else:
                np.ndarray(a.shape, dtype=a.dtype,
                           buffer=buf, offset=off)[...] = a
    frame = bytearray(_FIXED.pack(
        FRAME_ARENA, msg.src, msg.dst, msg.tag, msg.context, msg.not_before,
        slot, epoch, base, total, len(arrays), len(structure)))
    frame += structure
    for off, ndim, dbytes, shape in metas:
        frame += _META.pack(off, ndim, len(dbytes))
        frame += dbytes
        frame += _shape_struct(ndim).pack(*shape)
    return bytes(frame)


def unpack_arena_message(frame, arena: Arena):
    """Rebuild a :class:`~repro.mpi.network.Message` from an arena frame.

    The payload arrays are read-only zero-copy views over the sender's
    slot; the slot is handed back to the sender when the last view is
    garbage-collected (see :meth:`repro.mpi.arena.Arena.view`).
    """
    from repro.mpi.network import Message

    mv = memoryview(frame)
    (_frame, src, dst, tag, context, not_before,
     slot, epoch, base, total, narr, slen) = _FIXED.unpack_from(mv, 0)
    pos = _FIXED.size
    structure = bytes(mv[pos:pos + slen])
    pos += slen
    wrapper = arena.view(src, slot, epoch, base, total)
    arrays = []
    for _ in range(narr):
        off, ndim, dlen = _META.unpack_from(mv, pos)
        pos += _META.size
        dt = _dtype_from_bytes(bytes(mv[pos:pos + dlen]))
        pos += dlen
        shape = _shape_struct(ndim).unpack_from(mv, pos)
        pos += 8 * ndim
        nbytes = dt.itemsize
        for dim in shape:
            nbytes *= dim
        arrays.append(wrapper[off:off + nbytes].view(dt).reshape(shape))
    payload = _rebuild(structure, arrays)
    return Message(src=src, dst=dst, tag=tag, context=context,
                   payload=payload, not_before=not_before)


def _rebuild(structure: bytes, arrays: list):
    """Inverse of the :func:`_arena_flatten` pre-order walk.

    Deliberately NOT written as a self-recursive inner closure: a closure
    that names itself closes over its own cell, which is a reference
    cycle, and that cycle's `arrays` cell would keep every zero-copy view
    alive until the *cyclic* GC runs — the sender's slot would look
    resident long after the receiver dropped the payload.  A module-level
    helper with explicit state keeps release purely refcount-driven.
    """
    value, _, _ = _rebuild_node(structure, 0, arrays, 0)
    return value


def _rebuild_node(structure: bytes, pos: int, arrays: list, ai: int):
    op = structure[pos]
    pos += 1
    if op == _OP_ARRAY:
        return arrays[ai], pos, ai + 1
    if op == _OP_NONE:
        return None, pos, ai
    count = int.from_bytes(structure[pos:pos + 2], "little")
    pos += 2
    children = []
    for _ in range(count):
        child, pos, ai = _rebuild_node(structure, pos, arrays, ai)
        children.append(child)
    return (tuple(children) if op == _OP_TUPLE else children), pos, ai


def sweep_job_blocks(name_prefix: str) -> int:
    """Unlink any leftover blocks for a job (abnormal-teardown cleanup)."""
    swept = 0
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux shm layout
        return 0
    for name in names:
        if name.startswith(name_prefix):
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
                swept += 1
            except OSError:  # pragma: no cover - concurrent unlink
                pass
    return swept
