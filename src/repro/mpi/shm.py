"""Shared-memory payload codec for the process transport.

The columnar data plane ships tuples of contiguous numpy arrays (one page
worth of keys plus value columns) and the capitalized ``Send``/``Bcast``/
``Reduce`` path ships single arrays.  Pickling those through a pipe copies
every byte twice (serialize + deserialize) and funnels them through the
pipe buffer 64 KiB at a time.  Instead, bulk array payloads travel as one
``multiprocessing.shared_memory`` block: the sender writes the raw bytes
once, the envelope that crosses the pipe is just a tiny handle (block
name + per-array dtype/shape/offset header), and the receiver maps the
block and copies straight into process-local arrays.

Lifetime protocol: the *sender* creates the block and never unlinks it;
the *receiver* unlinks after decoding (decode happens on arrival in the
receiver thread, so a block lives only for its pipe transit).  Blocks are
named with a per-job prefix so the parent can sweep stragglers from
``/dev/shm`` after an abnormal teardown.  Python's ``resource_tracker``
would double-unlink blocks that cross a fork boundary, so blocks are
explicitly unregistered from it on both sides.

Payloads below :data:`SHM_MIN_BYTES` and anything that is not a plain
ndarray / tuple of ndarrays fall through untouched and get pickled by the
pipe — the lowercase object path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "SHM_MIN_BYTES",
    "ShmHandle",
    "encode_payload",
    "decode_payload",
    "sweep_job_blocks",
]

#: Below this many payload bytes, pickling through the pipe is cheaper than
#: two shm syscalls plus a mmap.  32 KiB is far above any control message
#: and far below a columnar page.
SHM_MIN_BYTES = 32 * 1024

_SHM_DIR = "/dev/shm"


@dataclass
class ShmHandle:
    """The envelope that crosses the pipe in place of the array bytes."""

    name: str
    total_bytes: int
    #: per-array (dtype, shape, byte offset) header
    metas: list
    #: "array" for a bare ndarray, "tuple"/"list" for a sequence of them
    container: str


def _untrack(name: str) -> None:
    """Detach a block from resource_tracker (we own its lifetime)."""
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def _shm_eligible(obj) -> list | None:
    """Return the list of arrays to ship via shm, or None to pickle."""
    if isinstance(obj, np.ndarray):
        arrays = [obj]
    elif (
        isinstance(obj, (tuple, list))
        and obj
        and all(isinstance(a, np.ndarray) for a in obj)
    ):
        arrays = list(obj)
    else:
        return None
    total = 0
    for a in arrays:
        if a.dtype.hasobject:
            return None  # object dtypes must pickle
        total += a.nbytes
    if total < SHM_MIN_BYTES:
        return None
    return arrays


def encode_payload(obj, name_prefix: str, seq: int):
    """Encode *obj* into a :class:`ShmHandle` when profitable.

    Returns *obj* unchanged when it is not a bulk array payload — the pipe
    pickles it as usual.  ``name_prefix``/``seq`` make the block name
    unique per job and per send (a duplicated send encodes twice, so each
    delivery owns its own block).
    """
    arrays = _shm_eligible(obj)
    if arrays is None:
        return obj
    total = sum(a.nbytes for a in arrays)
    block = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=f"{name_prefix}{seq}"
    )
    _untrack(block.name)
    metas = []
    offset = 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        dst = np.ndarray(a.shape, dtype=a.dtype, buffer=block.buf, offset=offset)
        dst[...] = a
        metas.append((a.dtype, a.shape, offset))
        offset += a.nbytes
    if isinstance(obj, np.ndarray):
        container = "array"
    else:
        container = "tuple" if isinstance(obj, tuple) else "list"
    handle = ShmHandle(
        name=block.name,
        total_bytes=total,
        metas=metas,
        container=container,
    )
    block.close()
    return handle


def decode_payload(wire):
    """Materialise a pipe payload: map + copy out of shm, then unlink.

    Decoded arrays are marked read-only — the same aliasing contract the
    thread backend's frozen-view fast path hands receivers.
    """
    if not isinstance(wire, ShmHandle):
        return wire
    block = shared_memory.SharedMemory(name=wire.name)
    # No _untrack here: on 3.11 attaching registers with the receiver's
    # resource tracker and ``unlink()`` below unregisters again — the pair
    # balances itself.
    out = []
    for dtype, shape, offset in wire.metas:
        a = np.ndarray(shape, dtype=dtype, buffer=block.buf, offset=offset).copy()
        a.setflags(write=False)
        out.append(a)
    block.close()
    try:
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - double delivery race
        pass
    if wire.container == "array":
        return out[0]
    return tuple(out) if wire.container == "tuple" else out


def sweep_job_blocks(name_prefix: str) -> int:
    """Unlink any leftover blocks for a job (abnormal-teardown cleanup)."""
    swept = 0
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux shm layout
        return 0
    for name in names:
        if name.startswith(name_prefix):
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
                swept += 1
            except OSError:  # pragma: no cover - concurrent unlink
                pass
    return swept
