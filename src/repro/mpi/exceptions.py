"""Errors raised by the in-process MPI runtime."""

from __future__ import annotations

__all__ = ["MPIError", "DeadlockError", "AbortError"]


class MPIError(RuntimeError):
    """Base class for runtime errors (bad rank, bad tag, misuse)."""


class DeadlockError(MPIError):
    """A blocking operation timed out.

    In a real MPI job this is the hang you attach a debugger to; here the
    runtime converts it into an exception after ``Network.op_timeout``
    seconds so the test suite can never wedge.
    """


class AbortError(MPIError):
    """Raised inside blocked ranks when another rank failed (MPI_Abort)."""
