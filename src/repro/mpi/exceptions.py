"""Errors raised by the in-process MPI runtime."""

from __future__ import annotations

__all__ = ["MPIError", "DeadlockError", "AbortError", "RankFailure", "DegradedRankLoss"]


class MPIError(RuntimeError):
    """Base class for runtime errors (bad rank, bad tag, misuse)."""


class DeadlockError(MPIError):
    """A blocking operation timed out.

    In a real MPI job this is the hang you attach a debugger to; here the
    runtime converts it into an exception after ``Network.op_timeout``
    seconds so the test suite can never wedge.
    """


class AbortError(MPIError):
    """Raised inside blocked ranks when another rank failed (MPI_Abort)."""


class RankFailure(MPIError):
    """A rank crashed (fault injection): raised at the rank's next MPI call.

    Mirrors the paper's §II.A failure semantics — MPI has no recovery story,
    so one dead rank takes the whole job down.  The failing rank raises this
    from inside :class:`~repro.mpi.network.Network`; the runtime then aborts
    the job and every blocked peer observes :class:`AbortError`.
    """

    def __init__(self, rank: int, op_index: int) -> None:
        super().__init__(f"rank {rank} crashed at MPI operation {op_index} (fault injection)")
        self.rank = rank
        self.op_index = op_index

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` (the
        # formatted message), which does not match this two-int signature.
        # The process transport ships rank errors through a pipe, so spell
        # out the constructor call explicitly.
        return (RankFailure, (self.rank, self.op_index))


class DegradedRankLoss(MPIError):
    """A rank died mid-map but the job routed around it (degraded mode).

    Raised *by the dead rank itself* in place of propagating its crash to
    the whole job: the MASTER_WORKER master notices the death, reassigns
    the rank's units to survivors, and the job completes with
    ``degraded=True``.  The supervisor treats this like :class:`AbortError`
    — recorded, never re-raised as the job's primary error.
    """

    def __init__(self, rank: int, cause: str = "") -> None:
        detail = f": {cause}" if cause else ""
        super().__init__(f"rank {rank} lost mid-map, job degraded{detail}")
        self.rank = rank
        self.cause = cause

    def __reduce__(self):
        return (DegradedRankLoss, (self.rank, self.cause))
