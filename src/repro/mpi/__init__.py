"""In-process SPMD MPI runtime.

The paper's applications are regular MPI programs built on MapReduce-MPI plus
a few direct MPI calls (``MPI_Bcast``/``MPI_Reduce`` in the SOM).  This
package provides the MPI substrate in-process: every rank is a Python thread
owning a :class:`~repro.mpi.comm.Comm`, and a shared
:class:`~repro.mpi.network.Network` routes messages with MPI matching
semantics (FIFO non-overtaking per (source, dest, tag, context)).

The API follows mpi4py conventions:

- lowercase methods (``send``/``recv``/``bcast``/``reduce`` ...) move generic
  Python objects;
- capitalized methods (``Send``/``Recv``/``Reduce``/``Allreduce`` ...) move
  numpy buffers in place, which is what the SOM hot path uses.

Launch an SPMD region with :func:`~repro.mpi.runtime.run_spmd`::

    def main(comm):
        rank = comm.rank
        total = comm.allreduce(rank)
        return total

    results = run_spmd(4, main)   # [6, 6, 6, 6]

Collectives are implemented on top of point-to-point (binomial trees,
dissemination barrier), mirroring how a real MPI implements them and giving
the point-to-point layer heavy indirect test coverage.
"""

from repro.mpi.exceptions import MPIError, DeadlockError, AbortError, RankFailure
from repro.mpi.faultplan import (
    CrashRank,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    FaultPlan,
    StallRank,
)
from repro.mpi.ops import (
    ANY_SOURCE,
    ANY_TAG,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    LAND,
    LOR,
    Op,
    Status,
)
from repro.mpi.network import Network
from repro.mpi.transport import TransportEndpoint
from repro.mpi.comm import Comm, Request
from repro.mpi.runtime import (
    BACKENDS,
    RetryPolicy,
    SupervisedOutcome,
    SupervisionExhausted,
    classify_failure,
    resolve_backend,
    run_spmd,
    run_supervised,
)
from repro.mpi.pool import MPIPool

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "LAND",
    "LOR",
    "MAXLOC",
    "MINLOC",
    "Op",
    "Status",
    "Network",
    "TransportEndpoint",
    "Comm",
    "Request",
    "BACKENDS",
    "resolve_backend",
    "run_spmd",
    "run_supervised",
    "RetryPolicy",
    "SupervisedOutcome",
    "SupervisionExhausted",
    "classify_failure",
    "MPIPool",
    "MPIError",
    "DeadlockError",
    "AbortError",
    "RankFailure",
    "FaultPlan",
    "CrashRank",
    "StallRank",
    "DropMessage",
    "DuplicateMessage",
    "DelayMessage",
]
