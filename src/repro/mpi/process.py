"""Multi-process transport: every rank is a real OS process.

The thread backend (:class:`~repro.mpi.network.Network`) serialises all
compute on the GIL, so "parallel" shuffles degrade as ranks are added.
This backend forks one process per rank so map/convert/reduce compute
runs on real cores, while keeping the exact transport contract of
:mod:`repro.mpi.transport`:

- **data plane** — an N×N mesh of unidirectional pipes carrying typed
  frames (first byte selects the codec).  Bulk numpy payloads (the
  capitalized ``Send``/``Bcast``/``Reduce`` path, the columnar page
  exchange and the seed-index alltoalls) travel as **arena frames**: the
  bytes are written once into the sender's ring of the per-job shared
  arena (:mod:`repro.mpi.arena`) and the pipe carries only a fixed-width
  packed descriptor; the receiver gets read-only zero-copy views.
  Control-sized payloads pickle straight through, and bulk payloads that
  overflow the ring fall back to PR-6 per-message
  :mod:`repro.mpi.shm` blocks — correctness never depends on arena hits.
- **delivery** — each child runs a daemon *receiver thread* draining its
  inbound pipes into a rank-local mailbox; ``match`` then runs the very
  same (context, source, tag) scan the thread backend runs on its shared
  mailboxes.  The receiver thread always drains, so eager sends cannot
  deadlock on pipe backpressure while the main thread blocks in a
  collective.
- **abort** — a failing child notifies the parent over its exit pipe; the
  parent sets a shared flag and writes a wakeup down every child's
  control pipe, so blocked peers raise
  :class:`~repro.mpi.exceptions.AbortError` promptly instead of burning
  the op timeout (MPI_Abort semantics, same as threads).
- **supervision** — heartbeats and op counts are stamped into shared
  arrays (``CLOCK_MONOTONIC`` is system-wide on Linux), so
  :func:`~repro.mpi.runtime.run_supervised` reads stall telemetry the
  same way for both backends.
- **faults** — every child consults its fork-copied
  :class:`~repro.mpi.faultplan.FaultPlan` with rank-local op/send
  counters; fired events return in the exit envelope and are absorbed
  into the parent's plan, preserving the fire-once-per-plan contract
  (and therefore identical seeded event traces) across backends and
  supervised attempts.
- **tracing** — tracer objects cannot be shared across processes; each
  child starts its tracer with a fresh event buffer and metrics registry
  and ships the delta home in its exit envelope, where the parent merges
  it into the session tracer for that rank.

Requires the ``fork`` start method (fn/args/closures are inherited, not
pickled); rank *results* and lowercase-path objects do cross a pipe, so
they must be picklable.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing as mp
import os
import pickle
import selectors
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.mpi.arena import Arena, create_arena_segments, resolve_arena_bytes
from repro.mpi.exceptions import (
    AbortError,
    DeadlockError,
    DegradedRankLoss,
    MPIError,
    RankFailure,
)
from repro.mpi.faultplan import CrashRank, FaultPlan, StallRank
from repro.mpi.faultplan import DelayMessage, DropMessage, DuplicateMessage
from repro.mpi.network import Message
from repro.mpi.ops import ANY_SOURCE, ANY_TAG
from repro.mpi.shm import (
    FRAME_ARENA,
    FRAME_PICKLE,
    decode_payload,
    encode_payload,
    pack_arena_message,
    sweep_job_blocks,
    unpack_arena_message,
)
from repro.mpi.transport import TransportEndpoint, matches
from repro.obs.metrics import MetricsRegistry, absorb_snapshot
from repro.obs.trace import NULL_TRACER, set_current_tracer

__all__ = ["ProcessJob", "ProcessNetwork"]

_JOB_COUNTER = itertools.count()


def _picklable_exc(exc: BaseException) -> BaseException:
    """Return *exc* if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return MPIError(f"{type(exc).__name__}: {exc}")


def _freeze_payload(payload: Any) -> Any:
    """Mark array payloads read-only after decode.

    Pickle rebuilds writable arrays; the thread backend hands receivers
    read-only frozen views, so align the aliasing contract here too.
    """
    if isinstance(payload, np.ndarray):
        payload.setflags(write=False)
    elif isinstance(payload, (tuple, list)) and payload and all(
        isinstance(a, np.ndarray) for a in payload
    ):
        for a in payload:
            a.setflags(write=False)
    return payload


class ProcessNetwork(TransportEndpoint):
    """Child-side transport endpoint: one per rank process.

    Duck-types :class:`~repro.mpi.network.Network` for everything ``Comm``
    and the drivers touch, but owns only its own rank's mailbox; peers are
    reached through outbound pipes and the parent-mediated abort channel.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        inbound: list,
        outbound: dict,
        ctrl_r,
        exit_w,
        heartbeats,
        op_counts,
        abort_flag,
        op_timeout: float,
        fault_plan: FaultPlan | None,
        tracer,
        shm_prefix: str,
        dead_flags=None,
        arena: Arena | None = None,
    ) -> None:
        self.rank = rank
        self.nprocs = nprocs
        self.op_timeout = op_timeout
        self.fault_plan = fault_plan
        self._inbound = inbound
        self._outbound = outbound
        self._ctrl_r = ctrl_r
        self._exit_w = exit_w
        self._heartbeats = heartbeats
        self._op_counts = op_counts
        self._abort_flag = abort_flag
        self._dead_flags = dead_flags
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._shm_prefix = f"{shm_prefix}r{rank}_"
        self._arena = arena
        self._cond = threading.Condition()
        self._mailbox: list[Message] = []
        self._next_seq = 0
        self._block_seq = itertools.count()
        self._op_count = 0
        self._send_count = 0
        self._crashed = False
        self._aborted: Optional[BaseException] = None
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"mpi-rank-{rank}-recv", daemon=True
        )
        self._receiver.start()

    # -------------------------------------------------------------- receiving

    def _recv_loop(self) -> None:
        """Drain inbound pipes into the local mailbox, forever.

        Runs for the life of the process so peers' eager sends always find
        a reader, even while the main thread is blocked in a collective or
        unwinding from an abort.  The selector is registered once — per
        message it costs one ``epoll_wait``, not a selector rebuild, which
        matters for the α term of the machine model.
        """
        sel = selectors.DefaultSelector()
        for conn in self._inbound:
            sel.register(conn, selectors.EVENT_READ, "data")
        sel.register(self._ctrl_r, selectors.EVENT_READ, "ctrl")
        live = len(self._inbound) + 1
        while live:
            try:
                ready = sel.select(timeout=1.0)
            except OSError:  # pragma: no cover - fds torn down at exit
                return
            for key, _events in ready:
                conn = key.fileobj
                if key.data == "ctrl":
                    try:
                        kind, data = conn.recv()
                    except (EOFError, OSError):
                        sel.unregister(conn)
                        live -= 1
                        continue
                    if kind == "abort":
                        self._set_aborted(data)
                    continue
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    sel.unregister(conn)
                    live -= 1
                    continue
                msg = self._decode_frame(frame)
                with self._cond:
                    msg.seq = self._next_seq
                    self._next_seq += 1
                    self._mailbox.append(msg)
                    self._cond.notify_all()

    def _decode_frame(self, frame: bytes) -> Message:
        """Typed-frame dispatch: arena descriptor or pickled Message."""
        if frame and frame[0] == FRAME_ARENA:
            return unpack_arena_message(frame, self._arena)
        msg = pickle.loads(memoryview(frame)[1:])
        msg.payload = _freeze_payload(decode_payload(msg.payload))
        return msg

    def _set_aborted(self, exc: BaseException) -> None:
        with self._cond:
            if self._aborted is None:
                self._aborted = exc
            self._cond.notify_all()

    # ------------------------------------------------------------------ abort

    def abort(self, exc: BaseException) -> None:
        """Report this rank's failure; the parent fans the abort out."""
        self._set_aborted(exc)
        try:
            self._exit_w.send(("abort", self.rank, _picklable_exc(exc)))
        except Exception:  # pragma: no cover - parent already gone
            pass

    @property
    def aborted(self) -> Optional[BaseException]:
        return self._aborted

    # ------------------------------------------------------------- dead ranks

    def mark_dead(self, rank: int) -> None:
        """Record that ``rank`` left the job in degraded mode (no abort).

        The flag lives in a shared array so the master's poll loop sees it
        immediately, without waiting for a pipe round-trip.
        """
        if self._dead_flags is not None and 0 <= rank < self.nprocs:
            self._dead_flags[rank] = 1

    def dead_ranks(self) -> frozenset[int]:
        """Global ranks that declared themselves lost (degraded mode)."""
        if self._dead_flags is None:
            return frozenset()
        return frozenset(r for r in range(self.nprocs) if self._dead_flags[r])

    def _check_abort(self) -> None:
        if self._aborted is None and self._abort_flag.value:
            # Defensive: flag observed before (or without) the control
            # message — synthesize the generic abort.
            self._aborted = MPIError("job aborted")
        if self._aborted is not None:
            raise AbortError(f"another rank failed: {self._aborted!r}")

    # ----------------------------------------------------------------- tracing

    def tracer_for(self, rank: int):
        """This rank's tracer; peers' tracers live in other processes."""
        if rank == self.rank:
            return self._tracer
        return NULL_TRACER

    # ------------------------------------------------------------------ faults

    def _pre_op(self, rank: int) -> None:
        """Heartbeat + fault hook — rank-local mirror of ``Network._pre_op``."""
        if rank != self.rank:
            return
        self._heartbeats[rank] = time.monotonic()
        self._op_count += 1
        self._op_counts[rank] = self._op_count
        op_index = self._op_count
        stall = 0.0
        failure: RankFailure | None = None
        fired: list[tuple[str, dict]] = []
        if self._crashed:
            failure = RankFailure(rank, op_index)
        elif self.fault_plan is not None:
            for ev in self.fault_plan.op_event(rank, op_index):
                if isinstance(ev, CrashRank):
                    self._crashed = True
                    failure = RankFailure(rank, op_index)
                    fired.append(("fault.crash", {"op_index": op_index}))
                elif isinstance(ev, StallRank):
                    stall += ev.seconds
                    fired.append(("fault.stall",
                                  {"op_index": op_index, "seconds": ev.seconds}))
        if fired and self._tracer.enabled:
            for name, attrs in fired:
                self._tracer.instant(name, cat="fault", **attrs)
        if stall > 0.0 and failure is None:
            time.sleep(stall)
        if failure is not None:
            raise failure

    def heartbeat_ages(self) -> list[float]:
        """Seconds since each rank's last MPI call, from the shared array."""
        now = time.monotonic()
        return [now - hb for hb in self._heartbeats]

    def op_count(self, rank: int) -> int:
        """MPI calls made by ``rank`` so far (shared-array mirror)."""
        return int(self._op_counts[rank])

    # ----------------------------------------------------------------- routing

    def post(self, msg: Message, acting: int | None = None) -> None:
        """Eager buffered send: local delivery or one pipe write."""
        if not (0 <= msg.dst < self.nprocs):
            raise MPIError(f"invalid destination rank {msg.dst} (nprocs={self.nprocs})")
        sender = msg.src if acting is None else acting
        self._pre_op(sender)
        self._check_abort()
        trc = self._tracer
        duplicate = False
        dropped = False
        delayed = 0.0
        if self.fault_plan is not None and sender == self.rank:
            self._send_count += 1
            ev = self.fault_plan.send_event(sender, self._send_count)
            if isinstance(ev, DropMessage):
                dropped = True
            elif isinstance(ev, DuplicateMessage):
                duplicate = True
            elif isinstance(ev, DelayMessage):
                msg.not_before = time.monotonic() + ev.seconds
                delayed = ev.seconds
        if not dropped:
            self._deliver(msg)
            if duplicate:
                self._deliver(Message(
                    src=msg.src, dst=msg.dst, tag=msg.tag, context=msg.context,
                    payload=msg.payload, not_before=msg.not_before,
                ))
        if trc.enabled:
            if dropped:
                trc.instant("fault.drop", cat="fault", dst=msg.dst, tag=msg.tag)
                return
            trc.instant("mpi.send", cat="mpi", dst=msg.dst, tag=msg.tag,
                        context=msg.context)
            if duplicate:
                trc.instant("fault.duplicate", cat="fault", dst=msg.dst,
                            tag=msg.tag)
            if delayed:
                trc.instant("fault.delay", cat="fault", dst=msg.dst,
                            tag=msg.tag, seconds=delayed)

    def _deliver(self, msg: Message) -> None:
        if msg.dst == self.rank:
            with self._cond:
                msg.seq = self._next_seq
                self._next_seq += 1
                self._mailbox.append(msg)
                self._cond.notify_all()
            return
        # Each delivery encodes independently so a duplicated send owns its
        # own arena slot (or shm block) — releases/unlinks are per delivery.
        frame = None
        arena = self._arena
        if arena is not None:
            overflows = arena.stats.overflows
            frame = pack_arena_message(msg, arena)
            if frame is None and arena.stats.overflows > overflows \
                    and self._tracer.enabled:
                self._tracer.instant("arena.overflow", cat="mpi",
                                     dst=msg.dst, tag=msg.tag)
        if frame is None:
            wire = Message(
                src=msg.src, dst=msg.dst, tag=msg.tag, context=msg.context,
                payload=encode_payload(
                    msg.payload, self._shm_prefix, next(self._block_seq)),
                not_before=msg.not_before,
            )
            frame = bytes([FRAME_PICKLE]) + pickle.dumps(wire)
        try:
            self._outbound[msg.dst].send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            # A closed pipe means the destination process exited.  If it
            # exited *failing*, the parent's abort broadcast is already on
            # its way but may not have reached this rank yet — give it a
            # grace window so peers report AbortError (thread-backend
            # semantics), not a spurious send failure.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                self._check_abort()  # raises AbortError once notified
                time.sleep(0.01)
            self._check_abort()
            raise MPIError(
                f"rank {self.rank}: send to rank {msg.dst} failed: {exc!r}"
            ) from exc

    def probe(self, dst: int, context: int, source: int, tag: int) -> Optional[Message]:
        """Non-destructively return the first deliverable match, or ``None``."""
        with self._cond:
            self._check_abort()
            now = time.monotonic()
            for msg in self._mailbox:
                if matches(msg, context, source, tag) and msg.not_before <= now:
                    return msg
        return None

    def match(
        self,
        dst: int,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        block: bool = True,
    ) -> Optional[Message]:
        """Mailbox scan with the exact semantics of ``Network.match``."""
        budget = self.op_timeout if timeout is None else timeout
        self._pre_op(dst)
        deadline = time.monotonic() + budget
        trc = self._tracer
        with self._cond:
            while True:
                self._check_abort()
                now = time.monotonic()
                box = self._mailbox
                next_ready: float | None = None
                for i, msg in enumerate(box):
                    if matches(msg, context, source, tag):
                        if msg.not_before <= now:
                            del box[i]
                            if trc.enabled:
                                trc.instant("mpi.recv", cat="mpi",
                                            src=msg.src, tag=msg.tag,
                                            context=msg.context)
                            return msg
                        if next_ready is None or msg.not_before < next_ready:
                            next_ready = msg.not_before
                if not block:
                    return None
                remaining = deadline - now
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {dst} timed out after {budget:.0f}s waiting for "
                        f"(source={source}, tag={tag}, context={context})"
                    )
                # Cap the wait so a lost control message can't hide the
                # shared abort flag for long.
                wait_for = min(remaining, 0.25)
                if next_ready is not None:
                    wait_for = min(wait_for, max(next_ready - now, 0.001))
                self._cond.wait(timeout=wait_for)

    # ---------------------------------------------------------------- contexts

    def allocate_context(self, key: tuple) -> int:
        """Derive the context id for ``key`` without cross-rank state.

        The thread backend hands out ids from a shared counter; processes
        have no shared counter, but every member of a context-creating
        collective computes the same ``key``, so a stable hash of the key
        is just as collectively-agreed.  Ids never collide with the world
        context (0) and collide with each other only at 2^-63 odds.
        """
        digest = hashlib.blake2b(
            pickle.dumps(key, protocol=4), digest_size=8).digest()
        return int.from_bytes(digest, "big") >> 1 or 1

    # ------------------------------------------------------------------ stats

    def pending_count(self, dst: int | None = None) -> int:
        """Undelivered messages in *this rank's* mailbox (peers are remote)."""
        with self._cond:
            if dst is not None and dst != self.rank:
                return 0
            return len(self._mailbox)

    @property
    def arena_enabled(self) -> bool:
        """True when bulk payloads ride the shared arena on this rank."""
        return self._arena is not None

    def arena_stats(self) -> dict:
        """This rank's arena counters (empty dict when the arena is off)."""
        return self._arena.stats.snapshot() if self._arena is not None else {}


def _child_main(
    rank: int,
    nprocs: int,
    fn: Callable,
    args: tuple,
    kwargs: dict,
    inbound: list,
    outbound: dict,
    ctrl_r,
    exit_w,
    heartbeats,
    op_counts,
    abort_flag,
    op_timeout: float,
    fault_plan: FaultPlan | None,
    trace,
    shm_prefix: str,
    arena_bytes: int = 0,
    dead_flags=None,
) -> None:
    """Entry point of one forked rank process."""
    from repro.mpi.comm import Comm

    tracer = trace.tracer(rank) if trace is not None else NULL_TRACER
    if tracer.enabled:
        # The fork copied the session's history (earlier supervised
        # attempts).  Start from empty buffers so the exit envelope ships a
        # pure delta and nothing is double-counted when the parent merges.
        tracer.events = []
        tracer.metrics = MetricsRegistry()
        events_base_seq = tracer._seq
    fired_base = fault_plan.fired_count() if fault_plan is not None else 0
    arena = (Arena(shm_prefix, rank, nprocs, arena_bytes)
             if arena_bytes > 0 and nprocs > 1 else None)
    net = ProcessNetwork(
        rank, nprocs, inbound, outbound, ctrl_r, exit_w,
        heartbeats, op_counts, abort_flag, op_timeout, fault_plan, tracer,
        shm_prefix, dead_flags, arena,
    )
    comm = Comm(net, rank, list(range(nprocs)), context=0)
    set_current_tracer(tracer)
    if tracer.enabled:
        tracer.begin("rank", cat="lifecycle", nprocs=nprocs)
    result: Any = None
    error: BaseException | None = None
    try:
        result = fn(comm, *args, **kwargs)
    except AbortError as exc:
        error = exc
        if tracer.enabled:
            tracer.instant("rank.abort", cat="lifecycle", error=repr(exc))
    except DegradedRankLoss as exc:
        # This rank died mid-map but the master routed around it: record
        # the loss, never abort — survivors are finishing the job.
        error = exc
        if tracer.enabled:
            tracer.instant("rank.degraded", cat="lifecycle", error=repr(exc))
    except BaseException as exc:  # noqa: BLE001 - must propagate anything
        error = exc
        if tracer.enabled:
            tracer.instant("rank.error", cat="lifecycle", error=repr(exc))
        net.abort(exc)
    finally:
        if tracer.enabled:
            tracer.unwind()
        set_current_tracer(None)
    envelope = {
        "result": result,
        "error": error,
        "fired": fault_plan.fired_since(fired_base) if fault_plan is not None else [],
        "op_count": net._op_count,
        "trace": None,
        "arena": arena.stats.snapshot() if arena is not None else None,
    }
    if tracer.enabled and arena is not None:
        # Ship the per-rank totals through the metrics registry too, so
        # trace consumers see hit/overflow/peak-residency without having
        # to pay per-send counter bumps on the hot path.
        stats = arena.stats
        tracer.metrics.counter("arena.sends").inc(stats.sends)
        tracer.metrics.counter("arena.send_bytes").inc(stats.send_bytes)
        tracer.metrics.counter("arena.overflows").inc(stats.overflows)
        tracer.metrics.counter("arena.recv_views").inc(stats.recv_views)
        tracer.metrics.counter("arena.peak_resident_bytes").inc(
            stats.peak_resident_bytes)
    if tracer.enabled:
        envelope["trace"] = {
            "events": tracer.events,
            "seq": tracer._seq,
            "base_seq": events_base_seq,
            "last_ts": tracer._last_ts,
            "dropped": tracer.dropped_events,
            "spilled": tracer.spilled_events,
            "metrics": tracer.metrics.snapshot(),
        }
    try:
        frame = pickle.dumps(("exit", rank, envelope))
    except Exception as exc:
        envelope["result"] = None
        envelope["error"] = _picklable_exc(error) if error is not None else MPIError(
            f"rank {rank}: result of type "
            f"{type(result).__name__} is not picklable: {exc}")
        frame = pickle.dumps(("exit", rank, envelope))
    try:
        exit_w.send_bytes(frame)
    except Exception:  # pragma: no cover - parent already gone
        pass


class ProcessJob:
    """Parent-side coordinator for one multi-process SPMD job.

    Mirrors the surface of the thread :class:`~repro.mpi.runtime.SpmdJob`
    engine: ``run(join_timeout)`` returns per-rank results or raises the
    primary error; ``errors`` lists per-rank terminal exceptions;
    ``heartbeat_ages``/``op_count`` read the shared telemetry.
    """

    def __init__(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        op_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        trace=None,
        arena: bool | None = None,
        arena_mb: int | None = None,
    ) -> None:
        if nprocs < 1:
            raise MPIError(f"nprocs must be >= 1, got {nprocs}")
        ctx = mp.get_context("fork")
        self.nprocs = nprocs
        self.op_timeout = (op_timeout if op_timeout is not None
                           else TransportEndpoint.DEFAULT_OP_TIMEOUT)
        self.fault_plan = fault_plan
        self.trace = trace
        self._shm_prefix = f"reprompi{os.getpid()}j{next(_JOB_COUNTER)}_"
        # Single-rank jobs have no pipes, so no arena either.
        self.arena_bytes = resolve_arena_bytes(arena, arena_mb) if nprocs > 1 else 0
        self._arena_rank_stats: list[Optional[dict]] = [None] * nprocs
        self._results: list[Any] = [None] * nprocs
        self._errors: list[Optional[BaseException]] = [None] * nprocs
        self._abort_exc: Optional[BaseException] = None
        now = time.monotonic()
        self._heartbeats = ctx.Array("d", [now] * nprocs, lock=False)
        self._op_counts = ctx.Array("q", [0] * nprocs, lock=False)
        self._abort_flag = ctx.Value("i", 0, lock=False)
        self._dead_flags = ctx.Array("b", [0] * nprocs, lock=False)
        # Data mesh: reader[j][i] / writer[i][j] move traffic i -> j.
        readers: list[list] = [[None] * nprocs for _ in range(nprocs)]
        writers: list[dict] = [dict() for _ in range(nprocs)]
        for i in range(nprocs):
            for j in range(nprocs):
                if i == j:
                    continue
                r, w = ctx.Pipe(duplex=False)
                readers[j][i] = r
                writers[i][j] = w
        self._ctrl_w = []
        self._exit_r = []
        self._procs = []
        for rank in range(nprocs):
            ctrl_r, ctrl_w = ctx.Pipe(duplex=False)
            exit_r, exit_w = ctx.Pipe(duplex=False)
            self._ctrl_w.append(ctrl_w)
            self._exit_r.append(exit_r)
            inbound = [c for c in readers[rank] if c is not None]
            self._procs.append(ctx.Process(
                target=_child_main,
                args=(rank, nprocs, fn, tuple(args), dict(kwargs or {}),
                      inbound, writers[rank], ctrl_r, exit_w,
                      self._heartbeats, self._op_counts, self._abort_flag,
                      self.op_timeout, fault_plan, trace, self._shm_prefix,
                      self.arena_bytes, self._dead_flags),
                name=f"mpi-rank-{rank}",
                daemon=True,
            ))

    # ----------------------------------------------------------------- control

    def _broadcast_abort(self, exc: BaseException) -> None:
        if self._abort_exc is None:
            self._abort_exc = exc
        self._abort_flag.value = 1
        safe = _picklable_exc(exc)
        for w in self._ctrl_w:
            try:
                w.send(("abort", safe))
            except Exception:  # pragma: no cover - child already gone
                pass

    def abort(self, exc: BaseException) -> None:
        """Parent-initiated abort (join-budget blowouts)."""
        self._broadcast_abort(exc)

    def heartbeat_ages(self) -> list[float]:
        """Seconds since each rank's last MPI call (shared-array read)."""
        now = time.monotonic()
        return [now - hb for hb in self._heartbeats]

    def op_count(self, rank: int) -> int:
        return int(self._op_counts[rank])

    def dead_ranks(self) -> frozenset[int]:
        """Ranks lost in degraded mode (shared-array read)."""
        return frozenset(
            r for r in range(self.nprocs) if self._dead_flags[r])

    def arena_stats(self) -> dict:
        """Job-wide arena counters aggregated over rank exit envelopes.

        Counts are summed; ``peak_resident_bytes`` reports the worst
        single rank (per-rank rings are independent budgets).  Empty when
        the arena was off or no envelope arrived.
        """
        totals: dict = {}
        for stats in self._arena_rank_stats:
            if not stats:
                continue
            for name, value in stats.items():
                if name == "peak_resident_bytes":
                    totals[name] = max(totals.get(name, 0), value)
                else:
                    totals[name] = totals.get(name, 0) + value
        return totals

    # ------------------------------------------------------------------- merge

    def _absorb_exit(self, rank: int, envelope: dict) -> None:
        self._results[rank] = envelope["result"]
        self._errors[rank] = envelope["error"]
        self._arena_rank_stats[rank] = envelope.get("arena")
        if self.fault_plan is not None and envelope["fired"]:
            self.fault_plan.absorb_fired(envelope["fired"])
        shipped = envelope["trace"]
        if self.trace is not None and shipped is not None:
            trc = self.trace.tracer(rank)
            trc.events.extend(shipped["events"])
            trc._seq = max(trc._seq, shipped["seq"])
            trc._last_ts = max(trc._last_ts, shipped["last_ts"])
            trc.dropped_events += shipped["dropped"]
            trc.spilled_events += shipped["spilled"]
            absorb_snapshot(trc.metrics, shipped["metrics"])

    # --------------------------------------------------------------------- run

    def start(self) -> None:
        """Fork all ranks without collecting them (resident-service mode).

        Pair with :meth:`wait`; one-shot callers use :meth:`run`.
        """
        if self.arena_bytes:
            # Segments must exist before fork so children attach by name;
            # they share the job prefix, so the sweep below reclaims them
            # (and any outstanding slots) even after an abnormal teardown.
            create_arena_segments(self._shm_prefix, self.nprocs, self.arena_bytes)
        for p in self._procs:
            p.start()

    def run(self, join_timeout: float | None = None) -> list[Any]:
        """Fork all ranks, collect exit envelopes, return per-rank results.

        Same failure semantics as the thread engine: the first *primary*
        error is raised (AbortError fallout is suppressed in its favour)
        and a job past the join budget is aborted with a stall report
        naming the ranks whose heartbeats went stale.
        """
        self.start()
        return self.wait(join_timeout)

    def wait(self, join_timeout: float | None = None) -> list[Any]:
        """Collect a :meth:`start`-ed job's exit envelopes (see :meth:`run`).

        The join budget runs from this call, not from :meth:`start`, so a
        resident session that served jobs for hours still gets the full
        budget to drain its ranks after the shutdown sentinel.
        """
        budget = join_timeout if join_timeout is not None else self.op_timeout * 4
        deadline = time.monotonic() + budget
        try:
            self._collect(deadline, budget)
        finally:
            for p in self._procs:
                p.join(timeout=5.0)
            for p in self._procs:
                if p.is_alive():  # pragma: no cover - hard-stuck child
                    p.terminate()
                    p.join(timeout=5.0)
            sweep_job_blocks(self._shm_prefix)
        primary = next(
            (e for e in self._errors
             if e is not None and not isinstance(e, (AbortError, DegradedRankLoss))),
            None,
        )
        if primary is not None:
            raise primary
        collateral = next(
            (e for e in self._errors if isinstance(e, AbortError)), None)
        if collateral is not None:
            raise collateral
        # Only DegradedRankLoss left (if anything): the job completed
        # degraded — survivors' results are valid, lost ranks stay None.
        return self._results

    def _collect(self, deadline: float, budget: float) -> None:
        pending = {conn: rank for rank, conn in enumerate(self._exit_r)}
        done = [False] * self.nprocs
        while not all(done):
            if time.monotonic() >= deadline:
                ages = self.heartbeat_ages()
                stalled = [r for r, age in enumerate(ages) if age > min(ages) + 1.0]
                alive = next(
                    (f"mpi-rank-{r}" for r in range(self.nprocs) if not done[r]),
                    "mpi-rank-?")
                err = MPIError(
                    f"SPMD job did not finish within {budget:.0f}s ({alive} alive; "
                    f"stalled ranks by heartbeat: {stalled or 'indeterminate'})"
                )
                self._broadcast_abort(err)
                # Grace window: let aborted ranks ship their envelopes so
                # errors/trace stay as complete as possible.
                grace = time.monotonic() + 5.0
                while not all(done) and time.monotonic() < grace:
                    self._drain(pending, done, timeout=0.25)
                raise err
            self._drain(pending, done, timeout=0.25)

    def _drain(self, pending: dict, done: list, timeout: float) -> None:
        if not pending:
            return
        try:
            ready = mp_connection.wait(list(pending), timeout=timeout)
        except OSError:  # pragma: no cover - torn-down fds
            return
        for conn in ready:
            rank = pending[conn]
            try:
                env = conn.recv()
            except (EOFError, OSError):
                del pending[conn]
                if not done[rank]:
                    exitcode = self._procs[rank].exitcode
                    err = MPIError(
                        f"rank {rank} process died without reporting "
                        f"(exitcode {exitcode})")
                    self._errors[rank] = err
                    done[rank] = True
                    self._broadcast_abort(err)
                continue
            kind = env[0]
            if kind == "abort":
                _, _rank, exc = env
                self._broadcast_abort(exc)
            elif kind == "exit":
                _, _rank, envelope = env
                self._absorb_exit(rank, envelope)
                done[rank] = True
                del pending[conn]

    @property
    def errors(self) -> list[Optional[BaseException]]:
        """Per-rank terminal exceptions (None for clean ranks)."""
        return list(self._errors)
