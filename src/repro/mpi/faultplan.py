"""Deterministic fault schedules for the in-process MPI runtime.

The paper concedes that the MPI execution model "lacks fault-tolerance"
(§II.A): one dead rank kills the whole job.  A :class:`FaultPlan` makes that
failure mode *injectable* and *reproducible* so the supervised runtime
(:func:`repro.mpi.runtime.run_supervised`) has something real to survive.

Events are triggered by per-rank **operation counters**, not wall clock:

- :class:`CrashRank` — the rank raises :class:`~repro.mpi.exceptions.RankFailure`
  at its ``at_op``-th MPI call (and at every call after that: a crashed rank
  stays crashed for the rest of the attempt);
- :class:`StallRank` — the rank sleeps before its ``at_op``-th call (a slow
  rank / transient hiccup);
- :class:`DropMessage` — the rank's ``nth_send``-th posted message is
  silently discarded (the receiver eventually times out with
  :class:`~repro.mpi.exceptions.DeadlockError`);
- :class:`DuplicateMessage` — the message is delivered twice;
- :class:`DelayMessage` — delivery is withheld for ``seconds``.

Counting by op index makes a plan's *event trace* deterministic for a given
program: the same seed replayed over the same run fires the same events.
Each event fires **once per plan**, so a plan carried across supervised
retry attempts models a transient fault — attempt 1 observes the failure,
the relaunch runs clean.  Use :meth:`FaultPlan.reset` to re-arm a plan.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Iterable, Union

__all__ = [
    "CrashRank",
    "StallRank",
    "DropMessage",
    "DuplicateMessage",
    "DelayMessage",
    "FaultPlan",
]


@dataclass(frozen=True)
class CrashRank:
    """Rank dies at its ``at_op``-th MPI operation (1-based)."""

    rank: int
    at_op: int


@dataclass(frozen=True)
class StallRank:
    """Rank sleeps ``seconds`` before its ``at_op``-th MPI operation."""

    rank: int
    at_op: int
    seconds: float


@dataclass(frozen=True)
class DropMessage:
    """The ``nth_send``-th message posted by ``rank`` is discarded (1-based)."""

    rank: int
    nth_send: int


@dataclass(frozen=True)
class DuplicateMessage:
    """The ``nth_send``-th message posted by ``rank`` is delivered twice."""

    rank: int
    nth_send: int


@dataclass(frozen=True)
class DelayMessage:
    """The ``nth_send``-th message posted by ``rank`` is delayed ``seconds``."""

    rank: int
    nth_send: int
    seconds: float


FaultEvent = Union[CrashRank, StallRank, DropMessage, DuplicateMessage, DelayMessage]


class FaultPlan:
    """A deterministic, thread-safe schedule of fault events.

    The :class:`~repro.mpi.network.Network` consults the plan from every
    rank's MPI calls; fired events are recorded into a trace retrievable with
    :meth:`trace` (sorted, so it is independent of thread interleaving).
    """

    def __init__(self, events: Iterable[FaultEvent] = (), seed: int | None = None) -> None:
        self.seed = seed
        self.events: tuple[FaultEvent, ...] = tuple(events)
        self._lock = threading.Lock()
        self._op_events: dict[tuple[int, int], list[FaultEvent]] = {}
        self._send_events: dict[tuple[int, int], FaultEvent] = {}
        self._fired: list[tuple] = []
        for ev in self.events:
            if isinstance(ev, (CrashRank, StallRank)):
                self._op_events.setdefault((ev.rank, ev.at_op), []).append(ev)
            elif isinstance(ev, (DropMessage, DuplicateMessage, DelayMessage)):
                key = (ev.rank, ev.nth_send)
                if key in self._send_events:
                    raise ValueError(f"duplicate message event for send {key}")
                self._send_events[key] = ev
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown fault event {ev!r}")

    # ------------------------------------------------------------ construction

    @classmethod
    def from_seed(
        cls,
        seed: int,
        nprocs: int,
        *,
        crashes: int = 1,
        stalls: int = 0,
        drops: int = 0,
        duplicates: int = 0,
        delays: int = 0,
        op_window: tuple[int, int] = (5, 80),
        max_seconds: float = 0.02,
    ) -> "FaultPlan":
        """Generate a reproducible mixed schedule from one integer seed.

        Ops/sends are drawn uniformly from ``op_window``; the same
        ``(seed, nprocs, counts)`` always produces the same plan.
        """
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        lo, hi = op_window
        if not (1 <= lo <= hi):
            raise ValueError(f"invalid op_window {op_window}")
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for _ in range(crashes):
            events.append(CrashRank(rng.randrange(nprocs), rng.randint(lo, hi)))
        for _ in range(stalls):
            events.append(
                StallRank(rng.randrange(nprocs), rng.randint(lo, hi), rng.uniform(0, max_seconds))
            )
        used: set[tuple[int, int]] = set()

        def fresh_send() -> tuple[int, int]:
            while True:
                key = (rng.randrange(nprocs), rng.randint(lo, hi))
                if key not in used:
                    used.add(key)
                    return key

        for _ in range(drops):
            events.append(DropMessage(*fresh_send()))
        for _ in range(duplicates):
            events.append(DuplicateMessage(*fresh_send()))
        for _ in range(delays):
            events.append(DelayMessage(*fresh_send(), rng.uniform(0, max_seconds)))
        return cls(events, seed=seed)

    @classmethod
    def parse(cls, spec: str, nprocs: int) -> "FaultPlan":
        """Parse a CLI fault spec into a plan.

        Two forms, tokens comma-separated:

        - explicit events: ``crash=RANK@OP``, ``stall=RANK@OP:SECS``,
          ``drop=RANK@N``, ``dup=RANK@N``, ``delay=RANK@N:SECS``;
        - seeded: ``seed=S[,crashes=N][,stalls=N][,drops=N][,dups=N][,delays=N]``.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fault spec")
        tokens = [t.strip() for t in spec.split(",") if t.strip()]
        events: list[FaultEvent] = []
        seeded: dict[str, int] = {}

        def rank_at(arg: str) -> tuple[int, int]:
            rank_s, at_s = arg.split("@", 1)
            return int(rank_s), int(at_s)

        for tok in tokens:
            if "=" not in tok:
                raise ValueError(f"bad fault token {tok!r} (expected key=value)")
            key, _, arg = tok.partition("=")
            key = key.strip()
            if key in ("seed", "crashes", "stalls", "drops", "dups", "delays"):
                seeded[key] = int(arg)
            elif key == "crash":
                events.append(CrashRank(*rank_at(arg)))
            elif key == "drop":
                events.append(DropMessage(*rank_at(arg)))
            elif key == "dup":
                events.append(DuplicateMessage(*rank_at(arg)))
            elif key in ("stall", "delay"):
                head, _, secs = arg.partition(":")
                if not secs:
                    raise ValueError(f"{key} needs RANK@N:SECONDS, got {tok!r}")
                rank, at = rank_at(head)
                if key == "stall":
                    events.append(StallRank(rank, at, float(secs)))
                else:
                    events.append(DelayMessage(rank, at, float(secs)))
            else:
                raise ValueError(f"unknown fault token {tok!r}")
        if events and seeded:
            raise ValueError("fault spec mixes explicit events with seed= form")
        if seeded:
            if "seed" not in seeded:
                raise ValueError("seeded fault spec needs seed=")
            return cls.from_seed(
                seeded["seed"],
                nprocs,
                crashes=seeded.get("crashes", 1),
                stalls=seeded.get("stalls", 0),
                drops=seeded.get("drops", 0),
                duplicates=seeded.get("dups", 0),
                delays=seeded.get("delays", 0),
            )
        plan = cls(events)
        for ev in plan.events:
            if not (0 <= ev.rank < nprocs):
                raise ValueError(f"fault event {ev} targets rank outside 0..{nprocs - 1}")
        return plan

    # ---------------------------------------------------------- runtime hooks

    def op_event(self, rank: int, op_index: int) -> list[FaultEvent]:
        """Events fired by ``rank``'s ``op_index``-th MPI call (each fires once)."""
        with self._lock:
            events = self._op_events.pop((rank, op_index), [])
            for ev in events:
                kind = "crash" if isinstance(ev, CrashRank) else "stall"
                self._fired.append((kind, rank, op_index))
            return events

    def send_event(self, rank: int, send_index: int) -> FaultEvent | None:
        """The event (if any) attached to ``rank``'s ``send_index``-th post."""
        with self._lock:
            ev = self._send_events.pop((rank, send_index), None)
            if ev is not None:
                kind = {
                    DropMessage: "drop",
                    DuplicateMessage: "duplicate",
                    DelayMessage: "delay",
                }[type(ev)]
                self._fired.append((kind, rank, send_index))
            return ev

    def absorb_fired(self, entries: Iterable[tuple]) -> None:
        """Mark ``entries`` (trace tuples from a forked copy) as consumed.

        The process transport hands each rank a fork-copied plan; events the
        child fired are reported back in its exit envelope and absorbed here
        so the parent's plan keeps the fire-once-per-plan contract (and the
        combined :meth:`trace`) across supervised retry attempts.
        """
        with self._lock:
            for entry in entries:
                kind, rank, idx = entry
                if kind in ("crash", "stall"):
                    events = self._op_events.get((rank, idx))
                    if events is not None:
                        # Pop only the matching event kind; a crash and a
                        # stall can share one (rank, op) key.
                        cls = CrashRank if kind == "crash" else StallRank
                        events[:] = [ev for ev in events if not isinstance(ev, cls)]
                        if not events:
                            del self._op_events[(rank, idx)]
                else:
                    self._send_events.pop((rank, idx), None)
                self._fired.append((kind, rank, idx))

    def fired_count(self) -> int:
        """Number of trace entries so far (children snapshot this at start)."""
        with self._lock:
            return len(self._fired)

    def fired_since(self, base: int) -> list[tuple]:
        """Trace entries appended after :meth:`fired_count` returned ``base``."""
        with self._lock:
            return list(self._fired[base:])

    # -------------------------------------------------------------- inspection

    def trace(self) -> tuple[tuple, ...]:
        """Fired events as a sorted tuple — deterministic across interleavings."""
        with self._lock:
            return tuple(sorted(self._fired))

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        with self._lock:
            return len(self._op_events) + len(self._send_events)

    def reset(self) -> None:
        """Re-arm every event and clear the trace (for repeat experiments)."""
        fresh = FaultPlan(self.events, seed=self.seed)
        with self._lock:
            self._op_events = fresh._op_events
            self._send_events = fresh._send_events
            self._fired = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(events={len(self.events)}, seed={self.seed}, pending={self.pending})"
