"""Per-job persistent shared-memory arena for the process transport.

PR 6 shipped every bulk payload through a *fresh* ``shared_memory`` block:
allocate → copy in → name-over-pipe → attach → copy out → unlink, i.e. two
shm syscalls, two mmaps and a full extra copy per message.  The fitted
Sanders machine model priced that protocol at α≈313 µs / β≈1.2 GiB/s.

This module replaces the per-message churn with one **persistent ring per
rank**, created by the parent before fork and mapped once by every child:

- the *sender* owns its segment's allocator: a first-fit, coalescing
  free-extent list over the data region plus a bounded table of
  **epoch-tagged slot headers** (``state``, ``epoch``) at the front of the
  segment;
- a send allocates a slot, copies the payload bytes in **once**, and ships
  only a fixed-width packed descriptor over the pipe
  (:func:`repro.mpi.shm.pack_arena_message`);
- the *receiver* maps the peer segment lazily (once per peer, cached) and
  surfaces the payload as **read-only numpy views** straight over the
  sender's bytes — no copy at all;
- when the receiver's views are garbage-collected, a ``weakref.finalize``
  hook writes ``FREE`` into the slot's shared header; the sender reclaims
  the extent on a later allocation by sweeping its outstanding headers —
  slots are reused without any unlink/reattach churn.

Allocation failure (ring full, slot table exhausted, payload larger than
the ring) is never an error: the caller falls back to the PR-6 per-message
path, so correctness does not depend on arena hits.  Segments share the
job's shm name prefix, so the parent's abnormal-teardown sweep
(:func:`repro.mpi.shm.sweep_job_blocks`) reclaims them even when a child
crashed mid-exchange with slots outstanding.

Single-writer discipline keeps the headers coherent without locks: the
sender is the only writer of a slot's ``epoch`` and the only one to set
``state=BUSY``; the receiver is the only one to set ``state=FREE``, and
only while the slot is outstanding.  Both fields are aligned 8-byte
stores, atomic on every platform Python runs on.
"""

from __future__ import annotations

import bisect
import ctypes
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ARENA_DEFAULT_MB",
    "ARENA_ENV_VAR",
    "Arena",
    "ArenaStats",
    "create_arena_segments",
    "resolve_arena_bytes",
    "segment_name",
]

#: Default per-rank ring size when the arena is enabled without an explicit
#: budget.  64 MiB holds several columnar pages per peer at the default
#: pagesize with room for pairwise-round double buffering.
ARENA_DEFAULT_MB = 64

#: Environment override: ring MiB per rank; ``0`` disables the arena.
ARENA_ENV_VAR = "REPRO_MPI_ARENA_MB"

#: Slot-header table entries per segment.  Each outstanding message holds
#: one slot, and receiver-side residency is bounded by the columnar
#: pagesize spill, so slot exhaustion (-> overflow fallback) is rare.
MAX_SLOTS = 1024

_STATE_FREE = 0
_STATE_BUSY = 1

#: Header table: MAX_SLOTS x (state u64, epoch u64), then the data region
#: starts on a page boundary.
_HDR_BYTES = -(-MAX_SLOTS * 16 // 4096) * 4096

#: Payload alignment inside the data region (matches numpy's own default
#: allocation alignment; keeps SIMD-friendly views).
_ALIGN = 64


def segment_name(prefix: str, rank: int) -> str:
    """Arena segment name for ``rank`` under a job's shm ``prefix``."""
    return f"{prefix}arena{rank}"


def resolve_arena_bytes(arena: bool | None, arena_mb: int | None) -> int:
    """Resolve the per-rank ring size in bytes (0 = arena disabled).

    Precedence: explicit ``arena=False`` kills it; an explicit ``arena_mb``
    wins over the ``$REPRO_MPI_ARENA_MB`` environment default; the arena is
    **on by default** at :data:`ARENA_DEFAULT_MB` MiB.
    """
    if arena is False:
        return 0
    mb: int | None = arena_mb
    if mb is None:
        raw = os.environ.get(ARENA_ENV_VAR, "").strip()
        if raw:
            try:
                mb = int(raw)
            except ValueError:
                raise ValueError(
                    f"${ARENA_ENV_VAR} must be an integer (MiB), got {raw!r}")
    if mb is None:
        mb = ARENA_DEFAULT_MB
    if mb <= 0:
        # arena=True with an explicit 0 budget still means "on": fall back
        # to the default size rather than a zero-byte ring.
        return ARENA_DEFAULT_MB << 20 if arena is True else 0
    return mb << 20


def _untrack(name: str) -> None:
    """Detach a segment from resource_tracker (job teardown owns it)."""
    from repro.mpi.shm import _untrack as untrack

    untrack(name)


def create_arena_segments(prefix: str, nprocs: int, data_bytes: int) -> None:
    """Parent-side, pre-fork: create one zero-initialised ring per rank."""
    for rank in range(nprocs):
        seg = shared_memory.SharedMemory(
            create=True, size=_HDR_BYTES + data_bytes,
            name=segment_name(prefix, rank))
        _untrack(seg.name)
        seg.close()


class ArenaStats:
    """Always-on plain-int counters (no tracer dependency, ~free to bump).

    Sender-side fields are only touched by the main thread, receiver-side
    fields only by the receiver thread, so no locking is needed.
    """

    __slots__ = (
        "sends", "send_bytes", "overflows", "overflow_bytes",
        "resident_bytes", "peak_resident_bytes", "recv_views", "recv_bytes",
    )

    def __init__(self) -> None:
        self.sends = 0              # messages packed into a slot
        self.send_bytes = 0
        self.overflows = 0          # eligible payloads the ring couldn't hold
        self.overflow_bytes = 0
        self.resident_bytes = 0     # bytes in outstanding (unreleased) slots
        self.peak_resident_bytes = 0
        self.recv_views = 0         # zero-copy views handed to this rank
        self.recv_bytes = 0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Arena:
    """One rank's endpoint of the job arena: own ring + cached peer maps."""

    def __init__(self, prefix: str, rank: int, nprocs: int, data_bytes: int):
        self.rank = rank
        self.nprocs = nprocs
        self.data_bytes = int(data_bytes)
        self._prefix = prefix
        self._own = shared_memory.SharedMemory(name=segment_name(prefix, rank))
        # Attaching re-registers with this process's resource tracker on
        # 3.11+; the parent sweep owns the lifetime, so unregister again.
        _untrack(self._own.name)
        # Header words as a flat u64 memoryview — index ``slot*2`` is the
        # state, ``slot*2 + 1`` the epoch.  Plain-int memoryview indexing
        # is several times cheaper than numpy scalar indexing on the
        # per-message path.
        self._hdr = self._own.buf.cast("Q")
        self._own_buf = self._own.buf
        # Free space as a sorted, coalescing extent list + a slot free-list.
        self._extents: list[list[int]] = [[0, self.data_bytes]]
        self._free_slots = list(range(MAX_SLOTS - 1, -1, -1))
        self._outstanding: dict[int, tuple[int, int]] = {}
        # rank -> (segment, header ndarray, whole-data-region u8 ndarray)
        self._peers: dict[int, tuple] = {}
        self.stats = ArenaStats()

    # ------------------------------------------------------------- sender side

    def alloc(self, nbytes: int) -> tuple[int, int, int] | None:
        """Reserve a slot for ``nbytes``; ``(slot, epoch, offset)`` or None.

        None means overflow: the ring (or slot table) can't hold the
        payload right now — the caller must take the per-message fallback.
        """
        need = max(int(nbytes), 1)
        need = -(-need // _ALIGN) * _ALIGN
        self._reclaim()
        stats = self.stats
        if self._free_slots:
            for ext in self._extents:
                if ext[1] >= need:
                    offset = ext[0]
                    ext[0] += need
                    ext[1] -= need
                    if ext[1] == 0:
                        self._extents.remove(ext)
                    slot = self._free_slots.pop()
                    hdr = self._hdr
                    epoch = hdr[slot * 2 + 1] + 1
                    hdr[slot * 2 + 1] = epoch
                    hdr[slot * 2] = _STATE_BUSY
                    self._outstanding[slot] = (offset, need)
                    stats.sends += 1
                    stats.send_bytes += int(nbytes)
                    stats.resident_bytes += need
                    if stats.resident_bytes > stats.peak_resident_bytes:
                        stats.peak_resident_bytes = stats.resident_bytes
                    return slot, epoch, offset
        stats.overflows += 1
        stats.overflow_bytes += int(nbytes)
        return None

    def _reclaim(self) -> None:
        """Return receiver-freed slots to the extent list (sender side)."""
        if not self._outstanding:
            return
        hdr = self._hdr
        freed = [slot for slot in self._outstanding
                 if hdr[slot * 2] == _STATE_FREE]
        for slot in freed:
            offset, size = self._outstanding.pop(slot)
            self._free_slots.append(slot)
            self.stats.resident_bytes -= size
            self._insert_extent(offset, size)

    def _insert_extent(self, offset: int, size: int) -> None:
        exts = self._extents
        i = bisect.bisect_left(exts, [offset, 0])
        # Merge with the predecessor and/or successor extent.
        if i > 0 and exts[i - 1][0] + exts[i - 1][1] == offset:
            exts[i - 1][1] += size
            if i < len(exts) and exts[i - 1][0] + exts[i - 1][1] == exts[i][0]:
                exts[i - 1][1] += exts[i][1]
                del exts[i]
            return
        if i < len(exts) and offset + size == exts[i][0]:
            exts[i][0] = offset
            exts[i][1] += size
            return
        exts.insert(i, [offset, size])

    def own_slice(self, offset: int, nbytes: int) -> memoryview:
        """Writable view of ``nbytes`` of this rank's data region."""
        start = _HDR_BYTES + offset
        return self._own_buf[start:start + nbytes]

    # ----------------------------------------------------------- receiver side

    def _peer(self, rank: int) -> tuple:
        cached = self._peers.get(rank)
        if cached is None:
            seg = shared_memory.SharedMemory(name=segment_name(self._prefix, rank))
            _untrack(seg.name)
            cached = (seg, seg.buf.cast("Q"))
            self._peers[rank] = cached
        return cached

    def view(self, src: int, slot: int, epoch: int,
             offset: int, nbytes: int) -> np.ndarray:
        """Zero-copy u8 window over a peer's slot, released on GC.

        The wrapper is built over a per-slot ctypes *anchor* rather than a
        plain slice: numpy collapses view base chains down to the first
        non-ndarray buffer owner, so every typed view carved out of the
        wrapper transitively keeps the anchor — and only the anchor —
        alive.  When the last view is collected, the anchor's finalizer
        stamps ``FREE`` into the sender's slot header so the sender can
        reuse the extent.  The wrapper is read-only and so is everything
        derived from it.
        """
        seg, hdr = self._peer(src)
        anchor = (ctypes.c_char * max(nbytes, 1)).from_buffer(
            seg.buf, _HDR_BYTES + offset)
        wrapper = np.frombuffer(anchor, dtype=np.uint8, count=nbytes)
        wrapper.flags.writeable = False
        weakref.finalize(anchor, _release_slot, hdr, slot, epoch)
        self.stats.recv_views += 1
        self.stats.recv_bytes += nbytes
        return wrapper

    # ---------------------------------------------------------------- teardown

    def close(self) -> None:  # pragma: no cover - exercised at process exit
        """Unmap everything (no unlink — the parent sweep owns the names).

        Only safe once no views are live; rank processes simply exit and
        let the OS unmap, so this exists for tests.
        """
        self._peers, peers = {}, self._peers
        self._own_buf = None
        for seg, hdr in peers.values():
            try:
                hdr.release()
                seg.close()
            except Exception:
                pass
        try:
            self._hdr.release()
            self._own.close()
        except Exception:
            pass


def _release_slot(hdr, slot: int, epoch: int) -> None:
    """Receiver-side finalizer: hand the slot back to its sender."""
    try:
        if hdr[slot * 2 + 1] == epoch:
            hdr[slot * 2] = _STATE_FREE
    except Exception:  # pragma: no cover - segment already unmapped at exit
        pass
