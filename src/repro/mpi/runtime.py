"""SPMD launcher: run one Python callable on N in-process ranks.

Each rank is a daemon thread executing ``fn(comm, *args, **kwargs)``.  The
first rank to raise aborts the whole job (MPI_Abort semantics): blocked peers
are woken with :class:`~repro.mpi.exceptions.AbortError` and the original
exception is re-raised in the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Sequence

from repro.mpi.comm import Comm
from repro.mpi.exceptions import AbortError, MPIError
from repro.mpi.network import Network

__all__ = ["run_spmd", "SpmdJob"]


class SpmdJob:
    """A launched SPMD job.  Use :func:`run_spmd` unless you need the handle."""

    def __init__(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        op_timeout: float | None = None,
    ) -> None:
        if nprocs < 1:
            raise MPIError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.network = Network(nprocs, op_timeout=op_timeout)
        self._results: list[Any] = [None] * nprocs
        self._errors: list[Optional[BaseException]] = [None] * nprocs
        self._threads = [
            threading.Thread(
                target=self._run_rank,
                args=(rank, fn, tuple(args), dict(kwargs or {})),
                name=f"mpi-rank-{rank}",
                daemon=True,
            )
            for rank in range(nprocs)
        ]

    def _run_rank(self, rank: int, fn: Callable, args: tuple, kwargs: dict) -> None:
        comm = Comm(self.network, rank, list(range(self.nprocs)), context=0)
        try:
            self._results[rank] = fn(comm, *args, **kwargs)
        except AbortError as exc:
            # Collateral damage from another rank's failure; keep for debugging
            # but do not treat as the primary error.
            self._errors[rank] = exc
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            self._errors[rank] = exc
            self.network.abort(exc)

    def run(self, join_timeout: float | None = None) -> list[Any]:
        """Start all ranks, join them, and return per-rank results.

        Raises the first *primary* rank failure (AbortError fallout from other
        ranks is suppressed in its favour).
        """
        for t in self._threads:
            t.start()
        budget = join_timeout if join_timeout is not None else self.network.op_timeout * 4
        for t in self._threads:
            t.join(timeout=budget)
            if t.is_alive():
                err = MPIError(f"SPMD job did not finish within {budget:.0f}s ({t.name} alive)")
                self.network.abort(err)
                raise err
        primary = next(
            (e for e in self._errors if e is not None and not isinstance(e, AbortError)),
            None,
        )
        if primary is not None:
            raise primary
        collateral = next((e for e in self._errors if e is not None), None)
        if collateral is not None:  # pragma: no cover - defensive
            raise collateral
        return self._results


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    op_timeout: float | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks; return results.

    The returned list is indexed by rank.  This is the moral equivalent of
    ``mpirun -np N python prog.py`` for this repository.
    """
    return SpmdJob(nprocs, fn, args, kwargs, op_timeout=op_timeout).run()
