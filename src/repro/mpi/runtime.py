"""SPMD launcher and supervisor: run one Python callable on N in-process ranks.

Each rank is a daemon thread executing ``fn(comm, *args, **kwargs)``.  The
first rank to raise aborts the whole job (MPI_Abort semantics): blocked peers
are woken with :class:`~repro.mpi.exceptions.AbortError` and the original
exception is re-raised in the caller.

On top of that whole-job-dies model sits :func:`run_supervised`: a
supervisor that watches per-rank heartbeats, classifies failures
(rank crash / timeout / abort fallout / application error) and relaunches
the job with exponential backoff under a bounded attempt budget — the
recovery loop the paper's §II.A says plain MPI lacks.  Combined with the
drivers' checkpoints (``repro.core.checkpoint``) a relaunch resumes instead
of restarting from scratch.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.mpi.comm import Comm
from repro.mpi.exceptions import (
    AbortError,
    DeadlockError,
    DegradedRankLoss,
    MPIError,
    RankFailure,
)
from repro.mpi.faultplan import FaultPlan
from repro.mpi.network import Network
from repro.obs.trace import set_current_tracer

__all__ = [
    "run_spmd",
    "SpmdJob",
    "RetryPolicy",
    "AttemptRecord",
    "SupervisedOutcome",
    "SupervisionExhausted",
    "classify_failure",
    "resolve_backend",
    "run_supervised",
]

#: Transport backends selectable per job.  "thread" is the original
#: in-process router (deterministic, GIL-bound — the parity oracle);
#: "process" forks one OS process per rank for real multi-core compute.
BACKENDS = ("thread", "process")


def resolve_backend(backend: str | None) -> str:
    """Validate a backend name, defaulting from ``REPRO_MPI_BACKEND``.

    The environment default lets whole suites or CI jobs flip backends
    without touching every ``run_spmd`` call site.
    """
    if backend is None:
        backend = os.environ.get("REPRO_MPI_BACKEND", "thread").strip() or "thread"
    if backend not in BACKENDS:
        raise MPIError(
            f"unknown transport backend {backend!r} (expected one of {BACKENDS})")
    return backend


class SpmdJob:
    """A launched SPMD job.  Use :func:`run_spmd` unless you need the handle.

    ``backend`` picks the transport: ``"thread"`` (default) runs ranks as
    daemon threads over one shared :class:`~repro.mpi.network.Network`;
    ``"process"`` forks one OS process per rank over the
    :class:`~repro.mpi.process.ProcessJob` engine.  Both expose the same
    ``run``/``errors`` surface and failure semantics.
    """

    def __init__(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        op_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        trace=None,
        backend: str | None = None,
        arena: bool | None = None,
        arena_mb: int | None = None,
    ) -> None:
        if nprocs < 1:
            raise MPIError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.trace = trace
        self.backend = resolve_backend(backend)
        self._results: list[Any] = [None] * nprocs
        self._errors: list[Optional[BaseException]] = [None] * nprocs
        if self.backend == "process":
            from repro.mpi.process import ProcessJob

            self._engine = ProcessJob(
                nprocs, fn, args, kwargs,
                op_timeout=op_timeout, fault_plan=fault_plan, trace=trace,
                arena=arena, arena_mb=arena_mb,
            )
            # The parent-side coordinator doubles as the telemetry surface
            # (heartbeat_ages / op_count / abort), mirroring the shared
            # Network object of the thread backend.
            self.network = self._engine
            return
        self._engine = None
        self.network = Network(
            nprocs, op_timeout=op_timeout, fault_plan=fault_plan, trace=trace
        )
        self._threads = [
            threading.Thread(
                target=self._run_rank,
                args=(rank, fn, tuple(args), dict(kwargs or {})),
                name=f"mpi-rank-{rank}",
                daemon=True,
            )
            for rank in range(nprocs)
        ]

    def _run_rank(self, rank: int, fn: Callable, args: tuple, kwargs: dict) -> None:
        comm = Comm(self.network, rank, list(range(self.nprocs)), context=0)
        trc = self.network.tracer_for(rank)
        set_current_tracer(trc)
        if trc.enabled:
            trc.begin("rank", cat="lifecycle", nprocs=self.nprocs)
        try:
            self._results[rank] = fn(comm, *args, **kwargs)
        except AbortError as exc:
            # Collateral damage from another rank's failure; keep for debugging
            # but do not treat as the primary error.
            self._errors[rank] = exc
            if trc.enabled:
                trc.instant("rank.abort", cat="lifecycle", error=repr(exc))
        except DegradedRankLoss as exc:
            # The rank died mid-map but the master routed around it: record
            # the loss, never abort — survivors are finishing the job.
            self._errors[rank] = exc
            if trc.enabled:
                trc.instant("rank.degraded", cat="lifecycle", error=repr(exc))
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            self._errors[rank] = exc
            if trc.enabled:
                trc.instant("rank.error", cat="lifecycle", error=repr(exc))
            self.network.abort(exc)
        finally:
            if trc.enabled:
                # Closes the lifecycle span and anything an exception left
                # open, so crashed ranks still export balanced traces.
                trc.unwind()
            set_current_tracer(None)

    def start(self) -> None:
        """Launch all ranks without waiting for them (resident-service mode).

        A long-lived job (``repro.serve``'s rank session) starts here and is
        joined later by :meth:`wait` — typically from a watcher thread —
        once the shutdown sentinel has been enqueued.  One-shot callers use
        :meth:`run`, which is ``start()`` + ``wait()``.
        """
        if self._engine is not None:
            self._engine.start()
            return
        for t in self._threads:
            t.start()

    def run(self, join_timeout: float | None = None) -> list[Any]:
        """Start all ranks, join them, and return per-rank results.

        Raises the first *primary* rank failure (AbortError fallout from other
        ranks is suppressed in its favour).  A job that blows the join budget
        is aborted with a report naming the ranks whose heartbeats went
        stale — the supervisor's stall detection.
        """
        self.start()
        return self.wait(join_timeout)

    def wait(self, join_timeout: float | None = None) -> list[Any]:
        """Join a :meth:`start`-ed job and return per-rank results.

        The join budget defaults to ``op_timeout * 4``; resident sessions
        pass their own (longer) budget since a service may legitimately run
        for hours between :meth:`start` and :meth:`wait`.
        """
        if self._engine is not None:
            try:
                return self._engine.wait(join_timeout)
            finally:
                self._errors = self._engine.errors
        budget = join_timeout if join_timeout is not None else self.network.op_timeout * 4
        deadline = time.monotonic() + budget
        for t in self._threads:
            while t.is_alive():
                t.join(timeout=min(0.25, max(deadline - time.monotonic(), 0.01)))
                if t.is_alive() and time.monotonic() >= deadline:
                    ages = self.network.heartbeat_ages()
                    stalled = [r for r, age in enumerate(ages) if age > min(ages) + 1.0]
                    err = MPIError(
                        f"SPMD job did not finish within {budget:.0f}s ({t.name} alive; "
                        f"stalled ranks by heartbeat: {stalled or 'indeterminate'})"
                    )
                    self.network.abort(err)
                    raise err
        primary = next(
            (e for e in self._errors
             if e is not None and not isinstance(e, (AbortError, DegradedRankLoss))),
            None,
        )
        if primary is not None:
            raise primary
        collateral = next(
            (e for e in self._errors if isinstance(e, AbortError)), None)
        if collateral is not None:  # pragma: no cover - defensive
            raise collateral
        # Only DegradedRankLoss left (if anything): the job completed
        # degraded — survivors' results are valid, lost ranks stay None.
        return self._results

    @property
    def errors(self) -> list[Optional[BaseException]]:
        """Per-rank terminal exceptions (None for clean ranks)."""
        return list(self._errors)


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    op_timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    trace=None,
    backend: str | None = None,
    arena: bool | None = None,
    arena_mb: int | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks; return results.

    The returned list is indexed by rank.  This is the moral equivalent of
    ``mpirun -np N python prog.py`` for this repository.  ``trace`` is an
    optional :class:`~repro.obs.trace.TraceSession` whose per-rank tracers
    record the run; ``backend`` selects the transport (``"thread"`` or
    ``"process"``, default from ``REPRO_MPI_BACKEND``).  On the process
    backend rank results cross a pipe and must be picklable, and bulk
    payloads ride a per-job shared arena (on by default; ``arena=False``
    restores the PR-6 per-message path, ``arena_mb`` / the
    ``$REPRO_MPI_ARENA_MB`` environment variable size the per-rank ring).
    The thread backend ignores both arena knobs.
    """
    return SpmdJob(
        nprocs, fn, args, kwargs,
        op_timeout=op_timeout, fault_plan=fault_plan, trace=trace,
        backend=backend, arena=arena, arena_mb=arena_mb,
    ).run()


# --------------------------------------------------------------- supervision


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for supervised relaunches.

    ``jitter="decorrelated"`` switches the schedule to decorrelated jitter
    (each delay drawn uniformly from ``[base, 3 x previous delay]``), so a
    fleet of supervisors relaunching after a correlated failure does not
    synchronise into retry storms.  ``backoff_max`` caps the *jittered*
    delay, not just the exponential base.  ``seed`` pins the RNG for
    deterministic tests.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: str = "none"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0 or self.backoff_factor < 1:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(
                f"jitter must be 'none' or 'decorrelated', got {self.jitter!r}")

    def backoff(self, attempt: int) -> float:
        """Jitter-free delay after failed attempt ``attempt`` (the old API)."""
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1), self.backoff_max)

    def backoff_schedule(self) -> "_BackoffSchedule":
        """A stateful delay generator honouring the jitter mode."""
        return _BackoffSchedule(self)


class _BackoffSchedule:
    """Stateful backoff delays for one supervised job (one RNG stream)."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self._rng = random.Random(policy.seed)
        self._prev = policy.backoff_base

    def next(self, attempt: int) -> float:
        """Delay to sleep after failed attempt number ``attempt`` (1-based)."""
        p = self.policy
        if p.jitter == "decorrelated":
            # AWS-style decorrelated jitter; the cap bounds the jittered
            # value itself so delays never exceed backoff_max.
            delay = min(p.backoff_max,
                        self._rng.uniform(p.backoff_base, self._prev * 3.0))
            self._prev = max(delay, p.backoff_base)
            return delay
        return p.backoff(attempt)


@dataclass(frozen=True)
class AttemptRecord:
    """One supervised launch: how it ended and what the supervisor did next."""

    attempt: int
    outcome: str  # "ok" | "rank_failure" | "timeout" | "abort" | "mpi_error" | "error"
    error: str = ""
    backoff_seconds: float = 0.0


@dataclass
class SupervisedOutcome:
    """The supervisor's full report for one logical job."""

    results: Optional[list]
    attempts: list[AttemptRecord] = field(default_factory=list)
    fault_trace: tuple = ()

    @property
    def succeeded(self) -> bool:
        return self.results is not None

    @property
    def retries(self) -> int:
        return max(len(self.attempts) - 1, 0)

    @property
    def faults_injected(self) -> int:
        return len(self.fault_trace)


class SupervisionExhausted(MPIError):
    """All supervised attempts failed; ``outcome`` holds the attempt log."""

    def __init__(self, message: str, outcome: SupervisedOutcome) -> None:
        super().__init__(message)
        self.outcome = outcome


def classify_failure(exc: BaseException) -> str:
    """Bucket a job failure the way the supervisor reasons about it."""
    if isinstance(exc, RankFailure):
        return "rank_failure"
    if isinstance(exc, DeadlockError):
        return "timeout"
    if isinstance(exc, AbortError):
        return "abort"
    if isinstance(exc, MPIError):
        return "mpi_error"
    return "error"


def run_supervised(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    op_timeout: float | None = None,
    prepare: Callable[[int], tuple[tuple, dict]] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    trace=None,
    backend: str | None = None,
    arena: bool | None = None,
    arena_mb: int | None = None,
    **kwargs: Any,
) -> SupervisedOutcome:
    """Launch ``fn`` under supervision: detect, back off, relaunch.

    Each attempt is a fresh :class:`SpmdJob` (fresh network, mailboxes and
    heartbeats) sharing ``fault_plan`` — plan events fire once, so injected
    faults are transient across attempts, exactly the failure class retry
    can beat.  ``prepare(attempt)`` (1-based) may supply per-attempt
    ``(args, kwargs)``; drivers use it to flip their config to resume-mode
    after the first crash so relaunches continue from the last checkpoint.

    Returns a :class:`SupervisedOutcome` on success; raises
    :class:`SupervisionExhausted` once the attempt budget is spent.
    ``sleep`` is injectable for tests.
    """
    policy = retry or RetryPolicy()
    schedule = policy.backoff_schedule()
    attempts: list[AttemptRecord] = []
    last_exc: BaseException | None = None
    sup_trc = trace.supervisor if trace is not None else None
    for attempt in range(1, policy.max_attempts + 1):
        use_args, use_kwargs = (args, kwargs) if prepare is None else prepare(attempt)
        if sup_trc is not None:
            sup_trc.instant("supervisor.attempt", cat="supervisor", attempt=attempt)
        job = SpmdJob(
            nprocs, fn, use_args, use_kwargs,
            op_timeout=op_timeout, fault_plan=fault_plan, trace=trace,
            backend=backend, arena=arena, arena_mb=arena_mb,
        )
        try:
            results = job.run()
        except BaseException as exc:  # noqa: BLE001 - classify everything
            last_exc = exc
            backoff = schedule.next(attempt) if attempt < policy.max_attempts else 0.0
            attempts.append(
                AttemptRecord(attempt, classify_failure(exc), repr(exc), backoff)
            )
            if sup_trc is not None:
                sup_trc.instant(
                    "supervisor.failure", cat="supervisor", attempt=attempt,
                    outcome=classify_failure(exc), backoff_seconds=backoff,
                )
            if backoff > 0:
                sleep(backoff)
            continue
        attempts.append(AttemptRecord(attempt, "ok"))
        if sup_trc is not None:
            sup_trc.instant("supervisor.ok", cat="supervisor", attempt=attempt)
        return SupervisedOutcome(
            results=results,
            attempts=attempts,
            fault_trace=fault_plan.trace() if fault_plan is not None else (),
        )
    outcome = SupervisedOutcome(
        results=None,
        attempts=attempts,
        fault_trace=fault_plan.trace() if fault_plan is not None else (),
    )
    raise SupervisionExhausted(
        f"job failed after {policy.max_attempts} attempts; last error: {last_exc!r}",
        outcome,
    ) from last_exc
