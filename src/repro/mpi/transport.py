"""The transport seam: what a backend must provide underneath ``Comm``.

:class:`~repro.mpi.comm.Comm` and the collectives built on it never talk to
threads, pipes or shared memory directly — they speak to a *transport
endpoint*: an object with MPI matching semantics (``post``/``match``/
``probe``), context allocation, per-rank tracers and an abort channel.
Two endpoints exist:

- :class:`~repro.mpi.network.Network` — the original in-process router.
  One shared object; every rank is a thread; mailboxes live behind one
  lock.  Deterministic and dependency-free, but compute serialises on the
  GIL, so it is the *parity oracle*, not the performance backend.
- :class:`~repro.mpi.process.ProcessNetwork` — one endpoint per OS
  process.  Messages travel over pipes (bulk numpy payloads through
  ``multiprocessing.shared_memory``); each endpoint owns only its own
  rank's mailbox and consults a fork-copied fault plan locally.

This module holds the contract and the pure matching logic both share, so
the semantics tested against the thread backend are the semantics the
process backend runs.
"""

from __future__ import annotations

from repro.mpi.ops import ANY_SOURCE, ANY_TAG

__all__ = ["TransportEndpoint", "matches"]


def matches(msg, context: int, source: int, tag: int) -> bool:
    """MPI envelope matching: (context, source, tag) with wildcards."""
    if msg.context != context:
        return False
    if source != ANY_SOURCE and msg.src != source:
        return False
    if tag != ANY_TAG and msg.tag != tag:
        return False
    return True


class TransportEndpoint:
    """Abstract contract every transport backend implements.

    The methods mirror what ``Comm``, ``MapReduce`` and the SPMD runtime
    actually call; a backend that implements them all is drop-in
    selectable via ``run_spmd(..., backend=...)``.  Matching obligations
    shared by all backends:

    - **non-overtaking**: among messages from one sender with a matching
      (tag, context), the earliest-posted is received first;
    - **contexts isolate communicators**: wildcard receives can never
      match traffic from another context;
    - **abort wakes blocked ranks**: after :meth:`abort`, every blocked or
      future ``match`` raises :class:`~repro.mpi.exceptions.AbortError`;
    - **fault accounting is per acting rank**: op and send counters drive
      :class:`~repro.mpi.faultplan.FaultPlan` events identically on every
      backend, so one seeded plan yields one event trace regardless of
      transport.
    """

    #: Default timeout (seconds) for any single blocking operation.
    DEFAULT_OP_TIMEOUT = 120.0

    op_timeout: float = DEFAULT_OP_TIMEOUT
    nprocs: int = 0

    #: Whether bulk payloads ride a shared arena on this endpoint.  The
    #: collectives consult this to pick arena-aware schedules (pairwise
    #: alltoall bounds peak ring residency); backends without an arena
    #: inherit the no-op default.
    arena_enabled: bool = False

    def arena_stats(self) -> dict:
        """Arena hit/overflow/residency counters (empty without an arena)."""
        return {}

    def post(self, msg, acting=None):
        """Deliver ``msg`` toward its destination mailbox (eager send)."""
        raise NotImplementedError

    def match(self, dst, context, source=ANY_SOURCE, tag=ANY_TAG,
              timeout=None, block=True):
        """Remove and return the first matching message for ``dst``."""
        raise NotImplementedError

    def probe(self, dst, context, source, tag):
        """Non-destructively return the first deliverable match, or None."""
        raise NotImplementedError

    def allocate_context(self, key):
        """Return the (collectively agreed) context id for ``key``."""
        raise NotImplementedError

    def tracer_for(self, rank):
        """The tracer owned by ``rank`` (a null tracer when tracing is off)."""
        raise NotImplementedError

    def abort(self, exc):
        """Mark the job failed; wake every blocked rank with AbortError."""
        raise NotImplementedError
