"""Small timing helpers used by drivers, benchmarks and the DES harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_duration"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Usage::

        sw = Stopwatch()
        with sw:
            work()
        sw.elapsed  # seconds spent inside all `with` blocks so far
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        dt = time.perf_counter() - self._start
        self.elapsed += dt
        self._start = None
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's charts label data points.

    Sub-minute durations keep one decimal of seconds; longer durations use
    minutes (the paper labels all data points in minutes).
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes = seconds / 60.0
    if minutes < 60:
        return f"{minutes:.1f}min"
    return f"{minutes / 60:.2f}h"
