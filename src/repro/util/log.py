"""Rank-aware logging.

All library components log through :func:`get_logger`; code running inside an
SPMD region uses :func:`rank_logger` so that each line is prefixed with the
MPI rank, matching how one reads interleaved per-rank output from a real MPI
job.  Logging defaults to WARNING so tests and benchmarks stay quiet; drivers
expose ``--verbose`` flags that call :func:`set_verbosity`.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "rank_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the package root."""
    _ensure_configured()
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def rank_logger(name: str, rank: int) -> logging.LoggerAdapter:
    """Logger whose records carry the originating MPI rank."""
    base = get_logger(name)
    return logging.LoggerAdapter(base, extra={"rank": rank})


def set_verbosity(level: int | str) -> None:
    """Set the package-wide log level (e.g. ``'INFO'`` or ``logging.DEBUG``)."""
    _ensure_configured()
    logging.getLogger(_ROOT_NAME).setLevel(level)
