"""Deterministic random-number-generator plumbing.

Every stochastic component in the repository (workload generators, task-time
models, SOM initialisation) takes an explicit seed or an explicit
``numpy.random.Generator``.  These helpers derive statistically independent
child generators from a parent seed so that, e.g., each MPI rank or each
simulated node gets its own stream while the whole run stays reproducible
from a single integer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_rngs", "as_rng"]


def as_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce an int seed, ``None`` or an existing Generator into a Generator.

    Passing an existing generator returns it unchanged (shared state);
    passing an int or ``None`` constructs a fresh ``default_rng``.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(seed: int, *key: int | str) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a structured key.

    The key components (ints or strings) are folded into a
    ``numpy.random.SeedSequence`` so that ``derive_rng(s, "node", 3)`` and
    ``derive_rng(s, "node", 4)`` are independent streams and stable across
    runs and platforms.
    """
    entropy: list[int] = [int(seed) & 0xFFFFFFFF]
    for part in key:
        if isinstance(part, str):
            # Stable string -> int folding (FNV-1a, 32-bit).
            h = 2166136261
            for ch in part.encode():
                h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
            entropy.append(h)
        else:
            entropy.append(int(part) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, n: int, label: str = "stream") -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from one seed."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return [derive_rng(seed, label, i) for i in range(n)]


def choice_without_replacement(
    rng: np.random.Generator, population: Sequence, k: int
) -> list:
    """Sample ``k`` distinct items (order random) from ``population``."""
    if k > len(population):
        raise ValueError(f"cannot sample {k} from population of {len(population)}")
    idx = rng.permutation(len(population))[:k]
    return [population[i] for i in idx]
