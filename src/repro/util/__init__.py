"""Shared utilities: seeded RNG helpers, timers, rank-aware logging, units."""

from repro.util.rng import derive_rng, spawn_rngs
from repro.util.timer import Stopwatch, format_duration
from repro.util.units import format_bytes, parse_bytes
from repro.util.log import get_logger, rank_logger

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "Stopwatch",
    "format_duration",
    "format_bytes",
    "parse_bytes",
    "get_logger",
    "rank_logger",
]
