"""Byte-size parsing and formatting (Lustre/RAM sizes appear all over)."""

from __future__ import annotations

__all__ = ["format_bytes", "parse_bytes", "KB", "MB", "GB", "TB"]

KB = 1024
MB = 1024**2
GB = 1024**3
TB = 1024**4

_SUFFIXES = {"b": 1, "k": KB, "kb": KB, "m": MB, "mb": MB, "g": GB, "gb": GB, "t": TB, "tb": TB}


def format_bytes(n: int | float) -> str:
    """Human-readable byte count: ``format_bytes(3 * GB) == '3.0GB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= factor:
            return f"{sign}{n / factor:.1f}{unit}"
    return f"{sign}{n:.0f}B"


def parse_bytes(text: str | int | float) -> int:
    """Parse ``'32GB'``, ``'1.5m'``, ``'4096'`` ... into an integer byte count."""
    if isinstance(text, (int, float)):
        return int(text)
    s = text.strip().lower().replace(" ", "")
    if not s:
        raise ValueError("empty size string")
    i = len(s)
    while i > 0 and not (s[i - 1].isdigit() or s[i - 1] == "."):
        i -= 1
    num, suffix = s[:i], s[i:]
    if not num:
        raise ValueError(f"no numeric part in size string {text!r}")
    if suffix and suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(num) * _SUFFIXES.get(suffix, 1))
