"""Per-rank structured tracing: typed spans and instant events.

A :class:`Tracer` is an append-only, bounded in-memory buffer of events
owned by one rank (one thread).  Three event shapes exist, mirroring the
Chrome ``trace_event`` phases they export to:

- ``B``/``E`` — a *span*: a named duration opened by :meth:`Tracer.begin`
  and closed by :meth:`Tracer.end` (or via the :meth:`Tracer.span` context
  manager).  Spans nest LIFO per rank.
- ``i`` — an *instant*: a point event with attributes
  (:meth:`Tracer.instant`).

Timestamps come from a pluggable zero-argument *clock* — wall clock
(``time.perf_counter``) by default, but any callable works, including a
:class:`SimClock` wrapping a DES environment's ``now`` attribute or a
deterministic :class:`TickClock`.  Traces taken under a virtual clock with
a fixed seed are therefore fully deterministic.  Per-rank timestamps are
forced monotonic (a clock may legally stand still; it must never appear to
run backwards in the buffer).

Memory is bounded: past ``max_events`` the tracer either flushes the
buffer to a JSONL *spill file* (when ``spill_path`` is set) or drops the
newest events, counting them in ``dropped_events`` so reports can flag the
truncation.

Leaf modules that are not threaded a tracer reach the current rank's one
through the thread-local :func:`current_tracer` /
:func:`set_current_tracer` pair; when nothing registered one they get
:data:`NULL_TRACER`, whose ``enabled`` flag is ``False`` and whose methods
do nothing — the disabled path costs one attribute check.
"""

import json
import threading
import time

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSession",
    "TickClock",
    "SimClock",
    "current_tracer",
    "set_current_tracer",
]

# Span ids pack (rank + 1) above a per-rank sequence number so ids from
# different ranks can never collide, even across supervised re-runs that
# reuse tracers.
_RANK_SHIFT = 44

_tls = threading.local()


def current_tracer():
    """Return the tracer registered for the calling thread (rank).

    Falls back to :data:`NULL_TRACER` so call sites never need a None
    check: ``trc = current_tracer(); if trc.enabled: ...``.
    """
    return getattr(_tls, "tracer", None) or NULL_TRACER


def set_current_tracer(tracer):
    """Register *tracer* (or ``None`` to clear) for the calling thread."""
    _tls.tracer = tracer


class TickClock:
    """Deterministic clock: each call returns the next integer tick.

    Used by the property suite so generated rank programs produce
    bit-identical traces for identical seeds regardless of host speed.
    """

    def __init__(self, start=0, step=1):
        self._t = start - step
        self._step = step

    def __call__(self):
        self._t += self._step
        return float(self._t)


class SimClock:
    """Clock adapter reading virtual time off any object with a ``now``.

    Designed for ``repro.simtime.Environment`` but deliberately duck-typed
    (``obs`` is Layer 0 and imports nothing else from the package).
    """

    def __init__(self, env):
        self._env = env

    def __call__(self):
        return float(self._env.now)


class Tracer:
    """Append-only event buffer for one rank.

    Events are stored as ``(ph, ts, sid, name, cat, attrs)`` tuples with
    ``ph`` one of ``"B"``, ``"E"``, ``"i"``; ``attrs`` is a dict or
    ``None``.  The buffer is bounded by ``max_events``: overflow spills to
    ``spill_path`` (JSONL) when configured, else the newest events are
    dropped and counted.
    """

    enabled = True

    def __init__(self, rank, clock=None, max_events=1_000_000, spill_path=None):
        self.rank = rank
        self.clock = clock if clock is not None else time.perf_counter
        self.max_events = max_events
        self.spill_path = str(spill_path) if spill_path is not None else None
        self.events = []
        self.metrics = MetricsRegistry()
        self.dropped_events = 0
        self.spilled_events = 0
        self._seq = 0
        self._last_ts = float("-inf")
        self._open = []  # stack of (sid, name, cat)

    # -- internals -----------------------------------------------------

    def _now(self):
        ts = float(self.clock())
        if ts < self._last_ts:
            ts = self._last_ts
        self._last_ts = ts
        return ts

    def _append(self, event):
        if len(self.events) >= self.max_events:
            if self.spill_path is not None:
                self._spill()
            else:
                self.dropped_events += 1
                return
        self.events.append(event)

    def _spill(self):
        with open(self.spill_path, "a", encoding="utf-8") as fh:
            for ph, ts, sid, name, cat, attrs in self.events:
                fh.write(json.dumps(
                    {"ph": ph, "ts": ts, "sid": sid, "name": name,
                     "cat": cat, "attrs": attrs},
                    sort_keys=True) + "\n")
        self.spilled_events += len(self.events)
        self.events.clear()

    # -- recording API -------------------------------------------------

    def begin(self, name, cat="", **attrs):
        """Open a span; returns its id for an optional :meth:`end` check."""
        self._seq += 1
        sid = ((self.rank + 1) << _RANK_SHIFT) | self._seq
        self._open.append((sid, name, cat))
        self._append(("B", self._now(), sid, name, cat, attrs or None))
        return sid

    def end(self, sid=None, **attrs):
        """Close the innermost open span (validating *sid* when given)."""
        if not self._open:
            raise RuntimeError(f"rank {self.rank}: end() with no open span")
        top_sid, name, cat = self._open.pop()
        if sid is not None and sid != top_sid:
            raise RuntimeError(
                f"rank {self.rank}: end({sid}) does not match open span "
                f"{top_sid} ({name!r})")
        self._append(("E", self._now(), top_sid, name, cat, attrs or None))

    def instant(self, name, cat="", **attrs):
        """Record a point event."""
        self._seq += 1
        sid = ((self.rank + 1) << _RANK_SHIFT) | self._seq
        self._append(("i", self._now(), sid, name, cat, attrs or None))

    def span(self, name, cat="", **attrs):
        """Context manager: ``with trc.span("phase"): ...``."""
        return _Span(self, name, cat, attrs)

    def unwind(self, to_depth=0, **attrs):
        """Close open spans down to ``to_depth`` (default: all of them).

        Keeps traces balanced even when an exception unwound past the
        instrumentation, so exporters and reports never see a dangling
        ``B``.  Resident services bracket each job with
        ``depth = trc.open_depth`` / ``trc.unwind(to_depth=depth)`` so a
        job that dies mid-span cannot leak open spans into the next job
        on the same rank — the one-job-per-process-lifetime assumption
        the original session design baked in.
        """
        while len(self._open) > to_depth:
            self.end(**attrs)

    # -- reading API ---------------------------------------------------

    @property
    def open_depth(self):
        """Number of currently open spans (snapshot for ``unwind(to_depth=)``)."""
        return len(self._open)

    @property
    def open_spans(self):
        """Names of currently open spans, outermost first."""
        return [name for _sid, name, _cat in self._open]

    def iter_events(self):
        """Yield all events in order: spilled JSONL first, then memory."""
        if self.spill_path is not None and self.spilled_events:
            with open(self.spill_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    rec = json.loads(line)
                    yield (rec["ph"], rec["ts"], rec["sid"], rec["name"],
                           rec["cat"], rec["attrs"])
        yield from self.events


class _Span:
    """Context manager emitted by :meth:`Tracer.span`."""

    __slots__ = ("_trc", "_name", "_cat", "_attrs", "_sid")

    def __init__(self, trc, name, cat, attrs):
        self._trc = trc
        self._name = name
        self._cat = cat
        self._attrs = attrs

    def __enter__(self):
        self._sid = self._trc.begin(self._name, self._cat, **self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._trc.end(self._sid)
        return False


class NullTracer:
    """Disabled tracer: every method is a no-op; ``enabled`` is ``False``.

    All hot paths gate on ``tracer.enabled`` so the disabled cost is one
    attribute read; the no-op methods exist so un-gated cold paths stay
    correct too.
    """

    enabled = False
    rank = -1
    events = ()
    dropped_events = 0
    spilled_events = 0
    metrics = MetricsRegistry()

    def begin(self, name, cat="", **attrs):
        """No-op; returns a dummy span id."""
        return 0

    def end(self, sid=None, **attrs):
        """No-op."""

    def instant(self, name, cat="", **attrs):
        """No-op."""

    def span(self, name, cat="", **attrs):
        """Return a reusable no-op context manager."""
        return _NULL_SPAN

    def unwind(self, to_depth=0, **attrs):
        """No-op."""

    @property
    def open_depth(self):
        """Always zero."""
        return 0

    @property
    def open_spans(self):
        """Always empty."""
        return []

    def iter_events(self):
        """Always empty."""
        return iter(())


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()

NULL_TRACER = NullTracer()
"""Shared disabled tracer handed out whenever tracing is off."""


class TraceSession:
    """One tracer per rank for a single (possibly multi-attempt) job.

    The session owns the per-rank :class:`Tracer` objects; a supervised
    runner's successive attempts spawn fresh networks but keep appending
    to the same session, so a resumed run's trace shows the crash, the
    retry, and the resume markers on one timeline.  (A rank still stalled
    past the join budget when the supervisor relaunches may append late
    events out of attempt order; crash-style faults — the supervised case
    the tests pin — join cleanly before the retry.)

    ``supervisor`` is one extra tracer (thread id ``nprocs`` in exports)
    for events the supervisor itself emits between attempts.
    """

    def __init__(self, nprocs, clock=None, max_events_per_rank=1_000_000,
                 spill_dir=None):
        self.nprocs = nprocs
        self.tracers = []
        for rank in range(nprocs + 1):
            spill_path = None
            if spill_dir is not None:
                spill_path = f"{spill_dir}/trace-rank{rank}.spill.jsonl"
            self.tracers.append(Tracer(
                rank, clock=clock, max_events=max_events_per_rank,
                spill_path=spill_path))
        self.supervisor = self.tracers[nprocs]

    def tracer(self, rank):
        """Return the tracer owned by *rank*."""
        return self.tracers[rank]
