"""Counters, gauges and histograms behind one get-or-create registry.

The registry absorbs the hand-rolled stats the drivers used to thread
around by hand (``SearchStats`` stage timers, ``shuffle_stats()``
pairs/bytes, robustness counters): instrumented code asks its rank's
:class:`MetricsRegistry` for a named instrument and bumps it; reports read
:meth:`MetricsRegistry.snapshot` afterwards and
:func:`merge_snapshots` folds per-rank snapshots into job totals.

Everything is plain Python on purpose — a counter bump is one dict lookup
plus one float add, cheap enough to sit on the shuffle hot path.
"""

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "absorb_snapshot",
    "merge_snapshots",
]


class Counter:
    """Monotonically increasing value (float-capable, e.g. seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1):
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    add = inc

    def snapshot(self):
        """Return the current value."""
        return self.value


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        """Overwrite the gauge with *value*."""
        self.value = float(value)

    def snapshot(self):
        """Return the current value."""
        return self.value


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit overflow bucket.
    """

    DEFAULT_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name, bounds=DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        """Record one observation."""
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.buckets[idx] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self):
        """Return ``{count, sum, min, max, bounds, buckets}``."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Get-or-create host for named instruments.

    Asking twice for the same name returns the same object; asking for an
    existing name with a different instrument kind raises.
    """

    def __init__(self):
        self._instruments = {}

    def _get(self, name, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name):
        """Get or create the :class:`Counter` called *name*."""
        return self._get(name, Counter)

    def gauge(self, name):
        """Get or create the :class:`Gauge` called *name*."""
        return self._get(name, Gauge)

    def histogram(self, name, bounds=Histogram.DEFAULT_BOUNDS):
        """Get or create the :class:`Histogram` called *name*."""
        return self._get(name, Histogram, bounds)

    def snapshot(self):
        """Return ``{name: snapshot}`` for every instrument, sorted."""
        return {name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)}


def absorb_snapshot(registry, snapshot):
    """Fold one registry *snapshot* into live *registry* instruments.

    Used by the process transport: each rank runs in its own process with a
    fork-copied registry, ships ``registry.snapshot()`` back in its exit
    envelope, and the parent absorbs it here so post-job reports see the
    same numbers the thread backend would have produced in place.

    Counters add; gauges keep the incoming value (last write wins, matching
    a live cross-thread ``set``); histograms replay bucket-wise (bounds are
    taken from the snapshot for instruments the parent has not seen yet).
    Float values transfer exactly — pickling preserves float bits — so
    trace-fidelity checks that compare counter sums across backends hold
    to the last ulp.
    """
    for name, value in snapshot.items():
        if isinstance(value, dict):
            hist = registry.histogram(name, bounds=tuple(value["bounds"]))
            if hist.bounds != tuple(value["bounds"]):
                raise ValueError(f"histogram {name!r}: mismatched bounds")
            hist.count += value["count"]
            hist.total += value["sum"]
            hist.buckets = [a + b for a, b in zip(hist.buckets, value["buckets"])]
            mins = [m for m in (hist.min, value["min"]) if m is not None]
            maxs = [m for m in (hist.max, value["max"]) if m is not None]
            hist.min = min(mins) if mins else None
            hist.max = max(maxs) if maxs else None
        else:
            inst = registry._instruments.get(name)
            if isinstance(inst, Gauge):
                inst.set(value)
            else:
                registry.counter(name).value += value


def merge_snapshots(snapshots):
    """Fold per-rank registry snapshots into job-level totals.

    Counters and gauges sum; histogram snapshots merge bucket-wise
    (bounds must agree).  Returns a dict shaped like a single snapshot.
    """
    merged = {}
    for snap in snapshots:
        for name, value in snap.items():
            if isinstance(value, dict):
                cur = merged.get(name)
                if cur is None:
                    merged[name] = {
                        "count": value["count"],
                        "sum": value["sum"],
                        "min": value["min"],
                        "max": value["max"],
                        "bounds": list(value["bounds"]),
                        "buckets": list(value["buckets"]),
                    }
                else:
                    if cur["bounds"] != list(value["bounds"]):
                        raise ValueError(
                            f"histogram {name!r}: mismatched bounds")
                    cur["count"] += value["count"]
                    cur["sum"] += value["sum"]
                    mins = [m for m in (cur["min"], value["min"]) if m is not None]
                    maxs = [m for m in (cur["max"], value["max"]) if m is not None]
                    cur["min"] = min(mins) if mins else None
                    cur["max"] = max(maxs) if maxs else None
                    cur["buckets"] = [a + b for a, b in
                                      zip(cur["buckets"], value["buckets"])]
            else:
                merged[name] = merged.get(name, 0.0) + value
    return dict(sorted(merged.items()))
