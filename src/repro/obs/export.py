"""Trace exporters: Chrome ``trace_event`` JSON and a text summary.

:func:`chrome_trace` converts a :class:`~repro.obs.trace.TraceSession`
into the Chrome JSON Object Format (``{"traceEvents": [...]}``) that
``chrome://tracing`` and Perfetto load directly — one ``tid`` per rank,
timestamps in microseconds, ``B``/``E`` duration events and thread-scoped
``i`` instants.  :func:`validate_chrome_trace` is the exporter's own
schema checker (used by CI's trace-smoke step): it verifies structure,
phase set, numeric timestamps, per-thread timestamp monotonicity, LIFO
``B``/``E`` balance and JSON-scalar args, returning a list of problems
(empty when the document is valid).
"""

import json

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
    "text_summary",
]

_ALLOWED_PHASES = {"B", "E", "i", "M"}


def chrome_trace(session):
    """Render *session* as a Chrome ``trace_event`` JSON document (dict)."""
    trace_events = []
    supervisor = getattr(session, "supervisor", None)
    for trc in session.tracers:
        label = "supervisor" if trc is supervisor else f"rank {trc.rank}"
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": trc.rank,
            "args": {"name": label},
        })
        for ph, ts, sid, name, cat, attrs in trc.iter_events():
            event = {
                "ph": ph,
                "ts": ts * 1e6,
                "pid": 0,
                "tid": trc.rank,
                "name": name,
            }
            if cat:
                event["cat"] = cat
            if ph == "i":
                event["s"] = "t"
            if attrs:
                event["args"] = dict(attrs)
            trace_events.append(event)
        if trc.dropped_events:
            trace_events.append({
                "ph": "M", "name": "dropped_events", "pid": 0,
                "tid": trc.rank, "args": {"count": trc.dropped_events},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, session):
    """Validate and write *session* to *path* as Chrome trace JSON."""
    doc = chrome_trace(session)
    assert_valid_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def _scalar(value):
    return value is None or isinstance(value, (bool, int, float, str))


def validate_chrome_trace(doc):
    """Schema-check a Chrome trace document; returns a list of problems."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]

    last_ts = {}
    open_stacks = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _ALLOWED_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        tid = ev.get("tid")
        if not isinstance(tid, int):
            problems.append(f"{where}: missing integer tid")
            continue
        args = ev.get("args")
        if args is not None:
            if not isinstance(args, dict):
                problems.append(f"{where}: args is not an object")
            else:
                for k, v in args.items():
                    if not _scalar(v):
                        problems.append(
                            f"{where}: args[{k!r}] is not a JSON scalar")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing numeric ts")
            continue
        prev = last_ts.get(tid)
        if prev is not None and ts < prev:
            problems.append(
                f"{where}: ts {ts} < previous ts {prev} on tid {tid}")
        last_ts[tid] = ts
        if ph == "B":
            open_stacks.setdefault(tid, []).append((name, i))
        elif ph == "E":
            stack = open_stacks.get(tid)
            if not stack:
                problems.append(f"{where}: E with no open B on tid {tid}")
            else:
                stack.pop()
    for tid, stack in open_stacks.items():
        for name, i in stack:
            problems.append(
                f"traceEvents[{i}]: unclosed B {name!r} on tid {tid}")
    return problems


def assert_valid_chrome_trace(doc):
    """Raise ``ValueError`` listing every problem when *doc* is invalid."""
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(
            "invalid Chrome trace document:\n  " + "\n  ".join(problems))


def text_summary(session):
    """Per-rank, per-span-name text table: count and total seconds."""
    lines = []
    supervisor = getattr(session, "supervisor", None)
    for trc in session.tracers:
        if trc is supervisor and not trc.events:
            continue
        totals = {}
        counts = {}
        stack = []
        instants = {}
        for ph, ts, sid, name, cat, attrs in trc.iter_events():
            if ph == "B":
                stack.append((name, ts))
            elif ph == "E" and stack:
                bname, bts = stack.pop()
                totals[bname] = totals.get(bname, 0.0) + (ts - bts)
                counts[bname] = counts.get(bname, 0) + 1
            elif ph == "i":
                instants[name] = instants.get(name, 0) + 1
        label = "supervisor" if trc is supervisor else f"rank {trc.rank}"
        lines.append(f"{label}:")
        for name in sorted(totals):
            lines.append(
                f"  span {name:<24} n={counts[name]:<6} "
                f"total={totals[name]:.6f}s")
        for name in sorted(instants):
            lines.append(f"  inst {name:<24} n={instants[name]}")
        if trc.dropped_events:
            lines.append(f"  (dropped {trc.dropped_events} events)")
    return "\n".join(lines) + "\n"
