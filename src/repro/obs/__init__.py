"""Unified observability: structured tracing + metrics for the whole stack.

``repro.obs`` is a Layer-0 subsystem (it imports nothing else from the
package) that every other layer instruments itself with:

- :class:`~repro.obs.trace.Tracer` — per-rank append-only buffers of typed
  spans and instant events, virtual-time aware (any zero-arg clock,
  including a DES environment's ``now``), bounded memory with optional
  JSONL spill;
- :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms absorbing the hand-rolled stats the drivers used to thread
  around by hand;
- exporters — Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
  Perfetto), a per-rank/per-phase text summary, and a critical-path /
  straggler report that recomputes the paper's Fig. 5 utilisation numbers
  from the trace alone.

Tracing is zero-cost when disabled (the shared :data:`NULL_TRACER` answers
``enabled = False`` and every hot path is gated on that flag) and
bit-preserving when enabled: instrumentation only observes, never alters,
the data path.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SimClock,
    TickClock,
    Tracer,
    TraceSession,
    current_tracer,
    set_current_tracer,
)
from repro.obs.export import (
    assert_valid_chrome_trace,
    chrome_trace,
    text_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.report import (
    critical_path_report,
    phase_durations,
    shuffle_traffic,
    stage_breakdown,
    utilization_report,
)

__all__ = [
    "Tracer",
    "TraceSession",
    "NullTracer",
    "NULL_TRACER",
    "TickClock",
    "SimClock",
    "current_tracer",
    "set_current_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
    "text_summary",
    "critical_path_report",
    "phase_durations",
    "shuffle_traffic",
    "stage_breakdown",
    "utilization_report",
]
