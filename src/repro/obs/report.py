"""Trace analysis: phase durations, shuffle traffic, Fig. 5 utilisation.

Every function here recomputes, *from the trace alone*, numbers the stack
also tracks through legacy counters (``MapReduce.timers``/``.stats``,
``MapperStats``, ``MrBlastResult``), so the cross-check suite can assert
exact agreement and the counters can later be retired safely.

The instrumentation makes exactness possible: a phase span's ``E`` event
carries a ``seconds`` attribute computed from the *same*
``perf_counter()`` pair that incremented the legacy timer, and sums here
run left-to-right in event order — bit-identical float addition order to
the legacy accumulation.
"""

__all__ = [
    "phase_durations",
    "shuffle_traffic",
    "stage_breakdown",
    "utilization_report",
    "critical_path_report",
]


def span_records(tracer):
    """Yield matched spans as ``(name, cat, t0, t1, begin_attrs, end_attrs)``.

    Spans are matched by LIFO stack discipline, the same order the tracer
    enforced at record time; unclosed spans (possible only after dropped
    events) are ignored.
    """
    stack = []
    for ph, ts, sid, name, cat, attrs in tracer.iter_events():
        if ph == "B":
            stack.append((name, cat, ts, attrs))
        elif ph == "E" and stack:
            bname, bcat, bts, battrs = stack.pop()
            yield (bname, bcat, bts, ts, battrs, attrs)


def phase_durations(session, prefix="mr."):
    """Per-rank MR phase seconds summed from span ``seconds`` attributes.

    Returns ``{rank: {phase: seconds}}`` with phase names stripped of
    *prefix* (``"mr.map"`` → ``"map"``).  Summation order matches the
    legacy ``MapReduce.timers`` accumulation exactly.
    """
    out = {}
    for trc in session.tracers:
        totals = {}
        for name, _cat, _t0, _t1, _battrs, eattrs in span_records(trc):
            if not name.startswith(prefix):
                continue
            if not eattrs or "seconds" not in eattrs:
                continue
            phase = name[len(prefix):]
            totals[phase] = totals.get(phase, 0.0) + eattrs["seconds"]
        out[trc.rank] = totals
    return out


def shuffle_traffic(session):
    """Pairs/bytes moved per rank and phase, from ``mr.traffic`` instants.

    Returns ``{"per_rank": {rank: {phase: {"pairs": n, "bytes": n}}},
    "totals": {phase: {"pairs": n, "bytes": n}}}`` — integers, so the
    cross-check against ``MapReduce.stats`` is exact by construction.
    """
    per_rank = {}
    totals = {}
    for trc in session.tracers:
        mine = {}
        for ph, _ts, _sid, name, _cat, attrs in trc.iter_events():
            if ph != "i" or name != "mr.traffic" or not attrs:
                continue
            phase = attrs["phase"]
            for scope in (mine, totals):
                ent = scope.setdefault(phase, {"pairs": 0, "bytes": 0})
                ent["pairs"] += attrs["pairs"]
                ent["bytes"] += attrs["bytes"]
        per_rank[trc.rank] = mine
    return {"per_rank": per_rank, "totals": totals}


def stage_breakdown(session):
    """Per-rank BLAST stage seconds summed from ``mrblast.unit`` spans.

    Returns ``{rank: {"seed_s", "ungapped_s", "gapped_s", "busy_s",
    "units", "hits"}}``.  The per-unit attributes are the exact floats
    ``MapperStats`` accumulated, added in the same order, so sums agree
    bit-for-bit with ``MrBlastResult.seed_seconds`` et al.
    """
    out = {}
    for trc in session.tracers:
        acc = {"seed_s": 0.0, "ungapped_s": 0.0, "gapped_s": 0.0,
               "busy_s": 0.0, "units": 0, "hits": 0}
        for name, _cat, _t0, _t1, _battrs, eattrs in span_records(trc):
            if name != "mrblast.unit" or not eattrs:
                continue
            acc["seed_s"] += eattrs.get("seed_s", 0.0)
            acc["ungapped_s"] += eattrs.get("ungapped_s", 0.0)
            acc["gapped_s"] += eattrs.get("gapped_s", 0.0)
            acc["busy_s"] += eattrs.get("busy_s", 0.0)
            acc["units"] += 1
            acc["hits"] += eattrs.get("hits", 0)
        out[trc.rank] = acc
    return out


def utilization_report(session):
    """Fig. 5-style utilisation recomputed from the trace alone.

    Per rank: wall seconds inside the ``rank`` lifecycle span, busy
    seconds (sum of ``mrblast.unit`` ``busy_s`` attributes), and their
    ratio.  Job-level: the makespan (latest rank-span end minus earliest
    start), mean utilisation, the straggler (last rank to finish) and
    per-phase totals.
    """
    per_rank = {}
    stages = stage_breakdown(session)
    phases = phase_durations(session)
    t_start = None
    t_end = None
    straggler = None
    for trc in session.tracers:
        wall = 0.0
        rank_end = None
        for name, _cat, t0, t1, _battrs, _eattrs in span_records(trc):
            if name == "rank":
                wall += t1 - t0
                t_start = t0 if t_start is None else min(t_start, t0)
                rank_end = t1 if rank_end is None else max(rank_end, t1)
        busy = stages.get(trc.rank, {}).get("busy_s", 0.0)
        per_rank[trc.rank] = {
            "wall_s": wall,
            "busy_s": busy,
            "utilization": (busy / wall) if wall > 0 else 0.0,
        }
        if rank_end is not None and (t_end is None or rank_end > t_end):
            t_end = rank_end
            straggler = trc.rank
    utils = [r["utilization"] for r in per_rank.values() if r["wall_s"] > 0]
    phase_totals = {}
    for rank_phases in phases.values():
        for phase, secs in rank_phases.items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + secs
    return {
        "per_rank": per_rank,
        "makespan_s": (t_end - t_start) if t_start is not None and t_end is not None else 0.0,
        "mean_utilization": (sum(utils) / len(utils)) if utils else 0.0,
        "straggler_rank": straggler,
        "phase_totals_s": phase_totals,
        "stage_totals": {
            key: sum(s[key] for s in stages.values())
            for key in ("seed_s", "ungapped_s", "gapped_s", "busy_s",
                        "units", "hits")
        },
    }


def critical_path_report(session):
    """Human-readable straggler / critical-path text report.

    Names the last-finishing rank, shows every rank's busy/wall
    utilisation bar, and breaks the straggler's time down by MR phase —
    the phases on the straggler are the job's critical path.
    """
    rep = utilization_report(session)
    phases = phase_durations(session)
    lines = ["critical path / straggler report", ""]
    lines.append(f"makespan: {rep['makespan_s']:.6f}s   "
                 f"mean utilisation: {rep['mean_utilization']:.1%}   "
                 f"straggler: rank {rep['straggler_rank']}")
    lines.append("")
    for rank in sorted(rep["per_rank"]):
        r = rep["per_rank"][rank]
        bar = "#" * int(round(20 * min(r["utilization"], 1.0)))
        mark = "  <- straggler" if rank == rep["straggler_rank"] else ""
        lines.append(
            f"rank {rank}: wall {r['wall_s']:.6f}s  busy {r['busy_s']:.6f}s  "
            f"util {r['utilization']:6.1%} |{bar:<20}|{mark}")
    strag = rep["straggler_rank"]
    if strag is not None and phases.get(strag):
        lines.append("")
        lines.append(f"rank {strag} phase breakdown (critical path):")
        for phase, secs in sorted(phases[strag].items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {phase:<12} {secs:.6f}s")
    return "\n".join(lines) + "\n"
