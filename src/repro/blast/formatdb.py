"""formatdb equivalent: build partitioned, packed BLAST database volumes.

The paper runs "the standard NCBI BLAST tool formatdb on the entire database
in FASTA format.  Formatdb creates the DB partitions in a two-bit encoded
format that is optimized for scanning" (§III.A) — their 364 Gbp database
became 109 volumes of 1 GB each.  This module reproduces that pipeline:

- nucleotide volumes store sequences packed two bits per base;
- protein volumes store one alphabet code per byte;
- each volume carries a JSON header (ids, lengths, offsets);
- an alias file (``<name>.pal.json``, after NCBI's ``.pal``/``.nal``)
  records the volume list and the *global* statistics (total residues,
  total sequence count) that DB-split searches plug into the E-value
  computation.

Volumes are cut by packed on-disk size, like formatdb's ``-v`` byte limit.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.fasta import read_fasta
from repro.bio.seq import SeqRecord

__all__ = ["format_database", "DatabaseWriter", "pack_2bit", "unpack_2bit", "main"]


def pack_2bit(codes: np.ndarray) -> np.ndarray:
    """Pack base codes (0-3) four to a byte, zero-padded at the tail."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) > 3:
        raise ValueError("2-bit packing requires codes in [0, 3]")
    pad = (-codes.size) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint8)])
    quads = codes.reshape(-1, 4)
    return (
        (quads[:, 0] << 6) | (quads[:, 1] << 4) | (quads[:, 2] << 2) | quads[:, 3]
    ).astype(np.uint8)


_UNPACK_TABLE = np.zeros((256, 4), dtype=np.uint8)
for _b in range(256):
    _UNPACK_TABLE[_b] = [(_b >> 6) & 3, (_b >> 4) & 3, (_b >> 2) & 3, _b & 3]


def unpack_2bit(packed: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_2bit` for the first ``length`` bases."""
    packed = np.asarray(packed, dtype=np.uint8)
    if length > packed.size * 4:
        raise ValueError(f"length {length} exceeds packed capacity {packed.size * 4}")
    return _UNPACK_TABLE[packed].reshape(-1)[:length]


@dataclass
class _Volume:
    ids: list[str]
    lengths: list[int]
    offsets: list[int]  # residue offsets into the concatenated code array
    data: list[np.ndarray]
    nbytes: int = 0


class DatabaseWriter:
    """Streams records into packed volumes under a byte budget each."""

    def __init__(
        self,
        out_dir: str | os.PathLike,
        name: str,
        kind: str = "dna",
        max_volume_bytes: int = 1 << 20,
    ) -> None:
        if kind not in ("dna", "protein"):
            raise ValueError(f"kind must be 'dna' or 'protein', got {kind}")
        if max_volume_bytes < 1024:
            raise ValueError(f"max_volume_bytes too small: {max_volume_bytes}")
        self.out_dir = os.fspath(out_dir)
        self.name = name
        self.kind = kind
        self.max_volume_bytes = max_volume_bytes
        os.makedirs(self.out_dir, exist_ok=True)
        self._volume = _Volume([], [], [], [])
        self._volume_paths: list[str] = []
        self._total_length = 0
        self._num_seqs = 0
        self._closed = False

    def _packed_size(self, n_residues: int) -> int:
        return (n_residues + 3) // 4 if self.kind == "dna" else n_residues

    def add(self, record: SeqRecord) -> None:
        if self._closed:
            raise ValueError("writer already finished")
        codes = DNA.encode(record.seq) if self.kind == "dna" else PROTEIN.encode(record.seq)
        if codes.size == 0:
            raise ValueError(f"empty sequence {record.id!r} cannot be formatted")
        size = self._packed_size(codes.size)
        if self._volume.nbytes and self._volume.nbytes + size > self.max_volume_bytes:
            self._flush_volume()
        vol = self._volume
        vol.ids.append(record.id)
        vol.lengths.append(int(codes.size))
        vol.offsets.append(sum(vol.lengths[:-1]))
        vol.data.append(codes)
        vol.nbytes += size
        self._total_length += int(codes.size)
        self._num_seqs += 1

    def _flush_volume(self) -> None:
        vol = self._volume
        if not vol.ids:
            return
        index = len(self._volume_paths)
        base = os.path.join(self.out_dir, f"{self.name}.{index:03d}")
        concat = np.concatenate(vol.data)
        stored = pack_2bit(concat) if self.kind == "dna" else concat.astype(np.uint8)
        np.save(base + ".seq.npy", stored)
        header = {
            "kind": self.kind,
            "ids": vol.ids,
            "lengths": vol.lengths,
            "offsets": [int(sum(vol.lengths[:i])) for i in range(len(vol.lengths))],
            "total_length": int(sum(vol.lengths)),
        }
        with open(base + ".idx.json", "w", encoding="utf-8") as fh:
            json.dump(header, fh)
        self._volume_paths.append(base)
        self._volume = _Volume([], [], [], [])

    def finish(self) -> str:
        """Flush the last volume, write the alias file, return its path."""
        if self._closed:
            raise ValueError("writer already finished")
        self._flush_volume()
        self._closed = True
        if self._num_seqs == 0:
            raise ValueError("database contains no sequences")
        alias = {
            "name": self.name,
            "kind": self.kind,
            "volumes": [os.path.basename(p) for p in self._volume_paths],
            "total_length": self._total_length,
            "num_seqs": self._num_seqs,
        }
        alias_path = os.path.join(self.out_dir, f"{self.name}.pal.json")
        with open(alias_path, "w", encoding="utf-8") as fh:
            json.dump(alias, fh, indent=1)
        return alias_path


def format_database(
    records: Iterable[SeqRecord] | Sequence[SeqRecord],
    out_dir: str | os.PathLike,
    name: str = "db",
    kind: str = "dna",
    max_volume_bytes: int = 1 << 20,
) -> str:
    """Format a record collection into partitioned volumes; returns alias path."""
    writer = DatabaseWriter(out_dir, name, kind=kind, max_volume_bytes=max_volume_bytes)
    for rec in records:
        writer.add(rec)
    return writer.finish()


def main(argv: list[str] | None = None) -> int:
    """CLI: ``repro-formatdb -i db.fasta -o outdir -n mydb [-p] [-v bytes]``."""
    ap = argparse.ArgumentParser(description="Format a FASTA file into packed DB volumes")
    ap.add_argument("-i", "--input", required=True, help="input FASTA file")
    ap.add_argument("-o", "--out-dir", required=True, help="output directory")
    ap.add_argument("-n", "--name", default="db", help="database name")
    ap.add_argument("-p", "--protein", action="store_true", help="protein database")
    ap.add_argument(
        "-v", "--volume-bytes", type=int, default=1 << 20, help="max packed bytes per volume"
    )
    args = ap.parse_args(argv)
    alias = format_database(
        read_fasta(args.input),
        args.out_dir,
        name=args.name,
        kind="protein" if args.protein else "dna",
        max_volume_bytes=args.volume_bytes,
    )
    print(alias)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
