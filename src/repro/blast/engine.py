"""The serial BLAST engine: scan → ungapped extend → gapped extend → stats.

This is the "unmodified serial algorithm" layer of the paper's architecture:
mrblast calls :meth:`BlastEngine.search_block` once per work unit (one query
block against one DB partition) exactly as the paper's map() calls the NCBI
C++ toolkit search, passing the whole-database statistics so E-values match
an unsplit search.

Stage-1 admission is array-driven: word hits are grouped into per-diagonal
runs with one ``lexsort``, and each run is walked with ``searchsorted``
jumps over covered/overlapping stretches, so the Python-level loop executes
only for extension *triggers* and two-hit anchors — not for every raw word
hit.  An optional :class:`~repro.blast.lookup.LookupCache` lets the same
query block reuse its built lookup table across DB partitions.

Two schedulers share that admission machinery:

- The **fused** scheduler (``options.fused``, the default) runs the whole
  work unit as one round-based pass.  Subjects are streamed from the
  partition into a pool of *open* subjects bounded by
  ``options.fused_slab_rows`` word-hit rows; each round advances every live
  (context, diagonal) run of every open subject to its pending trigger,
  extends all of them with **one**
  :func:`~repro.blast.extend.batch_ungapped_extend_spans` call over the
  concatenated query block and a concatenated subject arena, and feeds the
  seeds admitted in that round straight into that round's single
  :func:`~repro.blast.gapped.extend_gapped_batch` call.  No stage ever
  materialises a whole-partition intermediate: scan hits, triggers and
  admitted seeds live only as bounded per-round slabs
  (``SearchStats.peak_slab_bytes`` reports the high-water mark), and a
  subject's HSPs are finalised the moment its last run exhausts.

- The **staged** scheduler (``options.fused=False``) is the original
  per-subject pipeline, retained verbatim as the bit-identical parity
  oracle: the per-run admission state machines depend only on their own
  word-hit coordinates and extension extents, both extension kernels are
  batch-composition independent, and per-subject culling sees the same
  rank-ordered HSP sequence either way, so the two schedulers produce
  identical output (pinned by the property suite).

Stage timing is accumulated per kernel call, never per word hit: lookup
build/fetch and subject scanning count as ``seed``, the span/batch kernels
and any scalar fallback as ``ungapped``, and the gapped batch as
``gapped`` — in both schedulers the three timers cover disjoint code
regions, so per-stage seconds never double-count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DbPartition
from repro.blast.extend import (
    batch_ungapped_extend,
    batch_ungapped_extend_spans,
    ungapped_extend,
)
from repro.blast.gapped import extend_gapped_batch
from repro.blast.hsp import HSP, cull_overlapping, top_hits
from repro.blast.karlin import gapped_params, karlin_params
from repro.blast.lookup import (
    LookupCache,
    NucleotideLookup,
    ProteinLookup,
    QueryBlock,
    block_fingerprint,
)
from repro.blast.matrices import BLOSUM62, nucleotide_matrix
from repro.blast.options import BlastOptions
from repro.blast.statistics import SearchSpace, bit_score
from repro.obs.trace import current_tracer

__all__ = ["BlastnEngine", "BlastpEngine", "make_engine", "SearchStats"]


@dataclass
class SearchStats:
    """Instrumentation for one search_block call.

    ``busy_seconds`` is the in-search wall time — the quantity the paper's
    Fig. 5 divides by elapsed time to chart "useful CPU utilisation".  The
    per-stage breakdown (``seed`` = lookup build/fetch + subject scanning,
    then the two extension stages) makes stage-1 cost observable rather
    than inferred; ``lookup_cache_hits`` counts block lookups served from a
    :class:`~repro.blast.lookup.LookupCache` instead of rebuilt.

    ``fused_rounds`` counts scheduler rounds of the fused pipeline (0 under
    the staged oracle) and ``peak_slab_bytes`` its intermediate high-water
    mark: the largest per-round footprint of the subject arena, open
    subjects' run arrays, the round's trigger rows and both extension
    kernels' scratch slabs.
    """

    n_subjects: int = 0
    n_word_hits: int = 0
    n_ungapped: int = 0
    n_gapped: int = 0
    n_reported: int = 0
    busy_seconds: float = 0.0
    seed_seconds: float = 0.0
    ungapped_seconds: float = 0.0
    gapped_seconds: float = 0.0
    lookup_cache_hits: int = 0
    fused_rounds: int = 0
    peak_slab_bytes: int = 0

    def merge(self, other: "SearchStats") -> None:
        self.n_subjects += other.n_subjects
        self.n_word_hits += other.n_word_hits
        self.n_ungapped += other.n_ungapped
        self.n_gapped += other.n_gapped
        self.n_reported += other.n_reported
        self.busy_seconds += other.busy_seconds
        self.seed_seconds += other.seed_seconds
        self.ungapped_seconds += other.ungapped_seconds
        self.gapped_seconds += other.gapped_seconds
        self.lookup_cache_hits += other.lookup_cache_hits
        self.fused_rounds += other.fused_rounds
        self.peak_slab_bytes = max(self.peak_slab_bytes, other.peak_slab_bytes)


@dataclass
class _SubjectRuns:
    """One subject's word hits grouped into per-(context, diagonal) runs.

    Arrays are in run order (one ``lexsort`` by context, diagonal, subject
    position); ``rank_r`` maps each row back to the (context, query pos,
    subject pos) admission order of the original per-hit loop so downstream
    culling sees an identical HSP sequence under any scheduler.
    """

    n: int
    ctx_r: np.ndarray  # context index per row
    q_r: np.ndarray  # context-local query word start
    qg_r: np.ndarray  # block-concatenated query word start
    s_r: np.ndarray  # subject word start
    rank_r: np.ndarray  # emission rank (admission order)
    run_starts: np.ndarray
    run_ends: np.ndarray


@dataclass
class _OpenSubject:
    """A subject streamed into the fused scheduler's open pool."""

    ordinal: int  # position in partition order (result slot)
    subject_id: str
    s_index: np.ndarray  # subject codes as intp (gapped jobs + fallback)
    runs: _SubjectRuns
    states: list  # live run states [a, i, b, covered, last_end]
    found: list = field(default_factory=list)  # (rank, HSP) accumulator
    arena_lo: int = 0  # subject's offset inside the pool arena

    @property
    def slab_rows(self) -> int:
        return self.runs.n


class _EngineBase:
    """Shared search pipeline; subclasses provide alphabet specifics."""

    program: str

    def __init__(self, options: BlastOptions) -> None:
        if options.program != self.program:
            raise ValueError(f"options are for {options.program!r}, engine is {self.program!r}")
        self.options = options
        self.matrix = self._make_matrix()
        self.ungapped_params = karlin_params(
            program=self.program, reward=options.reward, penalty=options.penalty
        )
        self.gapped_stats_params = gapped_params(
            program=self.program,
            reward=options.reward,
            penalty=options.penalty,
            gap_open=options.gap_open,
            gap_extend=options.gap_extend,
        )
        # One statistics context for the engine's lifetime: λ/K/H fixed at
        # construction, length adjustments cached per search-space triple.
        self.search_space = SearchSpace(self.gapped_stats_params)
        self._two_hit = self.program == "blastp" and options.two_hit_window > 0
        self.last_stats = SearchStats()
        self.lookup_cache: LookupCache | None = None

    # ---- subclass hooks ----------------------------------------------------

    def _make_matrix(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _make_lookup(self, block: QueryBlock):  # pragma: no cover - abstract
        raise NotImplementedError

    def _lookup_params(self) -> tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    # ---- public API ----------------------------------------------------------

    def set_lookup_cache(self, cache: LookupCache | None) -> None:
        """Attach (or detach) a cross-partition lookup cache."""
        self.lookup_cache = cache

    def _lookup_key(self, queries: Sequence[SeqRecord]) -> tuple:
        return (
            self.program,
            self._masking_enabled(),
            self._lookup_params(),
            block_fingerprint(queries),
        )

    def _block_and_lookup(self, queries: Sequence[SeqRecord], stats: SearchStats):
        cache = self.lookup_cache
        if cache is None:
            block = QueryBlock(queries, self.program, use_mask=self._masking_enabled())
            return block, self._make_lookup(block)
        key = self._lookup_key(queries)
        entry = cache.get(key)
        if entry is not None:
            stats.lookup_cache_hits += 1
            return entry
        block = QueryBlock(queries, self.program, use_mask=self._masking_enabled())
        lookup = self._make_lookup(block)
        cache.put(key, block, lookup)
        return block, lookup

    def search_block(
        self,
        queries: Sequence[SeqRecord],
        partition: DbPartition,
    ) -> list[HSP]:
        """Search a query block against one DB partition.

        Returns per-query top-K HSPs (the per-partition cutoff the paper's
        complexity analysis discusses: K hits per partition survive to the
        collate stage).  E-values use the DB-size overrides when set.
        """
        t0 = time.perf_counter()
        stats = SearchStats()
        opts = self.options
        block, lookup = self._block_and_lookup(queries, stats)
        stats.seed_seconds += time.perf_counter() - t0
        db_len = opts.db_length_override or partition.total_length
        db_seqs = opts.db_num_seqs_override or partition.num_seqs

        if opts.fused:
            all_hits = self._search_fused(block, lookup, partition, db_len, db_seqs, stats)
        else:
            all_hits = []
            for sid, s_codes in partition:
                stats.n_subjects += 1
                all_hits.extend(
                    self._search_subject(block, lookup, sid, s_codes, db_len, db_seqs, stats)
                )

        # Per-query E-value filter + top-K (the per-partition hit list).
        by_query: dict[str, list[HSP]] = {}
        for h in all_hits:
            by_query.setdefault(h.query_id, []).append(h)
        out: list[HSP] = []
        for rec in block.records:  # preserve query input order
            hits = by_query.get(rec.id)
            if hits:
                out.extend(top_hits(hits, opts.max_hits, opts.evalue))
        stats.n_reported = len(out)
        stats.busy_seconds = time.perf_counter() - t0
        self.last_stats = stats
        return out

    # ---- shared admission machinery ------------------------------------------

    def _masking_enabled(self) -> bool:
        return self.options.dust if self.program == "blastn" else self.options.seg

    def _prepare_runs(
        self, block: QueryBlock, qpos_concat: np.ndarray, spos_arr: np.ndarray
    ) -> _SubjectRuns:
        """Group one subject's word hits into per-(context, diagonal) runs.

        Admission works on runs left to right along the subject; emitted
        HSPs are re-ordered afterwards via ``rank_r`` to the (context,
        query pos, subject pos) admission order of the original per-hit
        loop, so downstream culling sees an identical sequence — the
        per-diagonal state machines are independent, which makes every
        traversal order produce the same extensions.
        """
        opts = self.options
        ctx_indices, q_local = block.localize(qpos_concat)
        diags = spos_arr - q_local
        n = qpos_concat.size

        run_order = np.lexsort((spos_arr, diags, ctx_indices))
        emit_rank = np.empty(n, dtype=np.int64)
        emit_rank[np.lexsort((spos_arr, qpos_concat, ctx_indices))] = np.arange(n)

        ctx_r = ctx_indices[run_order]
        q_r = q_local[run_order]
        qg_r = qpos_concat[run_order]
        s_r = spos_arr[run_order]
        diag_r = diags[run_order]
        rank_r = emit_rank[run_order]

        breaks = 1 + np.flatnonzero((ctx_r[1:] != ctx_r[:-1]) | (diag_r[1:] != diag_r[:-1]))
        run_starts = np.concatenate(([0], breaks))
        run_ends = np.concatenate((breaks, [n]))

        if self._two_hit:
            # A run can trigger an extension only if some adjacent pair sits
            # within window + word of each other on the subject: a trigger's
            # anchor ends at s_k + word, every hit between anchor and trigger
            # overlaps the anchor, so the trigger's immediate predecessor is
            # at most window + word behind it.  Runs without such a pair are
            # pure no-ops (coverage only changes after an extension), so the
            # admission loops visit extension-capable runs only.
            word = opts.word_size
            window = opts.two_hit_window
            pair_ok = np.zeros(max(n - 1, 0), dtype=bool)
            if n > 1:
                same_run = (ctx_r[1:] == ctx_r[:-1]) & (diag_r[1:] == diag_r[:-1])
                pair_ok = same_run & (s_r[1:] - s_r[:-1] <= window + word)
            csum = np.concatenate(([0], np.cumsum(pair_ok.astype(np.int64))))
            live = csum[run_ends - 1] - csum[run_starts] > 0
            run_starts = run_starts[live]
            run_ends = run_ends[live]

        return _SubjectRuns(n, ctx_r, q_r, qg_r, s_r, rank_r, run_starts, run_ends)

    def _advance_run(self, st: list, s_r: np.ndarray) -> int:
        """Walk a run to its next extension trigger; -1 when exhausted.

        Run state is ``[a, i, b, covered, last_end]``: ``covered`` is the
        subject end of the last extension on the diagonal, ``last_end`` the
        two-hit anchor (end of the last admitted word hit).
        """
        two_hit = self._two_hit
        word = self.options.word_size
        window = self.options.two_hit_window
        a, i, b, covered, last_end = st
        while i < b:
            s_pos = int(s_r[i])
            if s_pos < covered:
                # Jump over every hit inside the already-extended region.
                i = a + int(np.searchsorted(s_r[a:b], covered, side="left"))
                continue
            if two_hit:
                # NCBI's two-hit rule: remember the *end* of the last word
                # hit on this diagonal; hits overlapping it are ignored
                # outright (the anchor survives), a non-overlapping hit
                # within the window triggers extension, and a hit beyond
                # the window becomes the new anchor.
                if last_end < 0:
                    last_end = s_pos + word
                    i += 1
                    continue
                if s_pos < last_end:
                    # Jump over the whole overlapping stretch at once.
                    i = a + int(np.searchsorted(s_r[a:b], last_end, side="left"))
                    continue
                if s_pos - last_end > window:
                    last_end = s_pos + word
                    i += 1
                    continue
                last_end = s_pos + word
            st[1], st[4] = i, last_end
            return i
        st[1], st[4] = i, last_end
        return -1

    def _make_states(self, runs: _SubjectRuns) -> list:
        """Fresh run states advanced to their first trigger (dead runs dropped)."""
        states = [
            [int(a), int(a), int(b), 0, -1]
            for a, b in zip(runs.run_starts, runs.run_ends)
        ]
        return [st for st in states if self._advance_run(st, runs.s_r) >= 0]

    def _emit_hsp(self, block: QueryBlock, ctx, subject_id: str, g, db_len: int, db_seqs: int):
        """HSP for a gapped alignment, or None below the E-value cutoff."""
        rec = block.records[ctx.query_index]
        e = self.search_space.evalue(g.score, len(rec.seq), db_len, db_seqs)
        if e > self.options.evalue:
            return None
        if ctx.strand == 1:
            q_start, q_end = g.q_start, g.q_end
        else:
            q_start, q_end = ctx.length - g.q_end, ctx.length - g.q_start
        return HSP(
            query_id=rec.id,
            subject_id=subject_id,
            score=g.score,
            bit_score=self.search_space.bit_score(g.score),
            evalue=e,
            q_start=q_start,
            q_end=q_end,
            s_start=g.s_start,
            s_end=g.s_end,
            identities=g.identities,
            align_len=g.align_len,
            gaps=g.gaps,
            strand=ctx.strand,
        )

    # ---- fused scheduler -----------------------------------------------------

    def _search_fused(
        self,
        block: QueryBlock,
        lookup,
        partition,
        db_len: int,
        db_seqs: int,
        stats: SearchStats,
    ) -> list[HSP]:
        """One streaming seed→ungapped→gapped pass over the whole work unit.

        Subjects stream into a pool of open subjects bounded by
        ``fused_slab_rows`` word-hit rows; every round extends the pending
        triggers of *all* open runs with one span-batched kernel call over
        (query block concat × subject arena), feeds the admitted seeds into
        one gapped batch, advances the state machines, and finalises any
        subject whose runs all exhausted.  Output order and content are
        bit-identical to the staged oracle (see module docstring).
        """
        opts = self.options
        word = opts.word_size
        q_arena = block.concat_index
        ctx_starts = block._starts
        ctx_ends = ctx_starts + np.array([c.length for c in block.contexts], dtype=np.int64)

        results: list[list[HSP] | None] = []
        pool: list[_OpenSubject] = []
        arena = np.empty(0, dtype=np.intp)
        pool_rows = 0
        kernel_peaks: dict = {}
        subject_iter = iter(partition)
        exhausted = False
        trc = current_tracer()

        def finalize(subj: _OpenSubject) -> None:
            subj.found.sort(key=lambda rh: rh[0])
            results[subj.ordinal] = cull_overlapping([h for _, h in subj.found])

        while True:
            # Refill: stream subjects in until the slab bound (always at
            # least one so an oversized subject still makes progress).
            added = False
            while not exhausted and (not pool or pool_rows < opts.fused_slab_rows):
                try:
                    subject_id, s_codes = next(subject_iter)
                except StopIteration:
                    exhausted = True
                    break
                stats.n_subjects += 1
                t_seed = time.perf_counter()
                qpos_concat, spos_arr = lookup.scan(s_codes)
                stats.seed_seconds += time.perf_counter() - t_seed
                stats.n_word_hits += int(qpos_concat.size)
                if qpos_concat.size == 0:
                    results.append([])
                    continue
                runs = self._prepare_runs(block, qpos_concat, spos_arr)
                states = self._make_states(runs)
                if not states:
                    results.append([])
                    continue
                s_index = s_codes if s_codes.dtype == np.intp else s_codes.astype(np.intp)
                subj = _OpenSubject(len(results), subject_id, s_index, runs, states)
                results.append(None)
                pool.append(subj)
                pool_rows += runs.n
                added = True
            if added:
                # Rebuild the subject arena (compacting finished subjects
                # out): one copy per subject per refill it survives.
                arena = np.concatenate([s.s_index for s in pool])
                lo = 0
                for s in pool:
                    s.arena_lo = lo
                    lo += s.s_index.size
            if not pool:
                break

            # Gather this round's pending triggers across the whole pool.
            refs: list[tuple[_OpenSubject, list]] = [
                (subj, st) for subj in pool for st in subj.states
            ]
            m = len(refs)
            qg = np.empty(m, dtype=np.int64)
            sg = np.empty(m, dtype=np.int64)
            q_lo = np.empty(m, dtype=np.int64)
            q_hi = np.empty(m, dtype=np.int64)
            s_lo = np.empty(m, dtype=np.int64)
            s_hi = np.empty(m, dtype=np.int64)
            for j, (subj, st) in enumerate(refs):
                i = st[1]
                c = int(subj.runs.ctx_r[i])
                qg[j] = subj.runs.qg_r[i]
                sg[j] = subj.runs.s_r[i] + subj.arena_lo
                q_lo[j] = ctx_starts[c]
                q_hi[j] = ctx_ends[c]
                s_lo[j] = subj.arena_lo
                s_hi[j] = subj.arena_lo + subj.s_index.size

            t_ext = time.perf_counter()
            ext = batch_ungapped_extend_spans(
                q_arena, arena, qg, sg, q_lo, q_hi, s_lo, s_hi,
                word, self.matrix, opts.xdrop_ungapped,
                window=opts.extension_window, stats=kernel_peaks,
            )
            stats.ungapped_seconds += time.perf_counter() - t_ext

            # Consume extents run by run; admitted triggers only queue their
            # gapped job here — a run's gapped result can only influence its
            # own later triggers (coverage on its diagonal), so every job
            # queued in a round is independent of the others.
            gapped_jobs: list[tuple] = []
            for j, (subj, st) in enumerate(refs):
                i = st[1]
                ctx = block.contexts[int(subj.runs.ctx_r[i])]
                if ext.complete[j]:
                    u_score = int(ext.score[j])
                    u_q_start = int(ext.q_start[j]) - ctx.offset
                    u_q_end = int(ext.q_end[j]) - ctx.offset
                    u_s_start = int(ext.s_start[j]) - subj.arena_lo
                    u_s_end = int(ext.s_end[j]) - subj.arena_lo
                else:
                    # Kernel escalation was capped: exact scalar path.
                    t_u = time.perf_counter()
                    u = ungapped_extend(
                        ctx.codes_index, subj.s_index,
                        int(subj.runs.q_r[i]), int(subj.runs.s_r[i]),
                        word, self.matrix, opts.xdrop_ungapped,
                    )
                    stats.ungapped_seconds += time.perf_counter() - t_u
                    u_score = u.score
                    u_q_start, u_q_end = u.q_start, u.q_end
                    u_s_start, u_s_end = u.s_start, u.s_end
                stats.n_ungapped += 1
                st[3] = u_s_end  # covered
                if bit_score(u_score, self.ungapped_params) >= opts.ungapped_cutoff_bits:
                    # Mid-point of the ungapped segment — the gapped anchor
                    # (same arithmetic as UngappedHSP.seed_point).
                    mid = (u_q_end - u_q_start) // 2
                    gapped_jobs.append((subj, st, i, ctx, u_q_start + mid, u_s_start + mid))

            if gapped_jobs:
                t_g = time.perf_counter()
                aligns = extend_gapped_batch(
                    [
                        (ctx.codes_index, subj.s_index, q_seed, s_seed)
                        for subj, _, _, ctx, q_seed, s_seed in gapped_jobs
                    ],
                    self.matrix,
                    opts.gap_open,
                    opts.gap_extend,
                    opts.xdrop_gapped,
                    opts.band_width,
                    stats=kernel_peaks,
                )
                stats.n_gapped += len(gapped_jobs)
                stats.gapped_seconds += time.perf_counter() - t_g
                for (subj, st, i, ctx, _, _), g in zip(gapped_jobs, aligns):
                    if g is None:
                        continue
                    st[3] = max(st[3], g.s_end)
                    hsp = self._emit_hsp(block, ctx, subj.subject_id, g, db_len, db_seqs)
                    if hsp is not None:
                        subj.found.append((int(subj.runs.rank_r[i]), hsp))

            # Per-round slab high-water mark: subject arena + open subjects'
            # run arrays + this round's trigger rows + kernel scratch peaks.
            run_bytes = sum(
                s.runs.ctx_r.nbytes + s.runs.q_r.nbytes + s.runs.qg_r.nbytes
                + s.runs.s_r.nbytes + s.runs.rank_r.nbytes
                for s in pool
            )
            slab_bytes = (
                arena.nbytes + run_bytes + 6 * 8 * m
                + kernel_peaks.get("peak_window_bytes", 0)
                + kernel_peaks.get("peak_grid_bytes", 0)
            )
            stats.peak_slab_bytes = max(stats.peak_slab_bytes, slab_bytes)
            if trc.enabled:
                trc.instant(
                    "blast.fused_round", cat="blast",
                    round=stats.fused_rounds, rows=m, gapped=len(gapped_jobs),
                    open_subjects=len(pool), slab_bytes=slab_bytes,
                )
            stats.fused_rounds += 1

            # Advance every run past its consumed trigger; finalise subjects
            # whose runs all exhausted so their slab rows free up.
            done: list[_OpenSubject] = []
            for subj in pool:
                nxt = []
                for st in subj.states:
                    st[1] += 1
                    if self._advance_run(st, subj.runs.s_r) >= 0:
                        nxt.append(st)
                subj.states = nxt
                if not nxt:
                    done.append(subj)
            if done:
                for subj in done:
                    finalize(subj)
                    pool_rows -= subj.runs.n
                pool = [s for s in pool if s.states]

        all_hits: list[HSP] = []
        for hits in results:
            all_hits.extend(hits or [])
        return all_hits

    # ---- staged scheduler (parity oracle) -------------------------------------

    def _search_subject(
        self,
        block: QueryBlock,
        lookup,
        subject_id: str,
        s_codes: np.ndarray,
        db_len: int,
        db_seqs: int,
        stats: SearchStats,
    ) -> list[HSP]:
        opts = self.options
        t_seed = time.perf_counter()
        qpos_concat, spos_arr = lookup.scan(s_codes)
        stats.seed_seconds += time.perf_counter() - t_seed
        stats.n_word_hits += int(qpos_concat.size)
        if qpos_concat.size == 0:
            return []
        runs = self._prepare_runs(block, qpos_concat, spos_arr)
        n = runs.n
        word = opts.word_size
        found: list[tuple[int, HSP]] = []

        # Stage 2, batched by rounds: every (context, diagonal) run is an
        # independent admission state machine, and walking one to its next
        # extension trigger needs no extents — coverage jumps and two-hit
        # anchoring depend only on word-hit coordinates.  Each round
        # advances every live run to its pending trigger, extends all of
        # them with one batched kernel call per context, then resumes the
        # runs with their precomputed extents.  Rows extended equal
        # triggers consumed — never the full candidate list — while the
        # kernel amortises the per-extension numpy overhead across runs.
        s_index = s_codes if s_codes.dtype == np.intp else s_codes.astype(np.intp)
        ext_score = np.zeros(n, dtype=np.int64)
        ext_qs = np.zeros(n, dtype=np.int64)
        ext_qe = np.zeros(n, dtype=np.int64)
        ext_ss = np.zeros(n, dtype=np.int64)
        ext_se = np.zeros(n, dtype=np.int64)
        ext_complete = np.zeros(n, dtype=bool)

        waiting = self._make_states(runs)
        while waiting:
            t_ext = time.perf_counter()
            by_ctx: dict[int, list[int]] = {}
            for st in waiting:
                by_ctx.setdefault(int(runs.ctx_r[st[1]]), []).append(st[1])
            for c, row_list in by_ctx.items():
                rows = np.asarray(row_list, dtype=np.int64)
                ext = batch_ungapped_extend(
                    block.contexts[c].codes_index,
                    s_index,
                    runs.q_r[rows],
                    runs.s_r[rows],
                    word,
                    self.matrix,
                    opts.xdrop_ungapped,
                    window=opts.extension_window,
                )
                ext_score[rows] = ext.score
                ext_qs[rows] = ext.q_start
                ext_qe[rows] = ext.q_end
                ext_ss[rows] = ext.s_start
                ext_se[rows] = ext.s_end
                ext_complete[rows] = ext.complete
            stats.ungapped_seconds += time.perf_counter() - t_ext

            # Consume the extents run by run; admitted triggers only queue
            # their gapped job here — the extensions themselves run below as
            # one batched call.  A run's gapped result can only influence
            # *its own* later triggers (coverage on its diagonal), so every
            # job queued in a round is independent of the others.
            gapped_jobs: list[tuple] = []
            for st in waiting:
                i = st[1]
                ctx = block.contexts[int(runs.ctx_r[i])]
                if ext_complete[i]:
                    u_score = int(ext_score[i])
                    u_q_start = int(ext_qs[i])
                    u_q_end = int(ext_qe[i])
                    u_s_start = int(ext_ss[i])
                    u_s_end = int(ext_se[i])
                else:
                    # Kernel escalation was capped: exact scalar path.
                    t_u = time.perf_counter()
                    u = ungapped_extend(
                        ctx.codes_index, s_index, int(runs.q_r[i]), int(runs.s_r[i]),
                        word, self.matrix, opts.xdrop_ungapped,
                    )
                    stats.ungapped_seconds += time.perf_counter() - t_u
                    u_score = u.score
                    u_q_start, u_q_end = u.q_start, u.q_end
                    u_s_start, u_s_end = u.s_start, u.s_end
                stats.n_ungapped += 1
                st[3] = u_s_end  # covered
                if bit_score(u_score, self.ungapped_params) >= opts.ungapped_cutoff_bits:
                    # Mid-point of the ungapped segment — the gapped anchor
                    # (same arithmetic as UngappedHSP.seed_point).
                    mid = (u_q_end - u_q_start) // 2
                    gapped_jobs.append((st, i, ctx, u_q_start + mid, u_s_start + mid))

            if gapped_jobs:
                t_g = time.perf_counter()
                aligns = extend_gapped_batch(
                    [
                        (ctx.codes_index, s_index, q_seed, s_seed)
                        for _, _, ctx, q_seed, s_seed in gapped_jobs
                    ],
                    self.matrix,
                    opts.gap_open,
                    opts.gap_extend,
                    opts.xdrop_gapped,
                    opts.band_width,
                )
                stats.n_gapped += len(gapped_jobs)
                stats.gapped_seconds += time.perf_counter() - t_g
                for (st, i, ctx, _, _), g in zip(gapped_jobs, aligns):
                    if g is None:
                        continue
                    st[3] = max(st[3], g.s_end)
                    hsp = self._emit_hsp(block, ctx, subject_id, g, db_len, db_seqs)
                    if hsp is not None:
                        found.append((int(runs.rank_r[i]), hsp))

            next_waiting = []
            for st in waiting:
                st[1] += 1
                if self._advance_run(st, runs.s_r) >= 0:
                    next_waiting.append(st)
            waiting = next_waiting
        found.sort(key=lambda rh: rh[0])
        return cull_overlapping([h for _, h in found])


class BlastnEngine(_EngineBase):
    """Nucleotide search: exact-word seeding, one-hit trigger, both strands."""

    program = "blastn"

    def _make_matrix(self) -> np.ndarray:
        return nucleotide_matrix(self.options.reward, self.options.penalty)

    def _make_lookup(self, block: QueryBlock) -> NucleotideLookup:
        return NucleotideLookup(block, word_size=self.options.word_size)

    def _lookup_params(self) -> tuple:
        return (self.options.word_size,)


class BlastpEngine(_EngineBase):
    """Protein search: neighbourhood-word seeding, two-hit trigger, BLOSUM62."""

    program = "blastp"

    def _make_matrix(self) -> np.ndarray:
        return BLOSUM62

    def _make_lookup(self, block: QueryBlock) -> ProteinLookup:
        return ProteinLookup(
            block, word_size=self.options.word_size, threshold=self.options.neighbor_threshold
        )

    def _lookup_params(self) -> tuple:
        return (self.options.word_size, self.options.neighbor_threshold)


def make_engine(options: BlastOptions):
    """Engine factory keyed on ``options.program``."""
    if options.program == "blastn":
        return BlastnEngine(options)
    if options.program == "blastp":
        return BlastpEngine(options)
    if options.program == "blastx":
        from repro.blast.blastx import BlastxEngine

        return BlastxEngine(options)
    raise ValueError(f"unknown program {options.program!r}")
