"""The serial BLAST engine: scan → ungapped extend → gapped extend → stats.

This is the "unmodified serial algorithm" layer of the paper's architecture:
mrblast calls :meth:`BlastEngine.search_block` once per work unit (one query
block against one DB partition) exactly as the paper's map() calls the NCBI
C++ toolkit search, passing the whole-database statistics so E-values match
an unsplit search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DbPartition
from repro.blast.extend import ungapped_extend
from repro.blast.gapped import extend_gapped
from repro.blast.hsp import HSP, cull_overlapping, top_hits
from repro.blast.karlin import gapped_params, karlin_params
from repro.blast.lookup import NucleotideLookup, ProteinLookup, QueryBlock
from repro.blast.matrices import BLOSUM62, nucleotide_matrix
from repro.blast.options import BlastOptions
from repro.blast.statistics import bit_score, evalue

__all__ = ["BlastnEngine", "BlastpEngine", "make_engine", "SearchStats"]


@dataclass
class SearchStats:
    """Instrumentation for one search_block call.

    ``busy_seconds`` is the in-search wall time — the quantity the paper's
    Fig. 5 divides by elapsed time to chart "useful CPU utilisation".
    """

    n_subjects: int = 0
    n_word_hits: int = 0
    n_ungapped: int = 0
    n_gapped: int = 0
    n_reported: int = 0
    busy_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        self.n_subjects += other.n_subjects
        self.n_word_hits += other.n_word_hits
        self.n_ungapped += other.n_ungapped
        self.n_gapped += other.n_gapped
        self.n_reported += other.n_reported
        self.busy_seconds += other.busy_seconds


class _EngineBase:
    """Shared search pipeline; subclasses provide alphabet specifics."""

    program: str

    def __init__(self, options: BlastOptions) -> None:
        if options.program != self.program:
            raise ValueError(f"options are for {options.program!r}, engine is {self.program!r}")
        self.options = options
        self.matrix = self._make_matrix()
        self.ungapped_params = karlin_params(
            program=self.program, reward=options.reward, penalty=options.penalty
        )
        self.gapped_stats_params = gapped_params(
            program=self.program,
            reward=options.reward,
            penalty=options.penalty,
            gap_open=options.gap_open,
            gap_extend=options.gap_extend,
        )
        self.last_stats = SearchStats()

    # ---- subclass hooks ----------------------------------------------------

    def _make_matrix(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _make_lookup(self, block: QueryBlock):  # pragma: no cover - abstract
        raise NotImplementedError

    # ---- public API ----------------------------------------------------------

    def search_block(
        self,
        queries: Sequence[SeqRecord],
        partition: DbPartition,
    ) -> list[HSP]:
        """Search a query block against one DB partition.

        Returns per-query top-K HSPs (the per-partition cutoff the paper's
        complexity analysis discusses: K hits per partition survive to the
        collate stage).  E-values use the DB-size overrides when set.
        """
        t0 = time.perf_counter()
        stats = SearchStats()
        opts = self.options
        block = QueryBlock(queries, self.program, use_mask=self._masking_enabled())
        lookup = self._make_lookup(block)
        db_len = opts.db_length_override or partition.total_length
        db_seqs = opts.db_num_seqs_override or partition.num_seqs

        all_hits: list[HSP] = []
        for sid, s_codes in partition:
            stats.n_subjects += 1
            all_hits.extend(
                self._search_subject(block, lookup, sid, s_codes, db_len, db_seqs, stats)
            )

        # Per-query E-value filter + top-K (the per-partition hit list).
        by_query: dict[str, list[HSP]] = {}
        for h in all_hits:
            by_query.setdefault(h.query_id, []).append(h)
        out: list[HSP] = []
        for rec in block.records:  # preserve query input order
            hits = by_query.get(rec.id)
            if hits:
                out.extend(top_hits(hits, opts.max_hits, opts.evalue))
        stats.n_reported = len(out)
        stats.busy_seconds = time.perf_counter() - t0
        self.last_stats = stats
        return out

    # ---- pipeline ------------------------------------------------------------

    def _masking_enabled(self) -> bool:
        return self.options.dust if self.program == "blastn" else self.options.seg

    def _search_subject(
        self,
        block: QueryBlock,
        lookup,
        subject_id: str,
        s_codes: np.ndarray,
        db_len: int,
        db_seqs: int,
        stats: SearchStats,
    ) -> list[HSP]:
        opts = self.options
        qpos_concat, spos_arr = lookup.scan(s_codes)
        stats.n_word_hits += int(qpos_concat.size)
        if qpos_concat.size == 0:
            return []
        ctx_indices = np.asarray(block.context_of(qpos_concat))

        # Process hits grouped by context, ordered along the subject so the
        # per-diagonal bookkeeping sees hits left to right.
        order = np.lexsort((spos_arr, qpos_concat, ctx_indices))
        found: list[HSP] = []
        two_hit = self.program == "blastp" and opts.two_hit_window > 0

        current_ctx = -1
        diag_last: dict[int, int] = {}
        diag_covered: dict[int, int] = {}
        for idx in order:
            ci = int(ctx_indices[idx])
            if ci != current_ctx:
                current_ctx = ci
                diag_last = {}
                diag_covered = {}
            ctx = block.contexts[ci]
            q_pos = int(qpos_concat[idx] - ctx.offset)
            s_pos = int(spos_arr[idx])
            diag = s_pos - q_pos

            if s_pos < diag_covered.get(diag, 0):
                continue  # inside an already-extended region on this diagonal

            if two_hit:
                # NCBI's two-hit rule: remember the *end* of the last word
                # hit on this diagonal; a new hit overlapping it is ignored
                # outright (the anchor survives), a non-overlapping hit
                # within the window triggers extension, and a hit beyond the
                # window becomes the new anchor.
                last_end = diag_last.get(diag)
                if last_end is None:
                    diag_last[diag] = s_pos + opts.word_size
                    continue
                if s_pos < last_end:
                    continue
                if s_pos - last_end > opts.two_hit_window:
                    diag_last[diag] = s_pos + opts.word_size
                    continue
                diag_last[diag] = s_pos + opts.word_size

            u = ungapped_extend(
                ctx.codes, s_codes, q_pos, s_pos, opts.word_size, self.matrix, opts.xdrop_ungapped
            )
            stats.n_ungapped += 1
            diag_covered[diag] = u.s_end
            if bit_score(u.score, self.ungapped_params) < opts.ungapped_cutoff_bits:
                continue

            q_seed, s_seed = u.seed_point()
            g = extend_gapped(
                ctx.codes,
                s_codes,
                q_seed,
                s_seed,
                self.matrix,
                opts.gap_open,
                opts.gap_extend,
                opts.xdrop_gapped,
                opts.band_width,
            )
            stats.n_gapped += 1
            if g is None:
                continue
            diag_covered[diag] = max(diag_covered[diag], g.s_end)

            rec = block.records[ctx.query_index]
            e = evalue(g.score, self.gapped_stats_params, len(rec.seq), db_len, db_seqs)
            if e > opts.evalue:
                continue
            if ctx.strand == 1:
                q_start, q_end = g.q_start, g.q_end
            else:
                q_start, q_end = ctx.length - g.q_end, ctx.length - g.q_start
            found.append(
                HSP(
                    query_id=rec.id,
                    subject_id=subject_id,
                    score=g.score,
                    bit_score=bit_score(g.score, self.gapped_stats_params),
                    evalue=e,
                    q_start=q_start,
                    q_end=q_end,
                    s_start=g.s_start,
                    s_end=g.s_end,
                    identities=g.identities,
                    align_len=g.align_len,
                    gaps=g.gaps,
                    strand=ctx.strand,
                )
            )
        return cull_overlapping(found)


class BlastnEngine(_EngineBase):
    """Nucleotide search: exact-word seeding, one-hit trigger, both strands."""

    program = "blastn"

    def _make_matrix(self) -> np.ndarray:
        return nucleotide_matrix(self.options.reward, self.options.penalty)

    def _make_lookup(self, block: QueryBlock) -> NucleotideLookup:
        return NucleotideLookup(block, word_size=self.options.word_size)


class BlastpEngine(_EngineBase):
    """Protein search: neighbourhood-word seeding, two-hit trigger, BLOSUM62."""

    program = "blastp"

    def _make_matrix(self) -> np.ndarray:
        return BLOSUM62

    def _make_lookup(self, block: QueryBlock) -> ProteinLookup:
        return ProteinLookup(
            block, word_size=self.options.word_size, threshold=self.options.neighbor_threshold
        )


def make_engine(options: BlastOptions):
    """Engine factory keyed on ``options.program``."""
    if options.program == "blastn":
        return BlastnEngine(options)
    if options.program == "blastp":
        return BlastpEngine(options)
    if options.program == "blastx":
        from repro.blast.blastx import BlastxEngine

        return BlastxEngine(options)
    raise ValueError(f"unknown program {options.program!r}")
