"""From-scratch BLAST: the serial search engine the paper wraps.

The paper's mrblast calls an unmodified serial NCBI BLAST through its C++
toolkit API.  This package is that substrate, implemented in Python with the
same architecture NCBI describes (and the paper summarises in §II.B):

1. **Scan** — a word lookup table is built over a *block of query
   sequences*; each database sequence is streamed past it.  Nucleotide
   search uses exact fixed-size words; protein search uses neighbourhood
   words scoring ≥ T under BLOSUM62.
2. **Ungapped extension** — word hits are extended without gaps under an
   X-drop rule (two-hit trigger for protein).
3. **Gapped extension** — surviving HSPs get a banded affine-gap X-drop
   extension with traceback.

Every surviving alignment is scored with Karlin-Altschul statistics (λ, K
computed from the score system; E-values with length adjustment).  The
database is stored in partitioned 2-bit packed volumes built by
:mod:`repro.blast.formatdb` — the equivalent of NCBI formatdb that the paper
runs over its 364 Gbp database — and the **effective DB length can be
overridden**, which is the property DB-split parallelisation relies on: each
partition search reports E-values as if against the whole database, so hits
merge correctly in the reduce step.
"""

from repro.blast.options import BlastOptions
from repro.blast.hsp import HSP
from repro.blast.matrices import BLOSUM62, nucleotide_matrix
from repro.blast.karlin import KarlinParams, karlin_params
from repro.blast.statistics import bit_score, evalue, effective_lengths
from repro.blast.formatdb import DatabaseWriter, format_database
from repro.blast.dbreader import DatabaseAlias, DbPartition
from repro.blast.engine import BlastnEngine, BlastpEngine, make_engine
from repro.blast.blastx import BlastxEngine
from repro.blast.tblastn import TblastnEngine
from repro.blast.tabular import format_tabular, parse_tabular
from repro.blast.pairwise import render_pairwise

__all__ = [
    "BlastOptions",
    "HSP",
    "BLOSUM62",
    "nucleotide_matrix",
    "KarlinParams",
    "karlin_params",
    "bit_score",
    "evalue",
    "effective_lengths",
    "format_database",
    "DatabaseWriter",
    "DatabaseAlias",
    "DbPartition",
    "BlastnEngine",
    "BlastpEngine",
    "BlastxEngine",
    "TblastnEngine",
    "make_engine",
    "format_tabular",
    "parse_tabular",
    "render_pairwise",
]
