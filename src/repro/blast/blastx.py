"""blastx: translated nucleotide query against a protein database.

The paper's introduction motivates exactly this workload: "the searches are
done for the protein sequences, which ... [are] predicted on such reads
protein fragments".  blastx searches all six reading frames of each DNA
query with the blastp machinery and reports hits in *nucleotide* query
coordinates.

Implementation: each query is expanded into up to six frame records
(frames +1/+2/+3 on the forward strand, -1/-2/-3 on the reverse
complement); the inner :class:`~repro.blast.engine.BlastpEngine` searches
them as a block — the batched stage-2 extension, band-compressed gapped
kernel, per-batch stage timings, and ``extension_window``/``band_width``
options all flow through unchanged; coordinates map back as

- frame +k:  nt = (k-1) + 3*aa
- frame -k:  nt = L - (k-1) - 3*aa   (alignment reported on the minus strand)

Per-query top-K selection happens after merging all frames, as NCBI does.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.bio.seq import SeqRecord, reverse_complement, translate
from repro.blast.dbreader import DbPartition
from repro.blast.engine import BlastpEngine
from repro.blast.hsp import HSP, top_hits
from repro.blast.options import BlastOptions

__all__ = ["BlastxEngine", "translated_frames"]

_FRAME_SEP = "|frame"


def translated_frames(record: SeqRecord, min_aa: int = 10) -> list[tuple[int, SeqRecord]]:
    """All six translated frames of a DNA record.

    Stop codons translate to ``*`` rather than truncating; frames shorter
    than ``min_aa`` residues are dropped.
    """
    out: list[tuple[int, SeqRecord]] = []
    rc = reverse_complement(record.seq)
    for frame in (1, 2, 3):
        for strand_seq, signed in ((record.seq, frame), (rc, -frame)):
            # Translate through stop codons: a stop becomes "*" (BLOSUM62
            # score -4), as real translated searches do — truncating at the
            # first stop would hide genes behind untranslated flanks.
            protein = translate(strand_seq, frame=frame - 1, stop=False)
            if len(protein) >= min_aa:
                out.append(
                    (signed, SeqRecord(f"{record.id}{_FRAME_SEP}{signed:+d}", protein))
                )
    return out


class BlastxEngine:
    """Translated search built on the blastp engine."""

    program = "blastx"

    def __init__(self, options: BlastOptions, min_frame_aa: int = 10) -> None:
        if options.program not in ("blastp", "blastx"):
            raise ValueError(
                "BlastxEngine takes blastp-style options (protein scoring); "
                f"got program {options.program!r}"
            )
        self.options = options
        self.min_frame_aa = min_frame_aa
        self._inner = BlastpEngine(replace(options, program="blastp"))

    @property
    def last_stats(self):
        return self._inner.last_stats

    @property
    def lookup_cache(self):
        return self._inner.lookup_cache

    def set_lookup_cache(self, cache) -> None:
        """Forward the cross-partition lookup cache to the inner engine.

        Frame records are re-derived per call, but the cache key is content
        based (id, length, string hash), so identical queries hit across
        partitions regardless.
        """
        self._inner.set_lookup_cache(cache)

    def search_block(
        self, queries: Sequence[SeqRecord], partition: DbPartition
    ) -> list[HSP]:
        """Search DNA queries against a protein partition."""
        frame_records: list[SeqRecord] = []
        frame_of: dict[str, tuple[str, int, int]] = {}
        for rec in queries:
            for signed, frec in translated_frames(rec, self.min_frame_aa):
                frame_records.append(frec)
                frame_of[frec.id] = (rec.id, signed, len(rec.seq))
        if not frame_records:
            return []
        aa_hits = self._inner.search_block(frame_records, partition)

        by_query: dict[str, list[HSP]] = {}
        for h in aa_hits:
            query_id, signed, nt_len = frame_of[h.query_id]
            frame = abs(signed)
            if signed > 0:
                q_start = (frame - 1) + 3 * h.q_start
                q_end = (frame - 1) + 3 * h.q_end
                strand = 1
            else:
                q_start = nt_len - (frame - 1) - 3 * h.q_end
                q_end = nt_len - (frame - 1) - 3 * h.q_start
                strand = -1
            mapped = HSP(
                query_id=query_id,
                subject_id=h.subject_id,
                score=h.score,
                bit_score=h.bit_score,
                evalue=h.evalue,
                q_start=q_start,
                q_end=q_end,
                s_start=h.s_start,
                s_end=h.s_end,
                identities=h.identities,
                align_len=h.align_len,
                gaps=h.gaps,
                strand=strand,
                frame=signed,
            )
            by_query.setdefault(query_id, []).append(mapped)

        out: list[HSP] = []
        for rec in queries:
            hits = by_query.get(rec.id)
            if hits:
                out.extend(top_hits(hits, self.options.max_hits, self.options.evalue))
        return out
