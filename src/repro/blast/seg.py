"""Entropy-based low-complexity masking for protein queries.

A windowed Shannon-entropy criterion standing in for SEG (Wootton &
Federhen): windows of ``window`` residues whose entropy falls below
``threshold`` bits are soft-masked.  True SEG refines window boundaries with
a probability criterion; for seeding suppression the entropy core is the
operative part, and the engine applies the same soft-mask semantics as DUST
(no seeds in masked regions, extensions may cross).
"""

from __future__ import annotations

import numpy as np

from repro.bio.alphabet import PROTEIN

__all__ = ["seg_mask", "window_entropy"]

_DEFAULT_WINDOW = 12
_DEFAULT_THRESHOLD = 2.2  # bits; random protein is ~4.1 bits


def window_entropy(codes: np.ndarray) -> float:
    """Shannon entropy (bits) of residue composition of one window."""
    if codes.size == 0:
        return 0.0
    counts = np.bincount(codes, minlength=PROTEIN.size).astype(np.float64)
    p = counts[counts > 0] / codes.size
    return float(-(p * np.log2(p)).sum())


def seg_mask(
    seq: str,
    window: int = _DEFAULT_WINDOW,
    threshold: float = _DEFAULT_THRESHOLD,
) -> np.ndarray:
    """Boolean mask (True = masked) over protein positions."""
    if window < 4:
        raise ValueError(f"window must be >= 4, got {window}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    codes = PROTEIN.encode(seq)
    n = codes.size
    mask = np.zeros(n, dtype=bool)
    if n < window:
        if n and window_entropy(codes) < threshold * (n / window):
            mask[:] = True
        return mask
    for start in range(0, n - window + 1):
        if window_entropy(codes[start : start + window]) < threshold:
            mask[start : start + window] = True
    return mask
