"""DUST low-complexity masking for nucleotide queries.

BLAST seeds in low-complexity sequence (poly-A runs, microsatellites) match
half the database by chance; NCBI blastn therefore DUST-masks queries by
default, and the paper notes that "the low-complexity filtering is usually
requested".  This is the classic windowed DUST: the score of a window is
based on triplet over-representation,

    score(window) = 10 · Σ_t c_t·(c_t − 1)/2 / (w − 3)

(c_t = count of triplet t in the window); positions inside windows scoring
above the threshold are soft-masked — excluded from *seeding* but still
available to extensions, matching BLAST's soft-mask semantics.
"""

from __future__ import annotations

import numpy as np

from repro.bio.alphabet import DNA

__all__ = ["dust_mask", "dust_intervals"]

_DEFAULT_WINDOW = 64
_DEFAULT_THRESHOLD = 20.0


def _triplet_indices(codes: np.ndarray) -> np.ndarray:
    """Packed 6-bit triplet index at every position (length n-2)."""
    if codes.size < 3:
        return np.empty(0, dtype=np.int64)
    c = codes.astype(np.int64)
    return c[:-2] * 16 + c[1:-1] * 4 + c[2:]


def dust_score(codes: np.ndarray) -> float:
    """DUST score of one window of encoded bases."""
    trips = _triplet_indices(codes)
    if trips.size < 1:
        return 0.0
    counts = np.bincount(trips, minlength=64)
    rep = float((counts * (counts - 1)).sum()) / 2.0
    return 10.0 * rep / trips.size


def dust_mask(
    seq: str,
    window: int = _DEFAULT_WINDOW,
    threshold: float = _DEFAULT_THRESHOLD,
    step: int = 32,
) -> np.ndarray:
    """Boolean mask (True = masked) over the sequence positions."""
    if window < 8:
        raise ValueError(f"window must be >= 8, got {window}")
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    codes = DNA.encode(seq)
    n = codes.size
    mask = np.zeros(n, dtype=bool)
    if n < 3:
        return mask
    for start in range(0, max(n - 2, 1), step):
        end = min(start + window, n)
        if dust_score(codes[start:end]) > threshold:
            mask[start:end] = True
        if end == n:
            break
    return mask


def dust_intervals(seq: str, window: int = _DEFAULT_WINDOW,
                   threshold: float = _DEFAULT_THRESHOLD) -> list[tuple[int, int]]:
    """Masked regions as half-open (start, end) intervals."""
    mask = dust_mask(seq, window=window, threshold=threshold)
    intervals: list[tuple[int, int]] = []
    start = None
    for i, m in enumerate(mask):
        if m and start is None:
            start = i
        elif not m and start is not None:
            intervals.append((start, i))
            start = None
    if start is not None:
        intervals.append((start, len(mask)))
    return intervals
