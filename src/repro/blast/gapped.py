"""Stage 3 of BLAST: banded affine-gap X-drop extension with traceback.

From a seed point inside a promising ungapped HSP, the alignment is extended
independently to the left and to the right with a gapped dynamic program
(paper §II.B: "the third stage performs gapped alignment").  Each half is a
*global-start* alignment — every path begins at the seed — pruned two ways:

- **band**: the alignment may drift at most ``band`` cells off the seed
  diagonal (a bounded version of NCBI's dynamically grown X-drop frontier);
- **X-drop**: cells scoring more than ``xdrop`` below the best cell seen so
  far are dropped; a row with no live cells terminates the extension.

Gap cost model: a gap of length g costs ``gap_open + g*gap_extend``.

The production kernel stores the three DP states M/Ix/Iy *band-compressed*:
``(rows, 2*band+1)`` int32 arrays indexed by diagonal offset ``c = j - i +
band``, with an integer ``-inf`` sentinel.  Only the live strip is ever
allocated — the O(n·m) dense matrices of the original implementation are
gone — and the traceback walks the compressed band directly with exact
integer comparisons (no float tolerance).  Rows are computed with numpy
vector operations; the within-row gap recurrence is a prefix-max scan, so
the Python-level loop is over rows only.

:func:`reference_half_extension` / :func:`reference_extend_gapped` keep the
original dense float32 implementation as the parity oracle: the property
tests assert the banded kernel reproduces its scores, coordinates and
operation strings element-for-element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GappedAlignment",
    "HalfExtension",
    "extend_gapped",
    "extend_gapped_batch",
    "half_extension",
    "reference_extend_gapped",
    "reference_half_extension",
]

_NEG = np.float32(-1e30)
#: integer -inf for the band-compressed kernel: deep enough that no real
#: path score (bounded by sequence length times the matrix range) comes
#: near it, shallow enough that per-row arithmetic on sentinels cannot
#: overflow int32.
_NEG_I32 = np.int32(-(2**30))


@dataclass(frozen=True)
class HalfExtension:
    """One direction of a gapped extension, measured from the seed."""

    score: int
    q_len: int  # query residues consumed
    s_len: int  # subject residues consumed
    identities: int
    align_len: int
    gaps: int
    #: alignment operations walking *away* from the seed: 'M' aligned pair,
    #: 'I' gap in subject (query residue alone), 'D' gap in query
    ops: str = ""


@dataclass(frozen=True)
class GappedAlignment:
    """A complete gapped extension around a seed point."""

    score: int
    q_start: int
    q_end: int
    s_start: int
    s_end: int
    identities: int
    align_len: int
    gaps: int
    #: left-to-right operation string over the whole alignment ('M'/'I'/'D')
    ops: str = ""


_ZERO_HALF = HalfExtension(0, 0, 0, 0, 0, 0)


def half_extension(
    q: np.ndarray,
    s: np.ndarray,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> HalfExtension:
    """Best global-start alignment of prefixes of ``q`` and ``s``.

    Band-compressed kernel: DP cell (i, j) lives at column ``j - i + band``
    of row i, so a row is ``2*band+1`` wide regardless of subject length.
    Returns the zero extension when nothing scores positive.
    """
    n, m_full = int(q.size), int(s.size)
    if n == 0 or m_full == 0:
        return _ZERO_HALF
    # The path cannot drift more than ``band`` off the diagonal, so at most
    # n + band subject residues are reachable.
    m = min(m_full, n + band)

    open_cost = gap_open + gap_extend
    width = 2 * band + 1
    NEG = _NEG_I32

    q_idx = q if q.dtype == np.intp else q.astype(np.intp)
    s_idx = s[:m] if s.dtype == np.intp else s[:m].astype(np.intp)
    # Pad the subject so row i's pair-score gather is always one contiguous
    # window: step c of row i reads s[i-1 + c - band] = s_pad[i-1 + c].
    # Sized for the deepest row (i = n), which reads up to index n-1+width.
    s_pad = np.zeros(max(m, n) + 2 * band, dtype=np.intp)
    s_pad[band : band + m] = s_idx
    # Pair scores pairs[i-1, c] = matrix[q[i-1], s[i-1+c-band]] are gathered
    # in blocks of rows — one 2-D fancy index per block instead of one per
    # row, without paying for rows the X-drop never reaches.
    windows = np.lib.stride_tricks.sliding_window_view(s_pad, width)[:n]
    pair_block_rows = 128
    pair_block = np.empty((0, width), dtype=np.int32)
    pair_lo = 0  # first q row covered by pair_block

    # One slab per DP matrix inside a single grid: G[:, i] is the (3, width)
    # view of row i, so X-drop masking hits M, Ix and Iy in one broadcast.
    G = np.full((3, n + 1, width), NEG, dtype=np.int32)
    M, Ix, Iy = G[0], G[1], G[2]  # Ix: gap in subject; Iy: gap in query
    M[0, band] = 0
    jmax0 = min(band, m)
    if jmax0 >= 1:
        j0 = np.arange(1, jmax0 + 1)
        Iy[0, band + j0] = -open_cost - gap_extend * (j0 - 1)

    ext_c = (gap_extend * np.arange(width)).astype(np.int32)
    # Per-column Iy deduction: open_cost + gap_extend * (c - 1).
    iy_off = (open_cost + gap_extend * np.arange(-1, width - 1)).astype(np.int32)
    # ``prev_best`` carries max(M, Ix, Iy) of the previous row *after* its
    # X-drop masking, so it never needs recomputing; it swaps with
    # ``row_best`` at the bottom of the loop.
    prev_best = np.maximum(M[0], Iy[0])
    scratch = np.empty(width, dtype=np.int32)
    row_best = np.empty(width, dtype=np.int32)
    dead_floor = int(NEG) // 2
    best_seen = 0
    last_live_row = 0

    for i in range(1, n + 1):
        prev_Ix = Ix[i - 1]

        # M[i, c] comes from (i-1, j-1): the same diagonal offset c.  Rows
        # are computed in place in the grids, so there is no copy-back.
        r = i - 1
        if r - pair_lo >= pair_block.shape[0]:
            pair_lo = r
            blk = matrix[q_idx[r : r + pair_block_rows, None], windows[r : r + pair_block_rows]]
            pair_block = blk if blk.dtype == np.int32 else blk.astype(np.int32)
        m_row = M[i]
        np.add(prev_best, pair_block[r - pair_lo], out=m_row)

        # Ix[i, c] comes from (i-1, j): offset c+1 in the previous row.
        ix_row = Ix[i]
        np.subtract(prev_best[1:], open_cost, out=ix_row[:-1])
        np.subtract(prev_Ix[1:], gap_extend, out=scratch[:-1])
        np.maximum(ix_row[:-1], scratch[:-1], out=ix_row[:-1])
        ix_row[-1] = NEG

        # Columns whose j = i + c - band falls outside the subject do not
        # exist; M additionally needs j >= 1 (it consumes s[j-1]).  The
        # valid c range is contiguous, so masking is two slice stores.
        lo = band - i  # c of j == 0
        hi = lo + m  # c of j == m
        if lo > 0:
            m_row[: lo + 1] = NEG  # j <= 0
            ix_row[:lo] = NEG  # j < 0
        elif lo == 0:
            m_row[0] = NEG  # j == 0 in range
        if hi < width - 1:
            tail = max(hi + 1, 0)
            m_row[tail:] = NEG
            ix_row[tail:] = NEG

        # Iy[i, c] = max_{c'<c} base[c'] - open_cost - ext*(c-1-c'), solved
        # with a prefix-max scan over t[c'] = base[c'] + ext*c' (band-prune
        # M and Ix first so the scan can only chain from kept cells — the
        # traceback relies on every stored value being explained by stored
        # predecessors).
        np.maximum(m_row, ix_row, out=row_best)  # also the Iy scan base
        np.add(row_best, ext_c, out=scratch)
        np.maximum.accumulate(scratch, out=scratch)
        iy_row = Iy[i]
        np.subtract(scratch[:-1], iy_off[1:], out=iy_row[1:])
        iy_row[0] = NEG
        if lo >= 0:
            iy_row[: lo + 1] = NEG  # j <= 0
        if hi < width - 1:
            iy_row[max(hi + 1, 0) :] = NEG

        np.maximum(row_best, iy_row, out=row_best)
        row_max = int(row_best.max())
        if row_max <= dead_floor:
            last_live_row = i - 1
            break
        # Integer v < float t  <=>  v < ceil(t): keeps the compare in int32.
        dead = row_best < np.int32(math.ceil(best_seen - xdrop))
        np.copyto(G[:, i], NEG, where=dead)
        np.copyto(row_best, NEG, where=dead)
        prev_best, row_best = row_best, prev_best

        if row_max > best_seen:
            best_seen = row_max
        last_live_row = i

    rows = last_live_row + 1
    best_grid = np.maximum(np.maximum(M[:rows], Ix[:rows]), Iy[:rows])
    flat = int(np.argmax(best_grid))
    bi, bc = divmod(flat, width)
    best_score = int(best_grid[bi, bc])
    if best_score <= 0:
        return _ZERO_HALF
    bj = bc + bi - band

    return _traceback_banded(
        q, s, M, Ix, Iy, band, bi, bj, best_score, gap_extend, open_cost
    )


#: upper bound on halves advanced in one lockstep grid; beyond this the
#: per-row elementwise work dominates and bigger batches stop paying.
_CHUNK_HALVES = 64
#: cap on one chunk's (3, nmax+1, k, width) DP grid, so a single very deep
#: half cannot blow memory up — the chunk narrows instead.
_CHUNK_BYTES = 32 << 20


def _half_extension_many(
    halves: list,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
    stats: dict | None = None,
) -> list:
    """Many independent half extensions, advanced in lockstep batches.

    ``halves`` is a list of ``(q, s)`` code arrays; the result list matches
    it index for index.  Halves are sorted by query depth (descending) and
    cut into chunks whose DP grids fit ``_CHUNK_BYTES``; within a chunk all
    halves advance one DP row per Python iteration, so the per-row numpy
    dispatch cost is amortised across the batch.  Per-half semantics are
    exactly :func:`half_extension` — independent X-drop thresholds,
    termination rows, tracebacks — which the parity suite checks against
    the dense oracle.
    """
    out: list = [None] * len(halves)
    active = []
    for idx, (q_h, s_h) in enumerate(halves):
        if q_h.size == 0 or s_h.size == 0:
            out[idx] = _ZERO_HALF
        else:
            active.append(idx)
    if not active:
        return out
    depths = np.array([halves[i][0].size for i in active], dtype=np.int64)
    order = np.argsort(-depths, kind="stable")
    width = 2 * band + 1
    pos = 0
    while pos < len(active):
        # Sorted descending, so the chunk's deepest half comes first and
        # sizes the grid; similar depths land together, keeping the padded
        # rows (beyond a shallower half's end) cheap.
        nmax = int(depths[order[pos]])
        fit = _CHUNK_BYTES // (3 * (nmax + 1) * width * 4)
        k = max(1, min(_CHUNK_HALVES, fit, len(active) - pos))
        idxs = [active[int(order[p])] for p in range(pos, pos + k)]
        pos += k
        if stats is not None:
            stats["peak_grid_bytes"] = max(
                stats.get("peak_grid_bytes", 0), 3 * (nmax + 1) * k * width * 4
            )
        results = _half_extension_chunk(
            [halves[i] for i in idxs], matrix, gap_open, gap_extend, xdrop, band
        )
        for i, res in zip(idxs, results):
            out[i] = res
    return out


def _half_extension_chunk(
    halves: list,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> list:
    """One lockstep chunk: halves non-empty, sorted by query depth desc.

    Every DP row is computed for the *live prefix* of the chunk only: the
    depth sort means halves whose query is exhausted form a suffix, so row
    ``i`` slices all per-row arrays to the first ``klive`` halves and the
    work per row tracks the number of halves that still need it.
    """
    k = len(halves)
    open_cost = gap_open + gap_extend
    width = 2 * band + 1
    NEG = _NEG_I32
    ns = np.array([q_h.size for q_h, _ in halves], dtype=np.int64)
    ms = np.array(
        [min(int(s_h.size), int(n) + band) for (_, s_h), n in zip(halves, ns)],
        dtype=np.int64,
    )
    nmax = int(ns[0])  # deepest half first

    q_idx = [
        q_h if q_h.dtype == np.intp else q_h.astype(np.intp) for q_h, _ in halves
    ]
    windows = []
    for (_, s_h), n_h, m_h in zip(halves, ns, ms):
        n_h, m_h = int(n_h), int(m_h)
        s_i = s_h[:m_h] if s_h.dtype == np.intp else s_h[:m_h].astype(np.intp)
        s_pad = np.zeros(max(m_h, n_h) + 2 * band, dtype=np.intp)
        s_pad[band : band + m_h] = s_i
        windows.append(np.lib.stride_tricks.sliding_window_view(s_pad, width)[:n_h])

    pair_block_rows = 128
    pair_block = np.empty((0, k, width), dtype=np.int32)
    pair_lo = 0

    # Same slab layout as half_extension with the batch axis in between:
    # G[:, i] is the (3, k, width) view of row i across all halves.
    G = np.full((3, nmax + 1, k, width), NEG, dtype=np.int32)
    M, Ix, Iy = G[0], G[1], G[2]
    M[0, :, band] = 0
    for h in range(k):
        jmax0 = min(band, int(ms[h]))
        if jmax0 >= 1:
            j0 = np.arange(1, jmax0 + 1)
            Iy[0, h, band + j0] = -open_cost - gap_extend * (j0 - 1)

    ext_c = (gap_extend * np.arange(width)).astype(np.int32)
    iy_off = (open_cost + gap_extend * np.arange(-1, width - 1)).astype(np.int32)

    # Cell (i, c) is subject column j = c + i - band.  The left band edge
    # (j <= 0 for M/Iy, j < 0 for Ix) is one contiguous slice per row; the
    # right edge j > m is per-half (ragged), masked with one compare whose
    # result serves all three states.
    cols_j = np.arange(width, dtype=np.int64) - band  # j - i per column
    ms_col = ms[:, None]
    gt_buf = np.empty((k, width), dtype=bool)

    prev_best = np.maximum(M[0], Iy[0])  # (k, width)
    scratch = np.empty((k, width), dtype=np.int32)
    row_best = np.empty((k, width), dtype=np.int32)
    thr = np.empty((k, 1), dtype=np.int32)
    dead_floor = np.int32(int(NEG) // 2)
    # Integer v < float(B - x)  <=>  v < ceil(B - x) == B - floor(x) for
    # integer B: the whole X-drop compare stays in int32.
    xfloor = np.int32(math.floor(xdrop))
    best_seen = np.zeros(k, dtype=np.int32)
    last_live = np.zeros(k, dtype=np.int64)
    alive = np.ones(k, dtype=bool)

    klive = k
    for i in range(1, nmax + 1):
        while klive > 0 and int(ns[klive - 1]) < i:
            klive -= 1  # finished halves drop off the live prefix
        if klive == 0 or not alive[:klive].any():
            break
        sl = slice(0, klive)
        pb = prev_best[sl]
        sc = scratch[sl]
        rb = row_best[sl]

        r = i - 1
        if r - pair_lo >= pair_block.shape[0]:
            pair_lo = r
            # Zero-filled rows keep a shorter half's sentinel arithmetic in
            # range on rows it never reaches.
            pair_block = np.zeros((pair_block_rows, k, width), dtype=np.int32)
            for h in range(klive):
                win = windows[h][r : r + pair_block_rows]
                if win.shape[0]:
                    pair_block[: win.shape[0], h] = matrix[
                        q_idx[h][r : r + win.shape[0], None], win
                    ]
        m_row = M[i, sl]
        np.add(pb, pair_block[r - pair_lo, sl], out=m_row)
        ix_row = Ix[i, sl]
        np.subtract(pb[:, 1:], open_cost, out=ix_row[:, :-1])
        np.subtract(Ix[i - 1, sl][:, 1:], gap_extend, out=sc[:, :-1])
        np.maximum(ix_row[:, :-1], sc[:, :-1], out=ix_row[:, :-1])
        ix_row[:, -1] = NEG  # no c+1 predecessor at the right band edge

        lo = band - i  # column of j == 0
        if lo >= 0:
            m_row[:, : lo + 1] = NEG  # j <= 0
            if lo > 0:
                ix_row[:, :lo] = NEG  # j < 0
        np.greater(cols_j + i, ms_col[sl], out=gt_buf[sl])  # j > m[h]
        gt = gt_buf[sl]
        np.copyto(m_row, NEG, where=gt)
        np.copyto(ix_row, NEG, where=gt)

        np.maximum(m_row, ix_row, out=rb)  # also the Iy scan base
        np.add(rb, ext_c, out=sc)
        np.maximum.accumulate(sc, axis=1, out=sc)
        iy_row = Iy[i, sl]
        np.subtract(sc[:, :-1], iy_off[1:], out=iy_row[:, 1:])
        iy_row[:, 0] = NEG  # no c' < c at the left band edge
        if lo >= 0:
            iy_row[:, : lo + 1] = NEG
        np.copyto(iy_row, NEG, where=gt)

        np.maximum(rb, iy_row, out=rb)
        rm = rb.max(axis=1)  # (klive,)
        # Mask with the thresholds of the *previous* rows: best_seen is
        # updated only after masking, exactly as in the solo kernel.
        np.subtract(best_seen[sl], xfloor, out=thr[sl, 0])
        dead = rb < thr[sl]
        np.copyto(G[:, i, sl], NEG, where=dead)
        np.copyto(rb, NEG, where=dead)
        prev_best, row_best = row_best, prev_best

        # A row whose masked maximum sinks to the sentinel floor kills its
        # half for good: last_live freezes, later rows stay all-NEG.
        row_dead = rm <= dead_floor
        alive[sl] &= ~row_dead
        upd = alive[sl]
        np.maximum(best_seen[sl], rm, out=best_seen[sl], where=upd)
        last_live[sl][upd] = i

    results = []
    for h in range(k):
        rows = int(last_live[h]) + 1
        best_grid = np.maximum(np.maximum(M[:rows, h], Ix[:rows, h]), Iy[:rows, h])
        flat = int(np.argmax(best_grid))
        bi, bc = divmod(flat, width)
        best_score = int(best_grid[bi, bc])
        if best_score <= 0:
            results.append(_ZERO_HALF)
            continue
        bj = bc + bi - band
        results.append(
            _traceback_banded(
                halves[h][0], halves[h][1], M[:, h], Ix[:, h], Iy[:, h],
                band, bi, bj, best_score, gap_extend, open_cost,
            )
        )
    return results


def _traceback_banded(
    q: np.ndarray,
    s: np.ndarray,
    M: np.ndarray,
    Ix: np.ndarray,
    Iy: np.ndarray,
    band: int,
    bi: int,
    bj: int,
    best_score: int,
    gap_extend: int,
    open_cost: int,
) -> HalfExtension:
    """Walk back from the best cell over the compressed band.

    Cell (i, j) lives at ``[i, j - i + band]``; every move in the walk stays
    inside the band by construction (stored cells only chain from stored
    cells).  Integer scores make the gap-run test an exact equality.
    """
    width = 2 * band + 1
    NEG = int(_NEG_I32)

    def cell(grid: np.ndarray, i: int, j: int) -> int:
        c = j - i + band
        if 0 <= c < width:
            return grid.item(i, c)
        return NEG

    def argmax3(a: int, b: int, c: int) -> int:
        if a >= b:
            return 0 if a >= c else 2
        return 1 if b >= c else 2

    i, j = bi, bj
    state = argmax3(cell(M, i, j), cell(Ix, i, j), cell(Iy, i, j))
    identities = 0
    align_len = 0
    gaps = 0
    ops: list[str] = []  # collected end -> seed; reversed below
    max_steps = 2 * (bi + bj) + 4  # every step decrements i or j; guard anyway
    steps = 0
    while i > 0 or j > 0:
        steps += 1
        if steps > max_steps:  # pragma: no cover - defensive
            raise RuntimeError("gapped traceback failed to terminate")
        if state == 0:  # M: aligned pair
            align_len += 1
            ops.append("M")
            if q[i - 1] == s[j - 1]:
                identities += 1
            i -= 1
            j -= 1
            if i == 0 and j == 0:
                break
            state = argmax3(cell(M, i, j), cell(Ix, i, j), cell(Iy, i, j))
        elif state == 1:  # Ix: gap in subject, consume query
            align_len += 1
            gaps += 1
            ops.append("I")
            cur = cell(Ix, i, j)
            i -= 1
            if cur == cell(Ix, i, j) - gap_extend:
                state = 1
            else:
                state = argmax3(cell(M, i, j), NEG, cell(Iy, i, j))
        else:  # Iy: gap in query, consume subject
            align_len += 1
            gaps += 1
            ops.append("D")
            cur = cell(Iy, i, j)
            j -= 1
            if cur == cell(Iy, i, j) - gap_extend:
                state = 2
            else:
                state = argmax3(cell(M, i, j), cell(Ix, i, j), NEG)
    return HalfExtension(
        score=best_score,
        q_len=bi,
        s_len=bj,
        identities=identities,
        align_len=align_len,
        gaps=gaps,
        ops="".join(reversed(ops)),  # seed -> extension end order
    )


def extend_gapped(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_seed: int,
    s_seed: int,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> GappedAlignment | None:
    """Gapped extension around ``(q_seed, s_seed)``.

    The left half aligns the reversed prefixes ending just before the seed;
    the right half aligns the suffixes starting at the seed.  Both halves
    run in one lockstep batch (:func:`_half_extension_many`).  Returns
    ``None`` when no positive-scoring alignment exists.
    """
    return extend_gapped_batch(
        [(q_codes, s_codes, q_seed, s_seed)],
        matrix, gap_open, gap_extend, xdrop, band,
    )[0]


def extend_gapped_batch(
    seeds,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
    stats: dict | None = None,
) -> list:
    """Gapped extensions around many seed points, batched.

    ``seeds`` is a sequence of ``(q_codes, s_codes, q_seed, s_seed)``
    tuples; the result list matches it index for index, each entry a
    :class:`GappedAlignment` or ``None`` exactly as :func:`extend_gapped`
    would return for that seed.  All ``2 * len(seeds)`` halves advance
    through :func:`_half_extension_many` in lockstep chunks, so the per-DP-
    row numpy overhead is paid once per chunk instead of once per seed.
    Results are independent of how seeds are grouped into calls — each
    half keeps its own X-drop threshold, termination row and traceback —
    so callers may batch across subjects and queries freely.

    ``stats`` (optional dict) accumulates ``peak_grid_bytes``: the largest
    band-compressed DP grid any lockstep chunk allocated.
    """
    halves = []
    for q_codes, s_codes, q_seed, s_seed in seeds:
        if not (0 <= q_seed <= q_codes.size) or not (0 <= s_seed <= s_codes.size):
            raise ValueError("seed point out of range")
        halves.append((q_codes[:q_seed][::-1], s_codes[:s_seed][::-1]))
        halves.append((q_codes[q_seed:], s_codes[s_seed:]))
    done = _half_extension_many(
        halves, matrix, gap_open, gap_extend, xdrop, band, stats
    )
    return [
        _combine_halves(done[2 * t], done[2 * t + 1], seed[2], seed[3])
        for t, seed in enumerate(seeds)
    ]


def _extend_gapped_with(
    half,
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_seed: int,
    s_seed: int,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> GappedAlignment | None:
    """Shared seed-splitting logic over either half-extension kernel."""
    if not (0 <= q_seed <= q_codes.size) or not (0 <= s_seed <= s_codes.size):
        raise ValueError("seed point out of range")
    right = half(
        q_codes[q_seed:], s_codes[s_seed:], matrix, gap_open, gap_extend, xdrop, band
    )
    left = half(
        q_codes[:q_seed][::-1], s_codes[:s_seed][::-1], matrix, gap_open, gap_extend, xdrop, band
    )
    return _combine_halves(left, right, q_seed, s_seed)


def _combine_halves(
    left: HalfExtension, right: HalfExtension, q_seed: int, s_seed: int
) -> GappedAlignment | None:
    """Join the two half extensions around the seed point."""
    score = left.score + right.score
    if score <= 0:
        return None
    q_start, q_end = q_seed - left.q_len, q_seed + right.q_len
    s_start, s_end = s_seed - left.s_len, s_seed + right.s_len
    if q_end <= q_start or s_end <= s_start:
        return None
    return GappedAlignment(
        score=score,
        q_start=q_start,
        q_end=q_end,
        s_start=s_start,
        s_end=s_end,
        identities=left.identities + right.identities,
        align_len=left.align_len + right.align_len,
        gaps=left.gaps + right.gaps,
        # left half ops run seed -> leftward; reverse to get left-to-right.
        ops=left.ops[::-1] + right.ops,
    )


# ---------------------------------------------------------------------------
# Reference implementation (pre-banded): dense float32 matrices with the
# tolerance-based traceback.  Kept as the parity oracle for property tests
# and the baseline for benchmarks/bench_extension.py.
# ---------------------------------------------------------------------------


def reference_half_extension(
    q: np.ndarray,
    s: np.ndarray,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> HalfExtension:
    """Original dense-matrix half extension (parity oracle).

    Returns the zero extension when nothing scores positive.
    """
    n, m_full = int(q.size), int(s.size)
    if n == 0 or m_full == 0:
        return _ZERO_HALF
    m = min(m_full, n + band)
    s = s[:m]

    open_cost = gap_open + gap_extend

    M = np.full((n + 1, m + 1), _NEG, dtype=np.float32)
    Ix = np.full((n + 1, m + 1), _NEG, dtype=np.float32)  # gap in subject (down moves)
    Iy = np.full((n + 1, m + 1), _NEG, dtype=np.float32)  # gap in query (right moves)
    M[0, 0] = 0.0
    j0 = np.arange(1, min(band, m) + 1)
    Iy[0, j0] = -open_cost - gap_extend * (j0 - 1)

    cols = np.arange(m + 1)
    best_seen = 0.0
    last_live_row = 0
    q_idx = q.astype(np.intp)
    s_idx = s.astype(np.intp)

    for i in range(1, n + 1):
        in_band = np.abs(cols - i) <= band
        prev_best = np.maximum(np.maximum(M[i - 1], Ix[i - 1]), Iy[i - 1])

        m_row = np.full(m + 1, _NEG, dtype=np.float32)
        pair = matrix[q_idx[i - 1], s_idx].astype(np.float32)
        m_row[1:] = prev_best[:-1] + pair

        ix_row = np.maximum(prev_best - open_cost, Ix[i - 1] - gap_extend)

        # Band-prune M and Ix first so the within-row gap scan can only
        # chain from cells that will actually be kept (traceback relies on
        # every stored value being explained by stored predecessors).
        m_row[~in_band] = _NEG
        ix_row[~in_band] = _NEG

        # Iy[i,j] = max_{k<j} base[k] - open_cost - ext*(j-1-k), solved with
        # a prefix-max scan over t[k] = base[k] + ext*k.
        base = np.maximum(m_row, ix_row)
        t = base + gap_extend * cols
        run = np.maximum.accumulate(t)
        iy_row = np.full(m + 1, _NEG, dtype=np.float32)
        iy_row[1:] = run[:-1] - open_cost - gap_extend * (cols[1:] - 1)
        iy_row[~in_band] = _NEG
        row_best = np.maximum(np.maximum(m_row, ix_row), iy_row)
        dead = row_best < (best_seen - xdrop)
        m_row[dead] = _NEG
        ix_row[dead] = _NEG
        iy_row[dead] = _NEG

        M[i] = m_row
        Ix[i] = ix_row
        Iy[i] = iy_row

        row_max = float(row_best[in_band].max()) if in_band.any() else float(_NEG)
        if row_max <= float(_NEG) / 2:
            last_live_row = i - 1
            break
        best_seen = max(best_seen, row_max)
        last_live_row = i

    rows = last_live_row + 1
    best_grid = np.maximum(np.maximum(M[:rows], Ix[:rows]), Iy[:rows])
    flat = int(np.argmax(best_grid))
    bi, bj = divmod(flat, m + 1)
    best_score = float(best_grid[bi, bj])
    if best_score <= 0:
        return _ZERO_HALF

    return _traceback_dense(
        q, s, M, Ix, Iy, bi, bj, int(round(best_score)), gap_extend, open_cost
    )


def _traceback_dense(
    q: np.ndarray,
    s: np.ndarray,
    M: np.ndarray,
    Ix: np.ndarray,
    Iy: np.ndarray,
    bi: int,
    bj: int,
    best_score: int,
    gap_extend: int,
    open_cost: int,
) -> HalfExtension:
    """Walk back from the best cell counting identities/gaps exactly."""

    def close(a: float, b: float) -> bool:
        return abs(a - b) < 0.25  # all scores are integers in float32

    i, j = bi, bj
    vals = (M[i, j], Ix[i, j], Iy[i, j])
    state = int(np.argmax(vals))
    identities = 0
    align_len = 0
    gaps = 0
    ops: list[str] = []  # collected end -> seed; reversed below
    max_steps = 2 * (bi + bj) + 4  # every step decrements i or j; guard anyway
    steps = 0
    while i > 0 or j > 0:
        steps += 1
        if steps > max_steps:  # pragma: no cover - defensive
            raise RuntimeError("gapped traceback failed to terminate")
        if state == 0:  # M: aligned pair
            align_len += 1
            ops.append("M")
            if q[i - 1] == s[j - 1]:
                identities += 1
            i -= 1
            j -= 1
            if i == 0 and j == 0:
                break
            prev = (M[i, j], Ix[i, j], Iy[i, j])
            state = int(np.argmax(prev))
        elif state == 1:  # Ix: gap in subject, consume query
            align_len += 1
            gaps += 1
            ops.append("I")
            cur = Ix[i, j]
            i -= 1
            if close(cur, Ix[i, j] - gap_extend):
                state = 1
            else:
                state = int(np.argmax((M[i, j], _NEG, Iy[i, j])))
        else:  # Iy: gap in query, consume subject
            align_len += 1
            gaps += 1
            ops.append("D")
            cur = Iy[i, j]
            j -= 1
            if close(cur, Iy[i, j] - gap_extend):
                state = 2
            else:
                state = int(np.argmax((M[i, j], Ix[i, j], _NEG)))
    return HalfExtension(
        score=best_score,
        q_len=bi,
        s_len=bj,
        identities=identities,
        align_len=align_len,
        gaps=gaps,
        ops="".join(reversed(ops)),  # seed -> extension end order
    )


def reference_extend_gapped(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_seed: int,
    s_seed: int,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> GappedAlignment | None:
    """Original dense-kernel gapped extension (parity oracle)."""
    return _extend_gapped_with(
        reference_half_extension, q_codes, s_codes, q_seed, s_seed, matrix,
        gap_open, gap_extend, xdrop, band,
    )
