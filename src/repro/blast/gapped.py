"""Stage 3 of BLAST: banded affine-gap X-drop extension with traceback.

From a seed point inside a promising ungapped HSP, the alignment is extended
independently to the left and to the right with a gapped dynamic program
(paper §II.B: "the third stage performs gapped alignment").  Each half is a
*global-start* alignment — every path begins at the seed — pruned two ways:

- **band**: the alignment may drift at most ``band`` cells off the seed
  diagonal (a bounded version of NCBI's dynamically grown X-drop frontier);
- **X-drop**: cells scoring more than ``xdrop`` below the best cell seen so
  far are dropped; a row with no live cells terminates the extension.

Gap cost model: a gap of length g costs ``gap_open + g*gap_extend``.

Rows are computed with numpy vector operations; the within-row gap
recurrence uses a prefix-max scan, so the Python-level loop is over rows
only.  Full state matrices are retained for an exact traceback that yields
identities, alignment length and gap count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GappedAlignment", "HalfExtension", "extend_gapped", "half_extension"]

_NEG = np.float32(-1e30)


@dataclass(frozen=True)
class HalfExtension:
    """One direction of a gapped extension, measured from the seed."""

    score: int
    q_len: int  # query residues consumed
    s_len: int  # subject residues consumed
    identities: int
    align_len: int
    gaps: int
    #: alignment operations walking *away* from the seed: 'M' aligned pair,
    #: 'I' gap in subject (query residue alone), 'D' gap in query
    ops: str = ""


@dataclass(frozen=True)
class GappedAlignment:
    """A complete gapped extension around a seed point."""

    score: int
    q_start: int
    q_end: int
    s_start: int
    s_end: int
    identities: int
    align_len: int
    gaps: int
    #: left-to-right operation string over the whole alignment ('M'/'I'/'D')
    ops: str = ""


def half_extension(
    q: np.ndarray,
    s: np.ndarray,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> HalfExtension:
    """Best global-start alignment of prefixes of ``q`` and ``s``.

    Returns the zero extension when nothing scores positive.
    """
    n, m_full = int(q.size), int(s.size)
    if n == 0 or m_full == 0:
        return HalfExtension(0, 0, 0, 0, 0, 0)
    # The path cannot drift more than ``band`` off the diagonal, so at most
    # n + band subject residues are reachable.
    m = min(m_full, n + band)
    s = s[:m]

    open_cost = gap_open + gap_extend

    M = np.full((n + 1, m + 1), _NEG, dtype=np.float32)
    Ix = np.full((n + 1, m + 1), _NEG, dtype=np.float32)  # gap in subject (down moves)
    Iy = np.full((n + 1, m + 1), _NEG, dtype=np.float32)  # gap in query (right moves)
    M[0, 0] = 0.0
    j0 = np.arange(1, min(band, m) + 1)
    Iy[0, j0] = -open_cost - gap_extend * (j0 - 1)

    cols = np.arange(m + 1)
    best_seen = 0.0
    last_live_row = 0
    q_idx = q.astype(np.intp)
    s_idx = s.astype(np.intp)

    for i in range(1, n + 1):
        in_band = np.abs(cols - i) <= band
        prev_best = np.maximum(np.maximum(M[i - 1], Ix[i - 1]), Iy[i - 1])

        m_row = np.full(m + 1, _NEG, dtype=np.float32)
        pair = matrix[q_idx[i - 1], s_idx].astype(np.float32)
        m_row[1:] = prev_best[:-1] + pair

        ix_row = np.maximum(prev_best - open_cost, Ix[i - 1] - gap_extend)

        # Band-prune M and Ix first so the within-row gap scan can only
        # chain from cells that will actually be kept (traceback relies on
        # every stored value being explained by stored predecessors).
        m_row[~in_band] = _NEG
        ix_row[~in_band] = _NEG

        # Iy[i,j] = max_{k<j} base[k] - open_cost - ext*(j-1-k), solved with
        # a prefix-max scan over t[k] = base[k] + ext*k.
        base = np.maximum(m_row, ix_row)
        t = base + gap_extend * cols
        run = np.maximum.accumulate(t)
        iy_row = np.full(m + 1, _NEG, dtype=np.float32)
        iy_row[1:] = run[:-1] - open_cost - gap_extend * (cols[1:] - 1)
        iy_row[~in_band] = _NEG
        row_best = np.maximum(np.maximum(m_row, ix_row), iy_row)
        dead = row_best < (best_seen - xdrop)
        m_row[dead] = _NEG
        ix_row[dead] = _NEG
        iy_row[dead] = _NEG

        M[i] = m_row
        Ix[i] = ix_row
        Iy[i] = iy_row

        row_max = float(row_best[in_band].max()) if in_band.any() else float(_NEG)
        if row_max <= float(_NEG) / 2:
            last_live_row = i - 1
            break
        best_seen = max(best_seen, row_max)
        last_live_row = i

    rows = last_live_row + 1
    best_grid = np.maximum(np.maximum(M[:rows], Ix[:rows]), Iy[:rows])
    flat = int(np.argmax(best_grid))
    bi, bj = divmod(flat, m + 1)
    best_score = float(best_grid[bi, bj])
    if best_score <= 0:
        return HalfExtension(0, 0, 0, 0, 0, 0)

    return _traceback(q, s, M, Ix, Iy, bi, bj, int(round(best_score)), gap_extend, open_cost)


def _traceback(
    q: np.ndarray,
    s: np.ndarray,
    M: np.ndarray,
    Ix: np.ndarray,
    Iy: np.ndarray,
    bi: int,
    bj: int,
    best_score: int,
    gap_extend: int,
    open_cost: int,
) -> HalfExtension:
    """Walk back from the best cell counting identities/gaps exactly."""

    def close(a: float, b: float) -> bool:
        return abs(a - b) < 0.25  # all scores are integers in float32

    i, j = bi, bj
    vals = (M[i, j], Ix[i, j], Iy[i, j])
    state = int(np.argmax(vals))
    identities = 0
    align_len = 0
    gaps = 0
    ops: list[str] = []  # collected end -> seed; reversed below
    max_steps = 2 * (bi + bj) + 4  # every step decrements i or j; guard anyway
    steps = 0
    while i > 0 or j > 0:
        steps += 1
        if steps > max_steps:  # pragma: no cover - defensive
            raise RuntimeError("gapped traceback failed to terminate")
        if state == 0:  # M: aligned pair
            align_len += 1
            ops.append("M")
            if q[i - 1] == s[j - 1]:
                identities += 1
            i -= 1
            j -= 1
            if i == 0 and j == 0:
                break
            prev = (M[i, j], Ix[i, j], Iy[i, j])
            state = int(np.argmax(prev))
        elif state == 1:  # Ix: gap in subject, consume query
            align_len += 1
            gaps += 1
            ops.append("I")
            cur = Ix[i, j]
            i -= 1
            if close(cur, Ix[i, j] - gap_extend):
                state = 1
            else:
                state = int(np.argmax((M[i, j], _NEG, Iy[i, j])))
        else:  # Iy: gap in query, consume subject
            align_len += 1
            gaps += 1
            ops.append("D")
            cur = Iy[i, j]
            j -= 1
            if close(cur, Iy[i, j] - gap_extend):
                state = 2
            else:
                state = int(np.argmax((M[i, j], Ix[i, j], _NEG)))
    return HalfExtension(
        score=best_score,
        q_len=bi,
        s_len=bj,
        identities=identities,
        align_len=align_len,
        gaps=gaps,
        ops="".join(reversed(ops)),  # seed -> extension end order
    )


def extend_gapped(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_seed: int,
    s_seed: int,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    xdrop: float,
    band: int,
) -> GappedAlignment | None:
    """Gapped extension around ``(q_seed, s_seed)``.

    The left half aligns the reversed prefixes ending just before the seed;
    the right half aligns the suffixes starting at the seed.  Returns
    ``None`` when no positive-scoring alignment exists.
    """
    if not (0 <= q_seed <= q_codes.size) or not (0 <= s_seed <= s_codes.size):
        raise ValueError("seed point out of range")
    right = half_extension(
        q_codes[q_seed:], s_codes[s_seed:], matrix, gap_open, gap_extend, xdrop, band
    )
    left = half_extension(
        q_codes[:q_seed][::-1], s_codes[:s_seed][::-1], matrix, gap_open, gap_extend, xdrop, band
    )
    score = left.score + right.score
    if score <= 0:
        return None
    q_start, q_end = q_seed - left.q_len, q_seed + right.q_len
    s_start, s_end = s_seed - left.s_len, s_seed + right.s_len
    if q_end <= q_start or s_end <= s_start:
        return None
    return GappedAlignment(
        score=score,
        q_start=q_start,
        q_end=q_end,
        s_start=s_start,
        s_end=s_end,
        identities=left.identities + right.identities,
        align_len=left.align_len + right.align_len,
        gaps=left.gaps + right.gaps,
        # left half ops run seed -> leftward; reverse to get left-to-right.
        ops=left.ops[::-1] + right.ops,
    )
