"""BLAST search options.

Mirrors the knobs the paper's use cases exercise: E-value cutoff (their
protein run used 1e-4), maximum hits per query (the top-K cutoff applied in
mrblast's reduce step), low-complexity filtering ("usually requested"), and
the effective-DB-length override ("the DB length is overridden in the BLAST
call to be the entire length of the DB instead of the length of the current
partition").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BlastOptions"]


@dataclass(frozen=True)
class BlastOptions:
    """Options for one BLAST search.

    Defaults follow classic NCBI blastn/blastp settings.
    """

    program: str = "blastn"  # "blastn" or "blastp"

    # Seeding
    word_size: int = 11  # 11 for blastn, 3 for blastp
    neighbor_threshold: int = 11  # protein neighbourhood word score T
    two_hit_window: int = 40  # protein two-hit trigger window (0 = one-hit)

    # Scoring
    reward: int = 1
    penalty: int = -2
    gap_open: int = 5
    gap_extend: int = 2

    # Extension control
    xdrop_ungapped: float = 20.0
    xdrop_gapped: float = 30.0
    ungapped_cutoff_bits: float = 12.0  # HSPs below this never reach gapped stage
    band_width: int = 48  # gapped extension band half-width
    #: batched stage-2 window: steps gathered each side of a word hit in the
    #: first pass; hits whose X-drop extent outruns it are re-batched with
    #: geometrically wider windows until every extension terminates
    extension_window: int = 64
    #: fused streaming scheduler (default): seed→ungapped→gapped advances as
    #: one round-based pass over the whole (block × partition) work unit —
    #: every round extends the pending triggers of *all* open subjects and
    #: contexts with one span-batched kernel call, and seeds admitted in a
    #: round enter that round's gapped batch immediately.  ``False`` runs
    #: the per-subject staged scheduler (the bit-identical parity oracle).
    fused: bool = True
    #: scan-slab bound of the fused scheduler: more subjects are streamed
    #: into the open pool only while the word-hit rows held across open
    #: subjects stay below this, so stage-1 intermediates are a bounded
    #: slab instead of a whole-partition materialisation.
    fused_slab_rows: int = 65536

    # Reporting
    evalue: float = 10.0
    max_hits: int = 500  # hitlist size (top-K per query)

    # Masking
    dust: bool = True  # nucleotide low-complexity filter
    seg: bool = False  # protein low-complexity filter (NCBI default: off)

    # DB-split support: effective database size override
    db_length_override: int | None = None  # total DB residues (all partitions)
    db_num_seqs_override: int | None = None  # total DB sequence count

    def __post_init__(self) -> None:
        if self.program not in ("blastn", "blastp", "blastx"):
            raise ValueError(f"unknown program {self.program!r}")
        if self.word_size < 2:
            raise ValueError(f"word_size must be >= 2, got {self.word_size}")
        if self.program in ("blastp", "blastx") and self.word_size > 5:
            raise ValueError(
                f"protein-scored word_size must be small (2-5), got {self.word_size}"
            )
        if self.reward <= 0 or self.penalty >= 0:
            raise ValueError("reward must be > 0 and penalty < 0")
        if self.gap_open < 0 or self.gap_extend <= 0:
            raise ValueError("gap_open must be >= 0 and gap_extend > 0")
        if self.evalue <= 0:
            raise ValueError(f"evalue cutoff must be positive, got {self.evalue}")
        if self.max_hits < 1:
            raise ValueError(f"max_hits must be >= 1, got {self.max_hits}")
        if self.band_width < 1:
            raise ValueError(f"band_width must be >= 1, got {self.band_width}")
        if self.extension_window < 1:
            raise ValueError(
                f"extension_window must be >= 1, got {self.extension_window}"
            )
        if self.fused_slab_rows < 1:
            raise ValueError(
                f"fused_slab_rows must be >= 1, got {self.fused_slab_rows}"
            )

    @staticmethod
    def blastn(**overrides) -> "BlastOptions":
        """Classic nucleotide defaults (word 11, +1/-2, dust on)."""
        return BlastOptions(program="blastn", **overrides)

    @staticmethod
    def blastp(**overrides) -> "BlastOptions":
        """Classic protein defaults (word 3, BLOSUM62, two-hit, T=11)."""
        base = dict(
            program="blastp",
            word_size=3,
            gap_open=11,
            gap_extend=1,
            xdrop_ungapped=16.0,
            xdrop_gapped=38.0,
            dust=False,
        )
        base.update(overrides)
        return BlastOptions(**base)

    @staticmethod
    def blastx(**overrides) -> "BlastOptions":
        """Translated search: protein scoring over 6-frame DNA queries."""
        overrides.setdefault("program", "blastx")
        return BlastOptions.blastp(**overrides)

    def with_db_size(self, total_length: int, num_seqs: int) -> "BlastOptions":
        """Copy with the effective-DB-size override set (DB-split mode)."""
        if total_length <= 0 or num_seqs <= 0:
            raise ValueError("db size override values must be positive")
        return replace(self, db_length_override=total_length, db_num_seqs_override=num_seqs)
