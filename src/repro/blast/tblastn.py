"""tblastn: protein query against a translated nucleotide database.

The complement of :mod:`repro.blast.blastx` — the database side is
translated in all six frames.  Used when characterised proteins must be
located in uncharacterised nucleotide data (e.g. finding genes in
metagenomic contigs), the other direction of the paper's annotation story.

Each DNA subject expands into up to six translated virtual subjects
(``id|frame±k``); the inner blastp engine searches them — each translated
frame runs through the same batched ungapped kernel and band-compressed
gapped DP as a native protein subject, with its codes hoisted to index
dtype once per virtual subject; hits map back to *nucleotide* subject
coordinates (frame ±k at nt length L):

- frame +k:  nt = (k-1) + 3*aa
- frame -k:  nt = L - (k-1) - 3*aa   (minus strand)

E-values use the whole database's *amino-acid* search space (total
nucleotide length / 3), the standard tblastn convention.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Sequence

import numpy as np

from repro.bio.alphabet import PROTEIN
from repro.bio.seq import SeqRecord, reverse_complement, translate
from repro.blast.dbreader import DbPartition
from repro.blast.engine import BlastpEngine
from repro.blast.hsp import HSP, top_hits
from repro.blast.options import BlastOptions

__all__ = ["TblastnEngine", "TranslatedPartition"]

_FRAME_SEP = "|frame"


class TranslatedPartition:
    """Adapter presenting a DNA partition as six-frame protein subjects.

    Satisfies the iteration/stats surface the blastp engine's scan loop
    uses; translation happens lazily per subject and is not cached (each
    subject is visited once per search, like the packed volumes).
    """

    def __init__(self, partition: DbPartition, min_aa: int = 10) -> None:
        if partition.kind != "dna":
            raise ValueError("TranslatedPartition wraps nucleotide partitions")
        self._partition = partition
        self.min_aa = min_aa
        #: nt lengths by original subject id (for coordinate mapping)
        self.nt_lengths = dict(zip(partition.ids, partition.lengths))

    @property
    def name(self) -> str:
        return self._partition.name + "|translated"

    @property
    def num_seqs(self) -> int:
        return self._partition.num_seqs  # original subject count (stats)

    @property
    def total_length(self) -> int:
        return max(self._partition.total_length // 3, 1)  # aa search space

    def _frames(self, sid: str, codes: np.ndarray) -> Iterator[tuple[str, np.ndarray]]:
        from repro.bio.alphabet import DNA

        seq = DNA.decode(codes)
        rc = reverse_complement(seq)
        for k in (1, 2, 3):
            for strand_seq, signed in ((seq, k), (rc, -k)):
                # Translate through stops ("*", scored -4): truncating at the
                # first stop would hide genes behind untranslated flanks.
                protein = translate(strand_seq, frame=k - 1, stop=False)
                if len(protein) >= self.min_aa:
                    yield f"{sid}{_FRAME_SEP}{signed:+d}", PROTEIN.encode(protein)

    def __iter__(self) -> Iterator[tuple[str, np.ndarray]]:
        for sid, codes in self._partition:
            yield from self._frames(sid, codes)


class TblastnEngine:
    """Translated-database search built on the blastp engine."""

    program = "tblastn"

    def __init__(self, options: BlastOptions, min_frame_aa: int = 10) -> None:
        if options.program not in ("blastp", "tblastn", "blastx"):
            raise ValueError(
                "TblastnEngine takes blastp-style options (protein scoring); "
                f"got program {options.program!r}"
            )
        self.options = options
        self.min_frame_aa = min_frame_aa
        inner = replace(options, program="blastp")
        if inner.db_length_override is not None:
            # DB-split overrides arrive in nucleotides; the translated
            # search space is measured in amino acids.
            inner = replace(
                inner, db_length_override=max(inner.db_length_override // 3, 1)
            )
        self._inner = BlastpEngine(inner)

    @property
    def last_stats(self):
        return self._inner.last_stats

    @property
    def lookup_cache(self):
        return self._inner.lookup_cache

    def set_lookup_cache(self, cache) -> None:
        """Forward the cross-partition lookup cache to the inner engine."""
        self._inner.set_lookup_cache(cache)

    def search_block(
        self, queries: Sequence[SeqRecord], partition: DbPartition
    ) -> list[HSP]:
        """Search protein queries against one nucleotide partition."""
        translated = TranslatedPartition(partition, min_aa=self.min_frame_aa)
        aa_hits = self._inner.search_block(queries, translated)

        by_query: dict[str, list[HSP]] = {}
        for h in aa_hits:
            sid, frame_txt = h.subject_id.rsplit(_FRAME_SEP, 1)
            signed = int(frame_txt)
            frame = abs(signed)
            nt_len = translated.nt_lengths[sid]
            if signed > 0:
                s_start = (frame - 1) + 3 * h.s_start
                s_end = (frame - 1) + 3 * h.s_end
                strand = 1
            else:
                s_start = nt_len - (frame - 1) - 3 * h.s_end
                s_end = nt_len - (frame - 1) - 3 * h.s_start
                strand = -1
            by_query.setdefault(h.query_id, []).append(
                HSP(
                    query_id=h.query_id,
                    subject_id=sid,
                    score=h.score,
                    bit_score=h.bit_score,
                    evalue=h.evalue,
                    q_start=h.q_start,
                    q_end=h.q_end,
                    s_start=s_start,
                    s_end=s_end,
                    identities=h.identities,
                    align_len=h.align_len,
                    gaps=h.gaps,
                    strand=strand,
                    frame=signed,
                )
            )

        out: list[HSP] = []
        for rec in queries:
            hits = by_query.get(rec.id)
            if hits:
                out.extend(top_hits(hits, self.options.max_hits, self.options.evalue))
        return out
