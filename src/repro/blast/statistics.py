"""E-values, bit scores and effective search-space computation.

Implements NCBI's machinery:

- bit score  S' = (λ·S − ln K) / ln 2
- E-value    E = m'·n'·2^(−S')   over the *effective* search space
- length adjustment: the expected alignment length ℓ = ln(K·m'·n')/H removed
  from both query and database lengths (BLAST_ComputeLengthAdjustment's
  fixed-point iteration).

The DB-split override: when a partition of a larger database is searched,
``db_length_override``/``db_num_seqs_override`` supply the *full* database
size so E-values come out identical to an unsplit search — the invariant
mrblast's collate/reduce merging rests on (paper §III.A).
"""

from __future__ import annotations

import math

from repro.blast.karlin import KarlinParams

__all__ = [
    "bit_score",
    "evalue",
    "evalue_to_score",
    "effective_lengths",
    "pvalue",
    "SearchSpace",
]


def bit_score(raw_score: int | float, params: KarlinParams) -> float:
    """Normalised (bit) score of a raw alignment score."""
    return (params.lam * raw_score - params.log_k) / math.log(2.0)


def length_adjustment(
    params: KarlinParams, query_len: int, db_len: int, db_num_seqs: int
) -> float:
    """Expected-HSP-length correction ℓ solving ℓ = ln(K·(m−ℓ)·(n−N·ℓ))/H.

    Solved by bisection on g(ℓ) = ln(K·(m−ℓ)·(n−N·ℓ))/H − ℓ, which is
    strictly decreasing on the feasible interval, so the root is unique
    (naive fixed-point iteration — NCBI's first published algorithm —
    oscillates for tiny search spaces).  ℓ is clamped so both effective
    lengths stay positive and at most half the query is removed.
    """
    if query_len <= 0 or db_len <= 0 or db_num_seqs <= 0:
        raise ValueError("lengths and sequence count must be positive")
    K = max(params.K, 1e-300)
    hi = min(query_len / 2.0, (db_len - 1.0) / db_num_seqs)
    if hi <= 0:
        return 0.0

    def g(ell: float) -> float:
        m_eff = max(query_len - ell, 1.0)
        n_eff = max(db_len - db_num_seqs * ell, 1.0)
        return math.log(K * m_eff * n_eff) / params.H - ell

    if g(0.0) <= 0:
        return 0.0
    if g(hi) >= 0:
        return hi
    lo = 0.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if g(mid) > 0:
            lo = mid
        else:
            hi = mid
    return lo


def effective_lengths(
    params: KarlinParams,
    query_len: int,
    db_len: int,
    db_num_seqs: int,
) -> tuple[float, float]:
    """(effective query length, effective DB length) after adjustment.

    Kept as floats: rounding the adjustment to whole residues (as early
    NCBI code did) makes E-values non-monotone in the database length at
    regime boundaries, which both the property suite and the DB-split
    invariant care about.
    """
    ell = length_adjustment(params, query_len, db_len, db_num_seqs)
    m_eff = max(query_len - ell, 1.0)
    n_eff = max(db_len - db_num_seqs * ell, 1.0)
    return m_eff, n_eff


def evalue(
    raw_score: int | float,
    params: KarlinParams,
    query_len: int,
    db_len: int,
    db_num_seqs: int,
) -> float:
    """Expected chance alignments with score ≥ raw_score in this search."""
    m_eff, n_eff = effective_lengths(params, query_len, db_len, db_num_seqs)
    # E = K m n e^{-lambda S}; compute in log space to avoid under/overflow.
    log_e = math.log(params.K) + math.log(m_eff) + math.log(n_eff) - params.lam * raw_score
    if log_e > 700.0:
        return math.inf
    return math.exp(log_e)


def evalue_to_score(
    target_evalue: float,
    params: KarlinParams,
    query_len: int,
    db_len: int,
    db_num_seqs: int,
) -> int:
    """Smallest raw score whose E-value is ≤ ``target_evalue`` (cutoff score)."""
    if target_evalue <= 0:
        raise ValueError(f"target E-value must be positive, got {target_evalue}")
    m_eff, n_eff = effective_lengths(params, query_len, db_len, db_num_seqs)
    s = (math.log(params.K) + math.log(m_eff) + math.log(n_eff) - math.log(target_evalue)) / (
        params.lam
    )
    return max(int(math.ceil(s)), 1)


class SearchSpace:
    """Engine-lifetime E-value calculator with cached length adjustments.

    λ/K/H are fixed when the engine is built, and the
    :func:`length_adjustment` bisection — the dominant per-HSP statistics
    cost — runs once per distinct ``(query_len, db_len, db_num_seqs)``
    triple instead of once per HSP per block.  Every method reproduces the
    corresponding module function bit for bit (same float operations in
    the same order), so cached and uncached searches report identical
    E-values.
    """

    def __init__(self, params: KarlinParams) -> None:
        self.params = params
        self._lengths: dict[tuple[int, int, int], tuple[float, float]] = {}

    def effective_lengths(
        self, query_len: int, db_len: int, db_num_seqs: int
    ) -> tuple[float, float]:
        key = (query_len, db_len, db_num_seqs)
        ent = self._lengths.get(key)
        if ent is None:
            ent = effective_lengths(self.params, query_len, db_len, db_num_seqs)
            self._lengths[key] = ent
        return ent

    def bit_score(self, raw_score: int | float) -> float:
        return bit_score(raw_score, self.params)

    def evalue(
        self, raw_score: int | float, query_len: int, db_len: int, db_num_seqs: int
    ) -> float:
        m_eff, n_eff = self.effective_lengths(query_len, db_len, db_num_seqs)
        log_e = (
            math.log(self.params.K)
            + math.log(m_eff)
            + math.log(n_eff)
            - self.params.lam * raw_score
        )
        if log_e > 700.0:
            return math.inf
        return math.exp(log_e)

    def evalue_to_score(
        self, target_evalue: float, query_len: int, db_len: int, db_num_seqs: int
    ) -> int:
        if target_evalue <= 0:
            raise ValueError(f"target E-value must be positive, got {target_evalue}")
        m_eff, n_eff = self.effective_lengths(query_len, db_len, db_num_seqs)
        s = (
            math.log(self.params.K)
            + math.log(m_eff)
            + math.log(n_eff)
            - math.log(target_evalue)
        ) / self.params.lam
        return max(int(math.ceil(s)), 1)


def pvalue(e: float) -> float:
    """P-value of observing at least one such alignment: 1 − e^{−E}."""
    if e < 0:
        raise ValueError(f"E-value must be non-negative, got {e}")
    if e > 30:
        return 1.0
    return -math.expm1(-e)
