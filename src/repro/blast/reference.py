"""Brute-force affine-gap Smith-Waterman: the oracle for extension tests.

No heuristics, no bands, no X-drop.  Used by the test suite and examples to
validate that the heuristic engine's best HSP score matches the true optimal
local alignment score; never run on big inputs.

Gap model matches the engine: a gap of length g costs
``gap_open + g*gap_extend``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["smith_waterman_score", "smith_waterman"]

_NEG = np.float64(-1e18)


def _sw_best_cell(
    q: np.ndarray, s: np.ndarray, matrix: np.ndarray, gap_open: int, gap_extend: int
) -> tuple[float, int, int]:
    """(best score, end_i, end_j) of the optimal local alignment.

    Row-vectorised three-state DP; the within-row gap state is solved with a
    prefix-max scan (same trick as the production code, but unbounded).
    """
    n, m = int(q.size), int(s.size)
    if n == 0 or m == 0:
        return 0.0, 0, 0
    open_cost = gap_open + gap_extend
    cols = np.arange(m + 1, dtype=np.float64)
    H_prev = np.zeros(m + 1)
    Ix_prev = np.full(m + 1, _NEG)
    best, bi, bj = 0.0, 0, 0
    s_idx = s.astype(np.intp)
    for i in range(1, n + 1):
        m_row = np.full(m + 1, _NEG)
        m_row[1:] = H_prev[:-1] + matrix[q[i - 1], s_idx]
        ix_row = np.maximum(H_prev - open_cost, Ix_prev - gap_extend)
        base = np.maximum(m_row, ix_row)
        run = np.maximum.accumulate(base + gap_extend * cols)
        iy_row = np.full(m + 1, _NEG)
        iy_row[1:] = run[:-1] - open_cost - gap_extend * (cols[1:] - 1)
        h_row = np.maximum(np.maximum(m_row, ix_row), np.maximum(iy_row, 0.0))
        row_max = float(h_row.max())
        if row_max > best:
            best = row_max
            bi, bj = i, int(np.argmax(h_row))
        H_prev, Ix_prev = h_row, ix_row
    return best, bi, bj


def smith_waterman_score(
    q: np.ndarray, s: np.ndarray, matrix: np.ndarray, gap_open: int, gap_extend: int
) -> int:
    """Optimal local alignment score."""
    best, _, _ = _sw_best_cell(q, s, matrix, gap_open, gap_extend)
    return int(round(best))


def smith_waterman(
    q: np.ndarray, s: np.ndarray, matrix: np.ndarray, gap_open: int, gap_extend: int
) -> tuple[int, tuple[int, int, int, int]]:
    """Optimal local score and its (q_start, q_end, s_start, s_end) range.

    The end cell comes from the forward pass; the start cell from an
    identical pass over the reversed prefixes (the classic two-pass trick).
    Returns score 0 with an empty range when nothing scores positive.
    """
    best, bi, bj = _sw_best_cell(q, s, matrix, gap_open, gap_extend)
    if best <= 0:
        return 0, (0, 0, 0, 0)
    rbest, ri, rj = _sw_best_cell(
        q[:bi][::-1], s[:bj][::-1], matrix, gap_open, gap_extend
    )
    if int(round(rbest)) != int(round(best)):  # pragma: no cover - sanity
        raise AssertionError("forward/backward Smith-Waterman disagree")
    return int(round(best)), (bi - ri, bi, bj - rj, bj)
