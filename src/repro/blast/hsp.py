"""High-Scoring Pairs: the unit of BLAST output.

An HSP records one local alignment between a query and a database sequence.
mrblast emits HSPs as MapReduce values keyed by query id (Fig. 1), so HSPs
must be cheap to pickle and carry everything the reduce step and the tabular
formatter need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

__all__ = ["HSP", "cull_overlapping", "top_hits"]


@dataclass(frozen=True, order=False)
class HSP:
    """One local alignment.

    Coordinates are 0-based half-open on the *plus* strand of each sequence;
    ``strand`` is +1 or -1 for the subject orientation relative to the query
    (nucleotide searches scan both strands).
    """

    query_id: str
    subject_id: str
    score: int
    bit_score: float
    evalue: float
    q_start: int
    q_end: int
    s_start: int
    s_end: int
    identities: int
    align_len: int
    gaps: int = 0
    strand: int = 1
    #: 0 for untranslated searches; ±1..±3 when one side was translated
    #: (blastx translates the query, tblastn the subject): that side's
    #: coordinates are then nucleotide positions while alignment statistics
    #: count amino-acid columns.
    frame: int = 0

    def __post_init__(self) -> None:
        if self.q_end <= self.q_start:
            raise ValueError(f"empty query range [{self.q_start}, {self.q_end})")
        if self.s_end <= self.s_start:
            raise ValueError(f"empty subject range [{self.s_start}, {self.s_end})")
        if self.strand not in (1, -1):
            raise ValueError(f"strand must be +1 or -1, got {self.strand}")
        if self.frame not in (0, 1, 2, 3, -1, -2, -3):
            raise ValueError(f"frame must be 0 or ±1..±3, got {self.frame}")
        q_span = self.q_end - self.q_start
        s_span = self.s_end - self.s_start
        if self.frame == 0:
            needed = max(q_span, s_span)
        else:
            # One side (unknown to the record itself) is nucleotide-scaled:
            # accept whichever interpretation is consistent.
            as_blastx = max((q_span + 2) // 3, s_span)
            as_tblastn = max(q_span, (s_span + 2) // 3)
            needed = min(as_blastx, as_tblastn)
        if self.align_len < needed:
            raise ValueError("align_len cannot be shorter than either aligned span")
        if not (0 <= self.identities <= self.align_len):
            raise ValueError("identities must be within [0, align_len]")

    @property
    def pident(self) -> float:
        """Percent identity over the alignment length."""
        return 100.0 * self.identities / self.align_len

    @property
    def mismatches(self) -> int:
        return self.align_len - self.identities - self.gaps

    @property
    def q_span(self) -> int:
        return self.q_end - self.q_start

    @property
    def s_span(self) -> int:
        return self.s_end - self.s_start

    def sort_key(self) -> tuple:
        """Canonical result order: best E-value first, then highest score.

        Remaining fields break ties deterministically so that serial runs and
        any parallel decomposition produce identical output files.
        """
        return (self.evalue, -self.score, self.subject_id, self.q_start, self.s_start,
                self.strand)

    def with_stats(self, bit_score: float, evalue: float) -> "HSP":
        """Copy with recomputed statistics (used when re-scoring vs full DB)."""
        return replace(self, bit_score=bit_score, evalue=evalue)


def cull_overlapping(hsps: Sequence[HSP], max_overlap: float = 0.5) -> list[HSP]:
    """Drop HSPs mostly contained (on the query) in a better HSP.

    Mirrors BLAST's HSP culling between the same query/subject pair: after
    gapped extension, seeds from within one alignment re-extend to near
    copies; only the best exemplar survives.  ``max_overlap`` is the query-
    range overlap fraction (of the smaller span) above which the worse HSP
    is culled — only applied within the same (subject, strand).

    Culling ranks by :meth:`HSP.sort_key` rather than engine admission
    order, so the result is independent of the order in which the
    extension stage emitted the HSPs — the batched stage-2 kernel is free
    to precompute extents out of scan order as long as the admitted set is
    unchanged.
    """
    if not (0.0 <= max_overlap <= 1.0):
        raise ValueError(f"max_overlap must be in [0, 1], got {max_overlap}")
    ranked = sorted(hsps, key=HSP.sort_key)
    kept: list[HSP] = []
    for cand in ranked:
        redundant = False
        for winner in kept:
            if (
                winner.query_id != cand.query_id
                or winner.subject_id != cand.subject_id
                or winner.strand != cand.strand
            ):
                continue
            lo = max(winner.q_start, cand.q_start)
            hi = min(winner.q_end, cand.q_end)
            overlap = max(0, hi - lo)
            smaller = min(winner.q_span, cand.q_span)
            s_lo = max(winner.s_start, cand.s_start)
            s_hi = min(winner.s_end, cand.s_end)
            s_overlap = max(0, s_hi - s_lo)
            if overlap > max_overlap * smaller and s_overlap > 0:
                redundant = True
                break
        if not redundant:
            kept.append(cand)
    return kept


def top_hits(hsps: Iterable[HSP], max_hits: int, evalue_cutoff: float) -> list[HSP]:
    """The reduce-step selection: E-value filter, canonical sort, top-K.

    This is exactly what mrblast's reduce() does with the collated per-query
    multivalue (paper §III.A): "sorts each query hits by the E-value,
    selects the requested number of top hits".
    """
    if max_hits < 1:
        raise ValueError(f"max_hits must be >= 1, got {max_hits}")
    passing = [h for h in hsps if h.evalue <= evalue_cutoff]
    passing.sort(key=HSP.sort_key)
    return passing[:max_hits]
