"""Stage 1 of BLAST: word lookup tables over a query block.

NCBI BLAST "iteratively loads the next concatenated subset of query
sequences, builds a word lookup table out of them, and streams the database
past this lookup table" (paper §II.B).  This module is that machinery:

- a :class:`QueryBlock` concatenates the encoded queries (both strands for
  nucleotide searches) into *contexts* with offset bookkeeping;
- :class:`NucleotideLookup` indexes exact packed words (default size 11);
- :class:`ProteinLookup` indexes BLOSUM62 *neighbourhood* words of size 3
  scoring at least T against a query word, which is what lets blastp find
  remote homologies (and why protein search examines many more candidate
  matches — the CPU-bound behaviour the paper's Fig. 5 relies on).

Soft-masked query positions (DUST/SEG) produce no words, but extensions may
still run through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.seq import SeqRecord, reverse_complement
from repro.blast.dust import dust_mask
from repro.blast.matrices import BLOSUM62
from repro.blast.seg import seg_mask

__all__ = ["QueryContext", "QueryBlock", "NucleotideLookup", "ProteinLookup"]


@dataclass
class QueryContext:
    """One searchable strand of one query sequence."""

    query_index: int
    strand: int  # +1 or -1
    codes: np.ndarray  # encoded residues of this strand
    mask: np.ndarray  # True = soft-masked (no seeding)
    offset: int = 0  # start position in the concatenated coordinate space

    @property
    def length(self) -> int:
        return int(self.codes.size)


class QueryBlock:
    """Concatenated query contexts with global-position bookkeeping."""

    def __init__(self, records: Sequence[SeqRecord], program: str, use_mask: bool) -> None:
        if not records:
            raise ValueError("query block must contain at least one sequence")
        self.records = list(records)
        self.program = program
        self.contexts: list[QueryContext] = []
        offset = 0
        for qi, rec in enumerate(self.records):
            strands = [(1, rec.seq)]
            if program == "blastn":
                strands.append((-1, reverse_complement(rec.seq)))
            for strand, seq in strands:
                if program == "blastn":
                    codes = DNA.encode(seq)
                    mask = dust_mask(seq) if use_mask else np.zeros(len(seq), dtype=bool)
                else:
                    codes = PROTEIN.encode(seq)
                    mask = seg_mask(seq) if use_mask else np.zeros(len(seq), dtype=bool)
                self.contexts.append(QueryContext(qi, strand, codes, mask, offset))
                offset += codes.size
        self.total_length = offset
        self._starts = np.array([c.offset for c in self.contexts], dtype=np.int64)

    def context_of(self, concat_pos: int | np.ndarray):
        """Context index (or array of indices) for concatenated positions."""
        return np.searchsorted(self._starts, concat_pos, side="right") - 1


def _pack_words(codes: np.ndarray, word_size: int, alphabet_size: int) -> np.ndarray:
    """Packed integer of every window of ``word_size`` letters (vectorised)."""
    n = codes.size - word_size + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    weights = alphabet_size ** np.arange(word_size - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(codes.astype(np.int64), word_size)
    return windows @ weights


def _window_unmasked(mask: np.ndarray, word_size: int) -> np.ndarray:
    """True where a window of ``word_size`` contains no masked position."""
    n = mask.size - word_size + 1
    if n <= 0:
        return np.empty(0, dtype=bool)
    windows = np.lib.stride_tricks.sliding_window_view(mask, word_size)
    return ~windows.any(axis=1)


class _LookupBase:
    """Shared scan machinery: word table + vectorised subject scanning."""

    word_size: int
    alphabet_size: int

    def __init__(self, block: QueryBlock) -> None:
        self.block = block
        self._table: dict[int, np.ndarray] = {}
        self._build()
        # Sorted key array for fast membership pre-filtering during scans.
        self._keys = np.array(sorted(self._table), dtype=np.int64)

    # subclasses fill self._table: word -> concatenated query positions
    def _build(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def n_words(self) -> int:
        return len(self._table)

    def scan(self, subject_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All word hits against one subject.

        Returns ``(query_concat_positions, subject_positions)`` arrays of
        equal length.  Purely vectorised pre-filtering keeps the Python-level
        loop proportional to the number of *matching* windows only.
        """
        sub = subject_codes
        if self.alphabet_size == 20:
            # Protein subjects may contain ambiguity codes >= 20: windows
            # containing them cannot be looked up (give them an impossible
            # word id so they never match).
            valid = _window_unmasked(sub >= 20, self.word_size)
            words = _pack_words(np.minimum(sub, 19), self.word_size, self.alphabet_size)
            words = np.where(valid, words, -1)
        else:
            words = _pack_words(sub, self.word_size, self.alphabet_size)
        if words.size == 0 or self._keys.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        candidate = np.isin(words, self._keys)
        spos_list = np.nonzero(candidate)[0]
        q_out: list[np.ndarray] = []
        s_out: list[np.ndarray] = []
        for spos in spos_list:
            qpositions = self._table[int(words[spos])]
            q_out.append(qpositions)
            s_out.append(np.full(qpositions.size, spos, dtype=np.int64))
        if not q_out:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        return np.concatenate(q_out), np.concatenate(s_out)


class NucleotideLookup(_LookupBase):
    """Exact-word lookup (blastn stage-1)."""

    def __init__(self, block: QueryBlock, word_size: int = 11) -> None:
        if word_size < 4 or word_size > 31:
            raise ValueError(f"nucleotide word_size must be in [4, 31], got {word_size}")
        self.word_size = word_size
        self.alphabet_size = 4
        super().__init__(block)

    def _build(self) -> None:
        table: dict[int, list[int]] = {}
        for ctx in self.block.contexts:
            words = _pack_words(ctx.codes, self.word_size, 4)
            usable = _window_unmasked(ctx.mask, self.word_size)
            for local_pos in np.nonzero(usable)[0]:
                table.setdefault(int(words[local_pos]), []).append(ctx.offset + int(local_pos))
        self._table = {w: np.array(ps, dtype=np.int64) for w, ps in table.items()}


class ProteinLookup(_LookupBase):
    """Neighbourhood-word lookup (blastp stage-1).

    For each query word position, every word of the 20-letter alphabet whose
    BLOSUM62 score against the query word is at least ``threshold`` (T) is
    added to the table pointing back at that position.
    """

    def __init__(self, block: QueryBlock, word_size: int = 3, threshold: int = 11) -> None:
        if word_size != 3:
            raise ValueError(f"protein lookup supports word_size 3, got {word_size}")
        self.word_size = word_size
        self.alphabet_size = 20
        self.threshold = threshold
        super().__init__(block)

    def _build(self) -> None:
        B = BLOSUM62[:20, :20]
        table: dict[int, list[int]] = {}
        for ctx in self.block.contexts:
            codes = ctx.codes
            usable = _window_unmasked(ctx.mask | (codes >= 20), self.word_size)
            n = codes.size - self.word_size + 1
            for local_pos in range(max(n, 0)):
                if not usable[local_pos]:
                    continue
                a, b, c = codes[local_pos], codes[local_pos + 1], codes[local_pos + 2]
                scores = (
                    B[a][:, None, None] + B[b][None, :, None] + B[c][None, None, :]
                )
                hits = np.nonzero(scores >= self.threshold)
                words = hits[0] * 400 + hits[1] * 20 + hits[2]
                gpos = ctx.offset + local_pos
                for w in words:
                    table.setdefault(int(w), []).append(gpos)
        self._table = {w: np.array(ps, dtype=np.int64) for w, ps in table.items()}
