"""Stage 1 of BLAST: word lookup tables over a query block.

NCBI BLAST "iteratively loads the next concatenated subset of query
sequences, builds a word lookup table out of them, and streams the database
past this lookup table" (paper §II.B).  This module is that machinery:

- a :class:`QueryBlock` concatenates the encoded queries (both strands for
  nucleotide searches) into *contexts* with offset bookkeeping;
- :class:`NucleotideLookup` indexes exact packed words (default size 11);
- :class:`ProteinLookup` indexes BLOSUM62 *neighbourhood* words of size 3
  scoring at least T against a query word, which is what lets blastp find
  remote homologies (and why protein search examines many more candidate
  matches — the CPU-bound behaviour the paper's Fig. 5 relies on).

The word table is a flat CSR (compressed sparse row) layout: one sorted
array of distinct word ids, one offsets array, and one concatenated
postings array of query positions.  ``scan()`` is then a pure
``np.searchsorted`` join — pack the subject's words, binary-search them
against the word array, and gather the postings ranges — with no
Python-level loop over matching windows.  The per-work-unit fixed cost of
building the table is what the paper's Fig. 4/Fig. 5 block-size analysis is
about, so the builders are vectorised end to end and whole tables can be
reused across DB partitions through :class:`LookupCache`.

:class:`ReferenceNucleotideLookup` / :class:`ReferenceProteinLookup` keep
the original dict-of-arrays implementation as a parity oracle for the
property tests and the seeding benchmark.

Soft-masked query positions (DUST/SEG) produce no words, but extensions may
still run through them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.seq import SeqRecord, reverse_complement
from repro.blast.dust import dust_mask
from repro.blast.matrices import BLOSUM62
from repro.blast.seg import seg_mask

__all__ = [
    "QueryContext",
    "QueryBlock",
    "NucleotideLookup",
    "ProteinLookup",
    "ReferenceNucleotideLookup",
    "ReferenceProteinLookup",
    "LookupCache",
    "block_fingerprint",
]


@dataclass
class QueryContext:
    """One searchable strand of one query sequence."""

    query_index: int
    strand: int  # +1 or -1
    codes: np.ndarray  # encoded residues of this strand
    mask: np.ndarray  # True = soft-masked (no seeding)
    offset: int = 0  # start position in the concatenated coordinate space

    @property
    def length(self) -> int:
        return int(self.codes.size)

    @property
    def codes_index(self) -> np.ndarray:
        """``codes`` as an ``intp`` index array, converted once and cached.

        Every extension-stage matrix gather indexes with these, so the
        conversion is hoisted here — one copy per context for the life of
        the block (shared across subjects, partitions, and the
        :class:`LookupCache`) instead of one per kernel call.
        """
        idx = getattr(self, "_codes_index", None)
        if idx is None:
            idx = self.codes.astype(np.intp)
            self._codes_index = idx
        return idx


class QueryBlock:
    """Concatenated query contexts with global-position bookkeeping."""

    def __init__(self, records: Sequence[SeqRecord], program: str, use_mask: bool) -> None:
        if not records:
            raise ValueError("query block must contain at least one sequence")
        self.records = list(records)
        self.program = program
        self.contexts: list[QueryContext] = []
        offset = 0
        for qi, rec in enumerate(self.records):
            strands = [(1, rec.seq)]
            if program == "blastn":
                strands.append((-1, reverse_complement(rec.seq)))
            for strand, seq in strands:
                if program == "blastn":
                    codes = DNA.encode(seq)
                    mask = dust_mask(seq) if use_mask else np.zeros(len(seq), dtype=bool)
                else:
                    codes = PROTEIN.encode(seq)
                    mask = seg_mask(seq) if use_mask else np.zeros(len(seq), dtype=bool)
                self.contexts.append(QueryContext(qi, strand, codes, mask, offset))
                offset += codes.size
        self.total_length = offset
        self._starts = np.array([c.offset for c in self.contexts], dtype=np.int64)

    @property
    def concat_index(self) -> np.ndarray:
        """Every context's codes as one ``intp`` array, cached per block.

        Contexts are laid out back to back (``ctx.offset`` strides by
        ``ctx.length``), so this is the whole block in concatenated
        coordinates: the fused scheduler gathers matrix rows for hits of
        *all* contexts from it in one fancy-index instead of one gather
        per (subject, context) pair.
        """
        idx = getattr(self, "_concat_index", None)
        if idx is None:
            idx = np.concatenate([c.codes_index for c in self.contexts])
            self._concat_index = idx
        return idx

    def context_of(self, concat_pos: int | np.ndarray):
        """Context index (or array of indices) for concatenated positions."""
        return np.searchsorted(self._starts, concat_pos, side="right") - 1

    def localize(self, concat_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised (context indices, context-local positions)."""
        ctx = np.searchsorted(self._starts, concat_pos, side="right") - 1
        return ctx, concat_pos - self._starts[ctx]


def block_fingerprint(records: Sequence[SeqRecord]) -> tuple:
    """Content identity of a query block, for :class:`LookupCache` keys.

    ``hash(str)`` is cached on the string object, so repeated fingerprints
    of the same records are O(1) per record after the first call.
    """
    return tuple((rec.id, len(rec.seq), hash(rec.seq)) for rec in records)


class LookupCache:
    """LRU cache of built ``(QueryBlock, lookup table)`` pairs.

    The DB side of mrblast already caches the open partition per rank; this
    is the query-side mirror the paper's locality-aware dispatch needs: a
    block searched against *m* partitions builds its lookup table once, not
    *m* times.  Keys must capture block content and every option that shapes
    the table (see ``_EngineBase._lookup_key``).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, block, lookup) -> None:
        self._entries[key] = (block, lookup)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


def _pack_words(codes: np.ndarray, word_size: int, alphabet_size: int) -> np.ndarray:
    """Packed integer of every window of ``word_size`` letters (vectorised)."""
    n = codes.size - word_size + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    weights = alphabet_size ** np.arange(word_size - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(codes.astype(np.int64), word_size)
    return windows @ weights


def _window_unmasked(mask: np.ndarray, word_size: int) -> np.ndarray:
    """True where a window of ``word_size`` contains no masked position."""
    n = mask.size - word_size + 1
    if n <= 0:
        return np.empty(0, dtype=bool)
    windows = np.lib.stride_tricks.sliding_window_view(mask, word_size)
    return ~windows.any(axis=1)


class _LookupBase:
    """Shared CSR machinery: flat word table + searchsorted scanning."""

    word_size: int
    alphabet_size: int

    def __init__(self, block: QueryBlock) -> None:
        self.block = block
        words, positions = self._build_postings()
        # Stable sort by word: postings of one word stay position-ascending
        # (contexts are appended in offset order), matching the insertion
        # order of the reference dict implementation.
        order = np.argsort(words, kind="stable")
        sorted_words = words[order]
        self._positions = np.ascontiguousarray(positions[order])
        self._words, starts = np.unique(sorted_words, return_index=True)
        self._offsets = np.append(starts, sorted_words.size).astype(np.int64)
        self._table_cache: dict[int, np.ndarray] | None = None

    # subclasses return parallel (word, concat query position) arrays
    def _build_postings(self) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        raise NotImplementedError

    @property
    def n_words(self) -> int:
        return int(self._words.size)

    @property
    def n_postings(self) -> int:
        return int(self._positions.size)

    def postings(self, word: int) -> np.ndarray:
        """Query positions indexed under ``word`` (empty when absent)."""
        i = int(np.searchsorted(self._words, word))
        if i >= self._words.size or self._words[i] != word:
            return np.empty(0, dtype=np.int64)
        return self._positions[self._offsets[i] : self._offsets[i + 1]]

    @property
    def _table(self) -> dict[int, np.ndarray]:
        """Dict view of the CSR table (compatibility/introspection only)."""
        if self._table_cache is None:
            self._table_cache = {
                int(w): self._positions[self._offsets[i] : self._offsets[i + 1]]
                for i, w in enumerate(self._words)
            }
        return self._table_cache

    def _subject_words(self, subject_codes: np.ndarray) -> np.ndarray:
        """Packed word of every subject window; -1 for unscannable windows."""
        sub = subject_codes
        if self.alphabet_size == 20:
            # Protein subjects may contain ambiguity codes >= 20: windows
            # containing them cannot be looked up (give them an impossible
            # word id so they never match).
            valid = _window_unmasked(sub >= 20, self.word_size)
            words = _pack_words(np.minimum(sub, 19), self.word_size, self.alphabet_size)
            return np.where(valid, words, -1)
        return _pack_words(sub, self.word_size, self.alphabet_size)

    def scan(self, subject_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All word hits against one subject.

        Returns ``(query_concat_positions, subject_positions)`` arrays of
        equal length.  One ``searchsorted`` joins the subject's words
        against the CSR word array; the postings ranges of the matching
        windows are gathered with a single fancy-index — no Python-level
        loop at any size.
        """
        words = self._subject_words(subject_codes)
        if words.size == 0 or self._words.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        idx = np.searchsorted(self._words, words)
        idx_c = np.minimum(idx, self._words.size - 1)
        spos = np.flatnonzero(self._words[idx_c] == words)
        if spos.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        widx = idx[spos]
        row_starts = self._offsets[widx]
        counts = self._offsets[widx + 1] - row_starts
        total = int(counts.sum())
        # Flat gather of all postings ranges: for each matching window k,
        # indices row_starts[k] .. row_starts[k]+counts[k).
        ends = np.cumsum(counts)
        flat = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        flat += np.repeat(row_starts, counts)
        return self._positions[flat], np.repeat(spos, counts)


class NucleotideLookup(_LookupBase):
    """Exact-word lookup (blastn stage-1), built by sort over packed words."""

    def __init__(self, block: QueryBlock, word_size: int = 11) -> None:
        if word_size < 4 or word_size > 31:
            raise ValueError(f"nucleotide word_size must be in [4, 31], got {word_size}")
        self.word_size = word_size
        self.alphabet_size = 4
        super().__init__(block)

    def _build_postings(self) -> tuple[np.ndarray, np.ndarray]:
        words_out: list[np.ndarray] = []
        pos_out: list[np.ndarray] = []
        for ctx in self.block.contexts:
            words = _pack_words(ctx.codes, self.word_size, 4)
            usable = np.flatnonzero(_window_unmasked(ctx.mask, self.word_size))
            words_out.append(words[usable])
            pos_out.append(ctx.offset + usable.astype(np.int64))
        if not words_out:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(words_out), np.concatenate(pos_out)


#: threshold -> (neighbour words int16, offsets int64 of length 8001): row t
#: holds every word scoring >= threshold against query triple t.  Computed
#: once per process per threshold and shared by every block build — the
#: neighbourhood of a word depends only on the scoring matrix, never on the
#: query, so this is the "per-residue neighbour columns" precomputation that
#: turns the per-block build into a pure gather.
_NEIGHBOR_CSR_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _neighbor_csr(threshold: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR of BLOSUM62 3-mer neighbourhoods for every possible query triple."""
    entry = _NEIGHBOR_CSR_CACHE.get(threshold)
    if entry is not None:
        return entry
    B = BLOSUM62[:20, :20].astype(np.int16)
    words_parts: list[np.ndarray] = []
    counts = np.empty(8000, dtype=np.int64)
    # One first-residue slab at a time keeps the (b, c, x, y, z) score
    # broadcast at 20^5 = 3.2M int16 cells.
    for a in range(20):
        scores = (
            B[a][None, None, :, None, None]
            + B[:, None, None, :, None]
            + B[None, :, None, None, :]
        )
        b_i, c_i, x_i, y_i, z_i = np.nonzero(scores >= threshold)
        # np.nonzero is row-major: grouped by query triple (b, c), with
        # neighbour words ascending within each triple.
        words_parts.append((x_i * 400 + y_i * 20 + z_i).astype(np.int16))
        counts[a * 400 : (a + 1) * 400] = np.bincount(b_i * 20 + c_i, minlength=400)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    entry = (np.concatenate(words_parts), offsets)
    _NEIGHBOR_CSR_CACHE[threshold] = entry
    return entry


class ProteinLookup(_LookupBase):
    """Neighbourhood-word lookup (blastp stage-1).

    For each query word position, every word of the 20-letter alphabet whose
    BLOSUM62 score against the query word is at least ``threshold`` (T) is
    added to the table pointing back at that position.  The per-triple
    neighbourhoods come from the process-wide :func:`_neighbor_csr` table,
    so building a block's postings is one vectorised gather over the
    block's query triples — no per-position cube enumeration.
    """

    def __init__(self, block: QueryBlock, word_size: int = 3, threshold: int = 11) -> None:
        if word_size != 3:
            raise ValueError(f"protein lookup supports word_size 3, got {word_size}")
        self.word_size = word_size
        self.alphabet_size = 20
        self.threshold = threshold
        super().__init__(block)

    def _build_postings(self) -> tuple[np.ndarray, np.ndarray]:
        nbr_words, nbr_offsets = _neighbor_csr(self.threshold)
        words_out: list[np.ndarray] = []
        pos_out: list[np.ndarray] = []
        for ctx in self.block.contexts:
            codes = np.minimum(ctx.codes, 19).astype(np.int64)  # clip ambiguity
            starts = np.flatnonzero(
                _window_unmasked(ctx.mask | (ctx.codes >= 20), self.word_size)
            )
            if starts.size == 0:
                continue
            triples = codes[starts] * 400 + codes[starts + 1] * 20 + codes[starts + 2]
            row_starts = nbr_offsets[triples]
            counts = nbr_offsets[triples + 1] - row_starts
            total = int(counts.sum())
            ends = np.cumsum(counts)
            flat = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
            flat += np.repeat(row_starts, counts)
            words_out.append(nbr_words[flat].astype(np.int64))
            pos_out.append(np.repeat(ctx.offset + starts.astype(np.int64), counts))
        if not words_out:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(words_out), np.concatenate(pos_out)


# ---------------------------------------------------------------------------
# Reference implementations (pre-CSR): the parity oracle for property tests
# and the baseline for benchmarks/bench_seeding.py.  Deliberately kept as
# the original dict-of-arrays build and per-window scan loop.
# ---------------------------------------------------------------------------


class _DictLookupBase:
    """Original dict-based word table + per-matching-window scan loop."""

    word_size: int
    alphabet_size: int

    def __init__(self, block: QueryBlock) -> None:
        self.block = block
        self._table: dict[int, np.ndarray] = {}
        self._build()
        self._keys = np.array(sorted(self._table), dtype=np.int64)

    def _build(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def n_words(self) -> int:
        return len(self._table)

    def scan(self, subject_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        sub = subject_codes
        if self.alphabet_size == 20:
            valid = _window_unmasked(sub >= 20, self.word_size)
            words = _pack_words(np.minimum(sub, 19), self.word_size, self.alphabet_size)
            words = np.where(valid, words, -1)
        else:
            words = _pack_words(sub, self.word_size, self.alphabet_size)
        if words.size == 0 or self._keys.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        candidate = np.isin(words, self._keys)
        q_out: list[np.ndarray] = []
        s_out: list[np.ndarray] = []
        for spos in np.nonzero(candidate)[0]:
            qpositions = self._table[int(words[spos])]
            q_out.append(qpositions)
            s_out.append(np.full(qpositions.size, spos, dtype=np.int64))
        if not q_out:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        return np.concatenate(q_out), np.concatenate(s_out)


class ReferenceNucleotideLookup(_DictLookupBase):
    """Original per-position nucleotide builder (parity oracle)."""

    def __init__(self, block: QueryBlock, word_size: int = 11) -> None:
        if word_size < 4 or word_size > 31:
            raise ValueError(f"nucleotide word_size must be in [4, 31], got {word_size}")
        self.word_size = word_size
        self.alphabet_size = 4
        super().__init__(block)

    def _build(self) -> None:
        table: dict[int, list[int]] = {}
        for ctx in self.block.contexts:
            words = _pack_words(ctx.codes, self.word_size, 4)
            usable = _window_unmasked(ctx.mask, self.word_size)
            for local_pos in np.nonzero(usable)[0]:
                table.setdefault(int(words[local_pos]), []).append(ctx.offset + int(local_pos))
        self._table = {w: np.array(ps, dtype=np.int64) for w, ps in table.items()}


class ReferenceProteinLookup(_DictLookupBase):
    """Original per-position neighbourhood-cube builder (parity oracle)."""

    def __init__(self, block: QueryBlock, word_size: int = 3, threshold: int = 11) -> None:
        if word_size != 3:
            raise ValueError(f"protein lookup supports word_size 3, got {word_size}")
        self.word_size = word_size
        self.alphabet_size = 20
        self.threshold = threshold
        super().__init__(block)

    def _build(self) -> None:
        B = BLOSUM62[:20, :20]
        table: dict[int, list[int]] = {}
        for ctx in self.block.contexts:
            codes = ctx.codes
            usable = _window_unmasked(ctx.mask | (codes >= 20), self.word_size)
            n = codes.size - self.word_size + 1
            for local_pos in range(max(n, 0)):
                if not usable[local_pos]:
                    continue
                a, b, c = codes[local_pos], codes[local_pos + 1], codes[local_pos + 2]
                scores = (
                    B[a][:, None, None] + B[b][None, :, None] + B[c][None, None, :]
                )
                hits = np.nonzero(scores >= self.threshold)
                words = hits[0] * 400 + hits[1] * 20 + hits[2]
                gpos = ctx.offset + local_pos
                for w in words:
                    table.setdefault(int(w), []).append(gpos)
        self._table = {w: np.array(ps, dtype=np.int64) for w, ps in table.items()}
