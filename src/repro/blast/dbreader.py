"""Readers for partitioned database volumes.

``DbPartition`` memory-maps one volume's packed sequence file (the paper:
"the database access is implemented by caching memory-mapped regions of the
DB") and decodes individual subjects on demand.  ``DatabaseAlias`` exposes
the global statistics every partition search needs for full-DB E-values.

Each partition counts how many times its packed file was (re)opened —
mrblast's per-rank DB cache and the cluster model's page-cache accounting
both key off that.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN
from repro.blast.formatdb import unpack_2bit

__all__ = ["DatabaseAlias", "DbPartition"]


@dataclass(frozen=True)
class DatabaseAlias:
    """Parsed alias file: the volume list plus whole-database statistics."""

    name: str
    kind: str
    directory: str
    volumes: tuple[str, ...]
    total_length: int
    num_seqs: int

    @staticmethod
    def load(alias_path: str | os.PathLike) -> "DatabaseAlias":
        alias_path = os.fspath(alias_path)
        with open(alias_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return DatabaseAlias(
            name=data["name"],
            kind=data["kind"],
            directory=os.path.dirname(os.path.abspath(alias_path)),
            volumes=tuple(data["volumes"]),
            total_length=int(data["total_length"]),
            num_seqs=int(data["num_seqs"]),
        )

    @property
    def num_partitions(self) -> int:
        return len(self.volumes)

    def partition_path(self, index: int) -> str:
        if not (0 <= index < len(self.volumes)):
            raise IndexError(f"partition {index} outside [0, {len(self.volumes)})")
        return os.path.join(self.directory, self.volumes[index])

    def open_partition(self, index: int) -> "DbPartition":
        return DbPartition(self.partition_path(index))


class DbPartition:
    """One packed volume: lazily mapped, decoded per subject on access."""

    def __init__(self, base_path: str | os.PathLike) -> None:
        self.base_path = os.fspath(base_path)
        with open(self.base_path + ".idx.json", "r", encoding="utf-8") as fh:
            header = json.load(fh)
        self.kind: str = header["kind"]
        self.ids: list[str] = header["ids"]
        self.lengths: list[int] = [int(x) for x in header["lengths"]]
        self.offsets: list[int] = [int(x) for x in header["offsets"]]
        self.total_length: int = int(header["total_length"])
        self._data: np.ndarray | None = None
        self.load_count = 0

    @property
    def name(self) -> str:
        return os.path.basename(self.base_path)

    @property
    def num_seqs(self) -> int:
        return len(self.ids)

    def _ensure_loaded(self) -> np.ndarray:
        if self._data is None:
            self._data = np.load(self.base_path + ".seq.npy", mmap_mode="r")
            self.load_count += 1
        return self._data

    def release(self) -> None:
        """Drop the mapping (simulates cache eviction / partition switch)."""
        self._data = None

    def codes(self, i: int) -> np.ndarray:
        """Decoded uint8 codes of subject ``i``."""
        if not (0 <= i < self.num_seqs):
            raise IndexError(f"subject {i} outside [0, {self.num_seqs})")
        data = self._ensure_loaded()
        off, length = self.offsets[i], self.lengths[i]
        if self.kind == "dna":
            byte_start = off // 4
            # Sequences are concatenated before packing, so a subject may
            # start mid-byte; decode the covering byte range then trim.
            byte_end = (off + length + 3) // 4
            decoded = unpack_2bit(np.asarray(data[byte_start:byte_end]), (byte_end - byte_start) * 4)
            head = off - byte_start * 4
            return decoded[head : head + length]
        return np.asarray(data[off : off + length])

    def sequence(self, i: int) -> str:
        """Decoded sequence text of subject ``i``."""
        alphabet = DNA if self.kind == "dna" else PROTEIN
        return alphabet.decode(self.codes(i))

    def __iter__(self) -> Iterator[tuple[str, np.ndarray]]:
        """Stream ``(subject_id, codes)`` pairs — the scan loop's input."""
        for i in range(self.num_seqs):
            yield self.ids[i], self.codes(i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DbPartition({self.name}, seqs={self.num_seqs}, residues={self.total_length})"
