"""Tabular (outfmt 6) formatting of HSPs, plus a parser for round-trips.

Columns (NCBI's default 12): qseqid sseqid pident length mismatch gapopen
qstart qend sstart send evalue bitscore.  Coordinates are printed 1-based
inclusive; minus-strand nucleotide hits print subject coordinates reversed
(sstart > send), both per BLAST convention.

``gapopen`` in real BLAST counts gap openings; the engine tracks total gap
*columns*, so we print the opening count derived during traceback-free
accounting as the gap column count — a documented, deterministic stand-in
kept consistent between formatter and parser.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator

from repro.blast.hsp import HSP

__all__ = ["format_tabular_line", "format_tabular", "parse_tabular", "write_tabular"]


def _format_evalue(e: float) -> str:
    # NCBI prints 2-3 significant digits and clamps tiny values to 0.0; we
    # keep 7 significant digits so per-rank files round-trip losslessly
    # enough for the parallel == serial parity suite (only true underflow
    # prints as 0.0).
    if e == 0.0:
        return "0.0"
    if e >= 0.001:
        return f"{e:.4g}"
    return f"{e:.6e}"


def format_tabular_line(hsp: HSP) -> str:
    """One outfmt-6 line for one HSP."""
    if hsp.strand == 1:
        s_first, s_last = hsp.s_start + 1, hsp.s_end
    else:
        s_first, s_last = hsp.s_end, hsp.s_start + 1
    fields = (
        hsp.query_id,
        hsp.subject_id,
        f"{hsp.pident:.2f}",
        str(hsp.align_len),
        str(hsp.mismatches),
        str(hsp.gaps),
        str(hsp.q_start + 1),
        str(hsp.q_end),
        str(s_first),
        str(s_last),
        _format_evalue(hsp.evalue),
        f"{hsp.bit_score:.1f}",
    )
    return "\t".join(fields)


def format_tabular(hsps: Iterable[HSP]) -> str:
    """Multi-line outfmt-6 text."""
    return "".join(format_tabular_line(h) + "\n" for h in hsps)


def write_tabular(hsps: Iterable[HSP], dest: str | os.PathLike | io.TextIOBase,
                  append: bool = False) -> int:
    """Write (or append) HSP lines to a file; returns the count written.

    mrblast's reduce step "appends hits to the file that is owned by each
    rank" — append mode is that path.
    """
    own = isinstance(dest, (str, os.PathLike))
    handle = open(dest, "a" if append else "w", encoding="ascii") if own else dest
    n = 0
    try:
        for hsp in hsps:
            handle.write(format_tabular_line(hsp))
            handle.write("\n")
            n += 1
    finally:
        if own:
            handle.close()
    return n


def parse_tabular(source: str | os.PathLike | io.TextIOBase) -> Iterator[HSP]:
    """Parse outfmt-6 lines back into HSP objects.

    ``score`` is not part of the format; it is reconstructed only
    approximately (from the bit score rounding) and set to 0 — parsed HSPs
    are for inspection/merging, not re-scoring.
    """
    own = isinstance(source, (str, os.PathLike))
    handle = open(source, "r", encoding="ascii") if own else source
    try:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 12:
                raise ValueError(f"line {lineno}: expected 12 columns, got {len(parts)}")
            (qid, sid, pident, length, mism, gaps, qs, qe, ss, se, ev, bits) = parts
            align_len = int(length)
            identities = int(round(float(pident) * align_len / 100.0))
            s_first, s_last = int(ss), int(se)
            strand = 1 if s_last >= s_first else -1
            s_start = (s_first - 1) if strand == 1 else (s_last - 1)
            s_end = s_last if strand == 1 else s_first
            q_start, q_end = int(qs) - 1, int(qe)
            # Translated hits (blastx queries / tblastn subjects) report
            # nucleotide coordinates on the translated side against
            # amino-acid alignment columns; the 12-column format has no
            # frame field, so recover "translated" from the span ratio
            # (the exact frame number is not recoverable; stored as ±1).
            frame = 0
            if max(q_end - q_start, s_end - s_start) > align_len + int(gaps):
                frame = strand
            yield HSP(
                query_id=qid,
                subject_id=sid,
                score=0,
                bit_score=float(bits),
                evalue=float(ev),
                q_start=q_start,
                q_end=q_end,
                s_start=s_start,
                s_end=s_end,
                identities=identities,
                align_len=align_len,
                gaps=int(gaps),
                strand=strand,
                frame=frame,
            )
    finally:
        if own:
            handle.close()
