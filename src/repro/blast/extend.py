"""Stage 2 of BLAST: ungapped X-drop extension of word hits.

A word hit is extended in both directions as long as the running score does
not fall more than ``xdrop`` below the best score seen (paper §II.B: "the
second stage extends each matching word as an ungapped alignment").  The
inner loops are vectorised: pair scores come from one fancy-indexing gather
and the X-drop stopping point from a cumulative-sum/running-max scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UngappedHSP", "ungapped_extend", "extension_scores"]


@dataclass(frozen=True)
class UngappedHSP:
    """Result of one ungapped extension (coordinates half-open)."""

    score: int
    q_start: int
    q_end: int
    s_start: int
    s_end: int

    @property
    def length(self) -> int:
        return self.q_end - self.q_start

    def seed_point(self) -> tuple[int, int]:
        """Mid-point of the segment — the anchor for gapped extension."""
        mid = (self.q_end - self.q_start) // 2
        return self.q_start + mid, self.s_start + mid


def extension_scores(
    q_codes: np.ndarray, s_codes: np.ndarray, matrix: np.ndarray
) -> np.ndarray:
    """Pair scores of two equal-length encoded segments."""
    if q_codes.size != s_codes.size:
        raise ValueError("segments must have equal length")
    if q_codes.size == 0:
        return np.empty(0, dtype=np.int64)
    return matrix[q_codes.astype(np.intp), s_codes.astype(np.intp)].astype(np.int64)


def _xdrop_extent(scores: np.ndarray, xdrop: float) -> tuple[int, int]:
    """(best_partial_sum, length) of an X-drop-limited extension.

    Walk the score sequence accumulating; stop at the first position where
    the running sum falls ``xdrop`` below the running maximum; return the
    best prefix sum (if positive) and its length.
    """
    if scores.size == 0:
        return 0, 0
    cum = np.cumsum(scores)
    runmax = np.maximum.accumulate(np.maximum(cum, 0))
    dropped = (runmax - cum) > xdrop
    limit = int(np.argmax(dropped)) if dropped.any() else scores.size
    if limit == 0:
        return 0, 0
    window = cum[:limit]
    best_idx = int(np.argmax(window))
    best = int(window[best_idx])
    if best <= 0:
        return 0, 0
    return best, best_idx + 1


def ungapped_extend(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_pos: int,
    s_pos: int,
    word_size: int,
    matrix: np.ndarray,
    xdrop: float,
) -> UngappedHSP:
    """Extend a word hit at ``(q_pos, s_pos)`` without gaps.

    The seed word ``[q_pos, q_pos+word_size)`` is always included; the
    extension grows left from ``q_pos-1`` and right from
    ``q_pos+word_size`` under the X-drop rule.
    """
    if not (0 <= q_pos <= q_codes.size - word_size):
        raise ValueError(f"query word start {q_pos} out of range")
    if not (0 <= s_pos <= s_codes.size - word_size):
        raise ValueError(f"subject word start {s_pos} out of range")

    word_score = int(
        extension_scores(
            q_codes[q_pos : q_pos + word_size], s_codes[s_pos : s_pos + word_size], matrix
        ).sum()
    )

    # Right of the word.
    n_right = min(q_codes.size - (q_pos + word_size), s_codes.size - (s_pos + word_size))
    right_scores = extension_scores(
        q_codes[q_pos + word_size : q_pos + word_size + n_right],
        s_codes[s_pos + word_size : s_pos + word_size + n_right],
        matrix,
    )
    right_gain, right_len = _xdrop_extent(right_scores, xdrop)

    # Left of the word (walk outward, i.e. reversed slices).
    n_left = min(q_pos, s_pos)
    left_scores = extension_scores(
        q_codes[q_pos - n_left : q_pos][::-1],
        s_codes[s_pos - n_left : s_pos][::-1],
        matrix,
    )
    left_gain, left_len = _xdrop_extent(left_scores, xdrop)

    return UngappedHSP(
        score=word_score + right_gain + left_gain,
        q_start=q_pos - left_len,
        q_end=q_pos + word_size + right_len,
        s_start=s_pos - left_len,
        s_end=s_pos + word_size + right_len,
    )
