"""Stage 2 of BLAST: ungapped X-drop extension of word hits.

A word hit is extended in both directions as long as the running score does
not fall more than ``xdrop`` below the best score seen (paper §II.B: "the
second stage extends each matching word as an ungapped alignment").

Two implementations share the same semantics:

- :func:`ungapped_extend` extends one hit (pair scores from one
  fancy-indexing gather, the X-drop stopping point from a cumulative-sum/
  running-max scan).  It is the parity oracle for the batched kernel and
  the engine's fallback for extensions that outrun the batch window.
- :func:`batch_ungapped_extend` extends many hits of one (query, subject)
  pair at once: fixed-size left/right windows are gathered into padded 2-D
  arrays, scored with one ``matrix[q, s]`` gather, and every hit's X-drop
  extent found with one row-wise cumsum/running-max scan.  Hits that
  outrun the window are re-batched with geometrically wider windows until
  every extension terminates in-batch, so results are bit-identical to
  :func:`ungapped_extend`; an explicit ``max_window`` caps the escalation
  and reports capped rows incomplete for the caller's scalar fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: fill for cells past a row's admissible scan limit (batch grids are int32)
_I32_MIN = np.int32(np.iinfo(np.int32).min)

__all__ = [
    "UngappedHSP",
    "UngappedExtents",
    "ungapped_extend",
    "batch_ungapped_extend",
    "batch_ungapped_extend_spans",
    "extension_scores",
]


def _as_index(codes: np.ndarray) -> np.ndarray:
    """Codes as an ``intp`` index array, avoiding the copy when possible."""
    return codes if codes.dtype == np.intp else codes.astype(np.intp)


@dataclass(frozen=True)
class UngappedHSP:
    """Result of one ungapped extension (coordinates half-open)."""

    score: int
    q_start: int
    q_end: int
    s_start: int
    s_end: int

    @property
    def length(self) -> int:
        return self.q_end - self.q_start

    def seed_point(self) -> tuple[int, int]:
        """Mid-point of the segment — the anchor for gapped extension."""
        mid = (self.q_end - self.q_start) // 2
        return self.q_start + mid, self.s_start + mid


def extension_scores(
    q_codes: np.ndarray, s_codes: np.ndarray, matrix: np.ndarray
) -> np.ndarray:
    """Pair scores of two equal-length encoded segments."""
    if q_codes.size != s_codes.size:
        raise ValueError("segments must have equal length")
    if q_codes.size == 0:
        return np.empty(0, dtype=np.int64)
    return matrix[_as_index(q_codes), _as_index(s_codes)].astype(np.int64)


def _xdrop_extent(scores: np.ndarray, xdrop: float) -> tuple[int, int]:
    """(best_partial_sum, length) of an X-drop-limited extension.

    Walk the score sequence accumulating; stop at the first position where
    the running sum falls ``xdrop`` below the running maximum; return the
    best prefix sum (if positive) and its length.
    """
    if scores.size == 0:
        return 0, 0
    cum = np.cumsum(scores)
    runmax = np.maximum.accumulate(np.maximum(cum, 0))
    dropped = (runmax - cum) > xdrop
    limit = int(np.argmax(dropped)) if dropped.any() else scores.size
    if limit == 0:
        return 0, 0
    window = cum[:limit]
    best_idx = int(np.argmax(window))
    best = int(window[best_idx])
    if best <= 0:
        return 0, 0
    return best, best_idx + 1


def ungapped_extend(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_pos: int,
    s_pos: int,
    word_size: int,
    matrix: np.ndarray,
    xdrop: float,
) -> UngappedHSP:
    """Extend a word hit at ``(q_pos, s_pos)`` without gaps.

    The seed word ``[q_pos, q_pos+word_size)`` is always included; the
    extension grows left from ``q_pos-1`` and right from
    ``q_pos+word_size`` under the X-drop rule.
    """
    if not (0 <= q_pos <= q_codes.size - word_size):
        raise ValueError(f"query word start {q_pos} out of range")
    if not (0 <= s_pos <= s_codes.size - word_size):
        raise ValueError(f"subject word start {s_pos} out of range")

    word_score = int(
        extension_scores(
            q_codes[q_pos : q_pos + word_size], s_codes[s_pos : s_pos + word_size], matrix
        ).sum()
    )

    # Right of the word.
    n_right = min(q_codes.size - (q_pos + word_size), s_codes.size - (s_pos + word_size))
    right_scores = extension_scores(
        q_codes[q_pos + word_size : q_pos + word_size + n_right],
        s_codes[s_pos + word_size : s_pos + word_size + n_right],
        matrix,
    )
    right_gain, right_len = _xdrop_extent(right_scores, xdrop)

    # Left of the word (walk outward, i.e. reversed slices).
    n_left = min(q_pos, s_pos)
    left_scores = extension_scores(
        q_codes[q_pos - n_left : q_pos][::-1],
        s_codes[s_pos - n_left : s_pos][::-1],
        matrix,
    )
    left_gain, left_len = _xdrop_extent(left_scores, xdrop)

    return UngappedHSP(
        score=word_score + right_gain + left_gain,
        q_start=q_pos - left_len,
        q_end=q_pos + word_size + right_len,
        s_start=s_pos - left_len,
        s_end=s_pos + word_size + right_len,
    )


@dataclass(frozen=True)
class UngappedExtents:
    """Per-hit results of :func:`batch_ungapped_extend` (parallel arrays).

    Rows with ``complete=False`` hit the batch window boundary before the
    X-drop rule terminated them; their values are a lower bound only and the
    caller must re-extend those hits with :func:`ungapped_extend`.
    """

    score: np.ndarray
    q_start: np.ndarray
    q_end: np.ndarray
    s_start: np.ndarray
    s_end: np.ndarray
    complete: np.ndarray


def _batch_extents(
    scores: np.ndarray, avail: np.ndarray, xdrop: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise :func:`_xdrop_extent` over a padded score window.

    ``scores[r, t]`` is the t-th step score of row r; cells at ``t >=
    avail[r]`` must already hold a pad below ``-xdrop`` so the scan drops at
    the boundary.  Returns (gain, length, complete) arrays; a row is
    complete when the X-drop rule fired inside the window or the window
    covered everything reachable.
    """
    window = scores.shape[1]
    cum = np.cumsum(scores, axis=1)  # int32: |cum| <= window * max|score|
    runmax = np.maximum.accumulate(cum, axis=1)
    np.maximum(runmax, 0, out=runmax)
    np.subtract(runmax, cum, out=runmax)  # reused as the drop depth
    # Integer depth > float xdrop  <=>  depth >= floor(xdrop) + 1.
    dropped = runmax >= np.int32(int(np.floor(xdrop)) + 1)
    any_drop = dropped.any(axis=1)
    complete = any_drop | (avail <= window)
    limit = np.where(any_drop, np.argmax(dropped, axis=1), np.minimum(avail, window))
    cols = np.arange(window, dtype=np.int64)
    masked = np.where(cols[None, :] < limit[:, None], cum, _I32_MIN)
    best_idx = np.argmax(masked, axis=1)
    best = masked.max(axis=1)
    positive = (limit > 0) & (best > 0)
    gain = np.where(positive, best, 0)
    length = np.where(positive, best_idx + 1, 0)
    return gain, length, complete


def _batch_pass(
    q_idx: np.ndarray,
    s_idx: np.ndarray,
    qp: np.ndarray,
    sp: np.ndarray,
    bounds: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    word_size: int,
    matrix: np.ndarray,
    xdrop: float,
    window: int,
    cell_budget: int,
) -> tuple[np.ndarray, ...]:
    """One fixed-window pass over a set of hits (chunked to the cell budget).

    ``bounds`` carries per-row ``(q_lo, q_hi, s_lo, s_hi)`` sequence spans
    inside ``q_idx``/``s_idx``: a row's extension may not read outside its
    own span, which is what lets one pass serve hits of *many* concatenated
    sequences.  Cells gathered past a span are clamped into the arrays (the
    gather must stay in range) and masked below ``-xdrop``, so the X-drop
    scan stops exactly at each row's own boundary.
    """
    n = qp.size
    q_lo_a, q_hi_a, s_lo_a, s_hi_a = bounds
    qlen, slen = q_idx.size, s_idx.size
    pad = np.int32(int(np.floor(xdrop)) + 1)
    steps = np.arange(window, dtype=np.int64)
    word_steps = np.arange(word_size, dtype=np.int64)
    chunk = max(1, cell_budget // max(window, 1))
    if matrix.dtype != np.int32:
        matrix = matrix.astype(np.int32)

    score = np.empty(n, dtype=np.int64)
    len_left = np.empty(n, dtype=np.int64)
    len_right = np.empty(n, dtype=np.int64)
    complete = np.empty(n, dtype=bool)

    for lo in range(0, n, chunk):
        qp_c = qp[lo : lo + chunk, None]
        sp_c = sp[lo : lo + chunk, None]
        nc = qp_c.shape[0]
        q_hi_c = q_hi_a[lo : lo + chunk]
        s_hi_c = s_hi_a[lo : lo + chunk]
        q_lo_c = q_lo_a[lo : lo + chunk]
        s_lo_c = s_lo_a[lo : lo + chunk]

        word_scores = matrix[
            q_idx[qp_c + word_steps], s_idx[sp_c + word_steps]
        ].sum(axis=1, dtype=np.int64)

        # Right of the word: step t reads q[qp+word+t], s[sp+word+t].
        avail_r = np.minimum(q_hi_c - (qp_c[:, 0] + word_size),
                             s_hi_c - (sp_c[:, 0] + word_size))
        q_r = np.minimum(qp_c + word_size + steps, qlen - 1)
        s_r = np.minimum(sp_c + word_size + steps, slen - 1)
        scores_r = matrix[q_idx[q_r], s_idx[s_r]]
        scores_r[steps[None, :] >= avail_r[:, None]] = -pad

        # Left of the word: step t reads q[qp-1-t], s[sp-1-t] (outward walk).
        avail_l = np.minimum(qp_c[:, 0] - q_lo_c, sp_c[:, 0] - s_lo_c)
        q_l = np.maximum(qp_c - 1 - steps, 0)
        s_l = np.maximum(sp_c - 1 - steps, 0)
        scores_l = matrix[q_idx[q_l], s_idx[s_l]]
        scores_l[steps[None, :] >= avail_l[:, None]] = -pad

        # Both directions share one row-wise X-drop scan (they are
        # independent rows of the same fixed-window problem).
        gain, length, comp = _batch_extents(
            np.concatenate((scores_r, scores_l), axis=0),
            np.concatenate((avail_r, avail_l)),
            xdrop,
        )

        sl = slice(lo, lo + nc)
        score[sl] = word_scores + gain[:nc] + gain[nc:]
        len_left[sl] = length[nc:]
        len_right[sl] = length[:nc]
        complete[sl] = comp[:nc] & comp[nc:]

    return score, len_left, len_right, complete


def batch_ungapped_extend(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_pos: np.ndarray,
    s_pos: np.ndarray,
    word_size: int,
    matrix: np.ndarray,
    xdrop: float,
    window: int = 64,
    chunk: int = 4096,
    max_window: int | None = None,
) -> UngappedExtents:
    """Ungapped X-drop extension of many word hits in array passes.

    ``q_pos``/``s_pos`` are parallel arrays of word-start coordinates into
    ``q_codes``/``s_codes``.  Left and right windows of ``window`` steps are
    gathered into 2-D arrays; positions past a sequence end are padded with
    a score below ``-xdrop`` so the X-drop scan stops exactly at the
    boundary.  Rows whose extension outruns the window are re-batched with
    a 4x larger window — only the shrinking incomplete set pays for the
    wider gather — until every row terminates, so by default all rows come
    back ``complete=True`` and bit-identical to :func:`ungapped_extend`.
    ``max_window`` caps the escalation; capped rows come back
    ``complete=False`` with lower-bound extents and must be re-extended on
    the scalar path.  Memory stays O(chunk * window) cells throughout: the
    row count per pass shrinks as the window grows.
    """
    q_idx = _as_index(q_codes)
    s_idx = _as_index(s_codes)
    qp = np.asarray(q_pos, dtype=np.int64)
    sp = np.asarray(s_pos, dtype=np.int64)
    n = qp.size
    bounds = (
        np.zeros(n, dtype=np.int64),
        np.full(n, q_idx.size, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.full(n, s_idx.size, dtype=np.int64),
    )
    return _extend_bounded(
        q_idx, s_idx, qp, sp, bounds, word_size, matrix, xdrop,
        window, chunk, max_window,
    )


def batch_ungapped_extend_spans(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    q_pos: np.ndarray,
    s_pos: np.ndarray,
    q_lo: np.ndarray,
    q_hi: np.ndarray,
    s_lo: np.ndarray,
    s_hi: np.ndarray,
    word_size: int,
    matrix: np.ndarray,
    xdrop: float,
    window: int = 64,
    chunk: int = 4096,
    max_window: int | None = None,
    stats: dict | None = None,
) -> UngappedExtents:
    """Ungapped extension of hits spread across *many* sequence pairs.

    The multi-sequence form of :func:`batch_ungapped_extend`:
    ``q_codes``/``s_codes`` are concatenations of whole sequence sets, and
    each hit row carries the half-open span ``[q_lo, q_hi)`` / ``[s_lo,
    s_hi)`` of the sequences it belongs to.  Every pass is still one padded
    2-D gather and one row-wise X-drop scan across the entire batch — one
    kernel call per round regardless of how many queries, contexts and
    subjects contributed rows, which is what the fused engine scheduler
    relies on.  Per-row results are bit-identical to calling
    :func:`batch_ungapped_extend` on each row's own sequence pair.

    ``stats`` (optional dict) accumulates ``peak_window_bytes``: the largest
    padded score-window slab any pass allocated.
    """
    qp = np.asarray(q_pos, dtype=np.int64)
    sp = np.asarray(s_pos, dtype=np.int64)
    bounds = (
        np.asarray(q_lo, dtype=np.int64),
        np.asarray(q_hi, dtype=np.int64),
        np.asarray(s_lo, dtype=np.int64),
        np.asarray(s_hi, dtype=np.int64),
    )
    return _extend_bounded(
        _as_index(q_codes), _as_index(s_codes), qp, sp, bounds, word_size,
        matrix, xdrop, window, chunk, max_window, stats,
    )


def _extend_bounded(
    q_idx: np.ndarray,
    s_idx: np.ndarray,
    qp: np.ndarray,
    sp: np.ndarray,
    bounds: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    word_size: int,
    matrix: np.ndarray,
    xdrop: float,
    window: int,
    chunk: int,
    max_window: int | None,
    stats: dict | None = None,
) -> UngappedExtents:
    """Shared escalation driver over :func:`_batch_pass` (see public docs)."""
    n = qp.size
    q_lo_a, q_hi_a, s_lo_a, s_hi_a = bounds
    out_score = np.zeros(n, dtype=np.int64)
    out_len_l = np.zeros(n, dtype=np.int64)
    out_len_r = np.zeros(n, dtype=np.int64)
    out_complete = np.zeros(n, dtype=bool)
    cell_budget = max(chunk, 1) * max(window, 1)

    pending = np.arange(n)
    w = max(window, 1)
    while pending.size:
        if stats is not None:
            # Both direction slabs of the widest chunk this pass gathers.
            rows = min(pending.size, max(1, cell_budget // max(w, 1)))
            stats["peak_window_bytes"] = max(
                stats.get("peak_window_bytes", 0), 2 * rows * w * 4
            )
        score, len_l, len_r, complete = _batch_pass(
            q_idx, s_idx, qp[pending], sp[pending],
            tuple(b[pending] for b in bounds),
            word_size, matrix, xdrop, w, cell_budget,
        )
        out_score[pending] = score
        out_len_l[pending] = len_l
        out_len_r[pending] = len_r
        out_complete[pending] = complete
        pending = pending[~complete]
        if pending.size == 0:
            break
        if max_window is not None and w >= max_window:
            break
        # A window covering everything reachable completes every row, so
        # the escalation terminates at the widest remaining reach.
        reach_r = np.minimum(q_hi_a[pending] - (qp[pending] + word_size),
                             s_hi_a[pending] - (sp[pending] + word_size))
        reach_l = np.minimum(qp[pending] - q_lo_a[pending],
                             sp[pending] - s_lo_a[pending])
        reach = int(max(reach_r.max(), reach_l.max(), 1))
        w = min(w * 4, reach)
        if max_window is not None:
            w = min(w, max_window)

    return UngappedExtents(
        out_score,
        qp - out_len_l,
        qp + word_size + out_len_r,
        sp - out_len_l,
        sp + word_size + out_len_r,
        out_complete,
    )
