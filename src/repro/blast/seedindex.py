"""Prototype of the paper's §V "ground-breaking" idea: a distributed DB seed index.

"The really ground breaking parallel implementation of BLAST would be based
on a global distributed index of the DB seeds, thus improving upon the
linear complexity of the current implementations relative to the DB size."

This module is that prototype, at nucleotide word granularity:

- **Build** (collective): every rank scans its share of the DB partitions
  and emits ``(word, posting)`` pairs through a MapReduce collate, so each
  word's postings land on the rank that owns it (``stable_hash(word) %
  nprocs``) — a global index partitioned by seed, not by DB sequence.
- **Query** (collective): ranks compute the words of their share of the
  queries, route word lookups to the owners with one ``alltoall``, receive
  postings back with a second, and count (subject, diagonal) agreement.
  Subjects reaching ``min_word_hits`` on some diagonal band are candidate
  matches.

Unlike the scan-based engine, query cost scales with the number of *query*
words and matching postings, independent of total DB length — exactly the
complexity improvement the paper sketches.  The prototype stops at
candidate generation (the expensive part the index removes); extensions
would proceed with the existing stage-2/3 machinery.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DatabaseAlias
from repro.blast.lookup import QueryBlock, _pack_words
from repro.mpi.comm import Comm
from repro.mrmpi.hashing import stable_hash

__all__ = ["DistributedSeedIndex", "Candidate"]


@dataclass(frozen=True)
class Candidate:
    """A candidate match: query/subject pair with seed support."""

    query_id: str
    subject_id: str
    strand: int
    word_hits: int
    best_diagonal: int

    def sort_key(self):
        return (-self.word_hits, self.subject_id, self.strand, self.best_diagonal)


class DistributedSeedIndex:
    """Seed-partitioned global index of a formatted database."""

    def __init__(self, comm: Comm, alias: DatabaseAlias, word_size: int = 11) -> None:
        if alias.kind != "dna":
            raise ValueError("the seed-index prototype supports nucleotide DBs")
        if not (4 <= word_size <= 15):
            raise ValueError(f"word_size must be in [4, 15], got {word_size}")
        self.comm = comm
        self.alias = alias
        self.word_size = word_size
        #: word -> list of (subject_id, position) postings owned by this rank
        self._postings: dict[int, list[tuple[str, int]]] = {}
        self.total_postings = 0
        self._build()

    # ------------------------------------------------------------------ build

    def _owners(self, words: np.ndarray) -> np.ndarray:
        """Owner rank of each word; hashes each distinct word only once."""
        uniq, inv = np.unique(words, return_inverse=True)
        cache = self._owner_cache
        size = self.comm.size
        owners_u = np.empty(uniq.size, dtype=np.int64)
        for i, w in enumerate(uniq.tolist()):
            owner = cache.get(w)
            if owner is None:
                owner = stable_hash(w) % size
                cache[w] = owner
            owners_u[i] = owner
        return owners_u[inv]

    def _build(self) -> None:
        comm = self.comm
        # Each rank scans a strided share of the partitions and buckets the
        # (word, posting) pairs by owner rank; word ownership is computed
        # per distinct word over the whole subject, not per position.
        self._owner_cache: dict[int, int] = {}
        # Per-destination column batches — (words, subject ids, positions)
        # as parallel arrays rather than tuples, so the exchange is three
        # contiguous buffers per peer (zero-copy on an arena transport)
        # instead of a pickled list of per-posting tuples.
        out_words: list[list[np.ndarray]] = [[] for _ in range(comm.size)]
        out_sids: list[list[np.ndarray]] = [[] for _ in range(comm.size)]
        out_pos: list[list[np.ndarray]] = [[] for _ in range(comm.size)]
        for p in range(comm.rank, self.alias.num_partitions, comm.size):
            partition = self.alias.open_partition(p)
            for sid, codes in partition:
                words = _pack_words(codes, self.word_size, 4)
                if words.size == 0:
                    continue
                owners = self._owners(words)
                for r in np.unique(owners).tolist():
                    sel = np.flatnonzero(owners == r)
                    out_words[r].append(words[sel])
                    out_sids[r].append(np.full(sel.size, sid))
                    out_pos[r].append(sel.astype(np.int64, copy=False))
        outgoing = [
            None if not out_words[r] else (
                np.concatenate(out_words[r]),
                np.concatenate(out_sids[r]),
                np.concatenate(out_pos[r]),
            )
            for r in range(comm.size)
        ]
        incoming = comm.alltoall(outgoing)
        for batch in incoming:
            if batch is None:
                continue
            w_col, sid_col, pos_col = batch
            for w, sid, pos in zip(
                w_col.tolist(), sid_col.tolist(), pos_col.tolist()
            ):
                self._postings.setdefault(w, []).append((sid, pos))
                self.total_postings += 1

    @property
    def local_words(self) -> int:
        return len(self._postings)

    def global_stats(self) -> tuple[int, int]:
        """Collective: (total distinct-word entries across ranks, postings)."""
        from repro.mpi.ops import SUM

        return (
            int(self.comm.allreduce(self.local_words, op=SUM)),
            int(self.comm.allreduce(self.total_postings, op=SUM)),
        )

    # ------------------------------------------------------------------ query

    def candidates(
        self,
        queries: Sequence[SeqRecord],
        min_word_hits: int = 2,
        diagonal_band: int = 16,
    ) -> dict[str, list[Candidate]]:
        """Collective candidate lookup for a shared query list.

        Every rank passes the same ``queries``; rank r processes queries
        ``r::size`` and the final dictionary (query id -> candidates sorted
        by support) is allgathered so all ranks return the same result.

        Two word hits within ``diagonal_band`` of each other count toward
        the same alignment (the index-level analogue of the two-hit rule).
        """
        if min_word_hits < 1:
            raise ValueError(f"min_word_hits must be >= 1, got {min_word_hits}")
        comm = self.comm
        my_queries = list(queries)[comm.rank :: comm.size]

        # Phase 1: route (request_id, word, q_pos) lookups to word owners,
        # shipped as three parallel int64 columns per destination so the
        # exchange stays on the transport's buffer fast path.
        req_rid: list[list[np.ndarray]] = [[] for _ in range(comm.size)]
        req_word: list[list[np.ndarray]] = [[] for _ in range(comm.size)]
        req_qpos: list[list[np.ndarray]] = [[] for _ in range(comm.size)]
        contexts: list[tuple[str, int]] = []  # request id -> (query id, strand)
        if my_queries:
            from repro.blast.lookup import _window_unmasked

            block = QueryBlock(my_queries, "blastn", use_mask=True)
            for ctx in block.contexts:
                rid = len(contexts)
                contexts.append((block.records[ctx.query_index].id, ctx.strand))
                words = _pack_words(ctx.codes, self.word_size, 4)
                usable = np.flatnonzero(_window_unmasked(ctx.mask, self.word_size))
                if usable.size == 0:
                    continue
                ctx_words = words[usable]
                owners = self._owners(ctx_words)
                for r in np.unique(owners).tolist():
                    sel = np.flatnonzero(owners == r)
                    req_rid[r].append(np.full(sel.size, rid, dtype=np.int64))
                    req_word[r].append(ctx_words[sel])
                    req_qpos[r].append(usable[sel].astype(np.int64, copy=False))
        requests = [
            None if not req_rid[r] else (
                np.concatenate(req_rid[r]),
                np.concatenate(req_word[r]),
                np.concatenate(req_qpos[r]),
            )
            for r in range(comm.size)
        ]

        incoming = comm.alltoall(requests)

        # Phase 2: owners answer with postings per request — columns again:
        # (request id, q_pos, subject id, s_pos).
        rep_rid: list[list[int]] = [[] for _ in range(comm.size)]
        rep_qpos: list[list[int]] = [[] for _ in range(comm.size)]
        rep_sid: list[list[str]] = [[] for _ in range(comm.size)]
        rep_spos: list[list[int]] = [[] for _ in range(comm.size)]
        for src, batch in enumerate(incoming):
            if batch is None:
                continue
            rid_col, w_col, q_col = batch
            for rid, w, q_pos in zip(
                rid_col.tolist(), w_col.tolist(), q_col.tolist()
            ):
                for sid, s_pos in self._postings.get(w, ()):
                    rep_rid[src].append(rid)
                    rep_qpos[src].append(q_pos)
                    rep_sid[src].append(sid)
                    rep_spos[src].append(s_pos)
        replies = [
            None if not rep_rid[src] else (
                np.asarray(rep_rid[src], dtype=np.int64),
                np.asarray(rep_qpos[src], dtype=np.int64),
                np.asarray(rep_sid[src]),
                np.asarray(rep_spos[src], dtype=np.int64),
            )
            for src in range(comm.size)
        ]
        answers = comm.alltoall(replies)

        # Phase 3: per (query, subject, strand), count diagonal-banded hits.
        support: dict[tuple[int, str], dict[int, int]] = defaultdict(lambda: defaultdict(int))
        for batch in answers:
            if batch is None:
                continue
            rid_col, qp_col, sid_col, sp_col = batch
            for rid, q_pos, sid, s_pos in zip(
                rid_col.tolist(), qp_col.tolist(),
                sid_col.tolist(), sp_col.tolist(),
            ):
                band = (s_pos - q_pos) // max(diagonal_band, 1)
                support[(rid, sid)][band] += 1

        local: dict[str, list[Candidate]] = defaultdict(list)
        for (rid, sid), bands in support.items():
            best_band, hits = max(bands.items(), key=lambda kv: (kv[1], -kv[0]))
            if hits < min_word_hits:
                continue
            query_id, strand = contexts[rid]
            local[query_id].append(
                Candidate(
                    query_id=query_id,
                    subject_id=sid,
                    strand=strand,
                    word_hits=hits,
                    best_diagonal=best_band * diagonal_band,
                )
            )
        for cands in local.values():
            cands.sort(key=Candidate.sort_key)

        merged: dict[str, list[Candidate]] = {}
        for part in self.comm.allgather(dict(local)):
            merged.update(part)
        return merged
