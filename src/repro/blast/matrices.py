"""Score matrices: BLOSUM62 and match/mismatch nucleotide matrices.

BLOSUM62 is stored in the alphabet order of :data:`repro.bio.alphabet.PROTEIN`
(``ARNDCQEGHILKMFPSTWYVBZX*``) so that ``BLOSUM62[code_a, code_b]`` is a raw
score with no index translation.
"""

from __future__ import annotations

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN

__all__ = ["BLOSUM62", "nucleotide_matrix", "background_frequencies"]

_B62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

#: BLOSUM62 as a (24, 24) int32 matrix in PROTEIN alphabet order.
BLOSUM62 = np.array(
    [[int(x) for x in row.split()] for row in _B62_ROWS.strip().splitlines()],
    dtype=np.int32,
)
assert BLOSUM62.shape == (len(PROTEIN.letters), len(PROTEIN.letters))
assert (BLOSUM62 == BLOSUM62.T).all(), "BLOSUM62 must be symmetric"


def nucleotide_matrix(reward: int = 1, penalty: int = -2) -> np.ndarray:
    """Match/mismatch matrix over the DNA alphabet (A, C, G, T).

    Defaults (+1/-2) are the classic blastn reward/penalty the ungapped
    Karlin tables are published for.
    """
    if reward <= 0:
        raise ValueError(f"reward must be positive, got {reward}")
    if penalty >= 0:
        raise ValueError(f"penalty must be negative, got {penalty}")
    n = DNA.size
    m = np.full((n, n), penalty, dtype=np.int32)
    np.fill_diagonal(m, reward)
    return m


#: Robinson & Robinson amino-acid background frequencies (NCBI's default for
#: Karlin parameter computation), indexed by the first 20 PROTEIN codes.
_ROBINSON = {
    "A": 78.05, "R": 51.29, "N": 44.87, "D": 53.64, "C": 19.25,
    "Q": 42.64, "E": 62.95, "G": 73.77, "H": 21.99, "I": 51.42,
    "L": 90.19, "K": 57.44, "M": 22.43, "F": 38.56, "P": 52.03,
    "S": 71.20, "T": 58.41, "W": 13.30, "Y": 32.13, "V": 64.41,
}


def background_frequencies(kind: str) -> np.ndarray:
    """Letter background frequencies for Karlin statistics.

    ``"dna"`` → uniform over ACGT; ``"protein"`` → Robinson & Robinson over
    the 20 standard residues (ambiguity codes get zero weight, as in NCBI).
    """
    if kind == "dna":
        return np.full(4, 0.25)
    if kind == "protein":
        freqs = np.zeros(PROTEIN.size)
        for aa, w in _ROBINSON.items():
            freqs[PROTEIN.letters.index(aa)] = w
        return freqs / freqs.sum()
    raise ValueError(f"unknown alphabet kind {kind!r} (use 'dna' or 'protein')")
