"""Classic BLAST pairwise alignment rendering.

The tabular format carries coordinates and statistics; humans inspecting
individual matches want the traditional pairwise view::

    Query  1    ACGTACGTAC-GTACGT  16
                |||||| ||| ||||||
    Sbjct  101  ACGTACTTACAGTACGT  117

``render_pairwise`` realigns an HSP's ranges (the engine keeps HSPs lean;
the alignment path is recomputed on demand with the same gapped-extension
machinery, seeded at the range start) and renders blocks of configurable
width with 1-based coordinates, matching NCBI's layout conventions.
"""

from __future__ import annotations

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.seq import reverse_complement
from repro.blast.gapped import GappedAlignment, extend_gapped
from repro.blast.hsp import HSP
from repro.blast.matrices import BLOSUM62, nucleotide_matrix
from repro.blast.options import BlastOptions

__all__ = ["align_ranges", "render_pairwise"]


def align_ranges(
    q_codes: np.ndarray,
    s_codes: np.ndarray,
    matrix: np.ndarray,
    gap_open: int,
    gap_extend: int,
    band: int = 64,
) -> GappedAlignment | None:
    """Full alignment of two already-trimmed ranges (global-start both ends).

    Runs the gapped extension seeded at (0, 0) with a generous X-drop so the
    optimal path over the ranges is recovered along with its operations.
    """
    xdrop = 10.0 * max(abs(int(matrix.min())), int(matrix.max())) * max(
        q_codes.size, s_codes.size
    )
    return extend_gapped(
        q_codes, s_codes, 0, 0, matrix, gap_open, gap_extend, xdrop=xdrop, band=band
    )


def _midline_char(a: str, b: str, matrix: np.ndarray, alphabet) -> str:
    if a == b:
        return "|"
    score = matrix[alphabet.encode(a)[0], alphabet.encode(b)[0]]
    return "+" if score > 0 else " "


def render_pairwise(
    hsp: HSP,
    query_seq: str,
    subject_seq: str,
    options: BlastOptions | None = None,
    width: int = 60,
) -> str:
    """Render one HSP as NCBI-style pairwise alignment text.

    ``query_seq``/``subject_seq`` are the *full* plus-strand sequences the
    HSP refers to; minus-strand nucleotide HSPs are rendered on the query's
    reverse complement with descending subject coordinates, as BLAST does.
    Translated-search HSPs are not supported (their two sides live in
    different alphabets).
    """
    if hsp.frame != 0:
        raise ValueError("pairwise rendering supports untranslated HSPs only")
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    options = options or BlastOptions.blastn()
    if options.program == "blastn":
        alphabet = DNA
        matrix = nucleotide_matrix(options.reward, options.penalty)
    else:
        alphabet = PROTEIN
        matrix = BLOSUM62

    q_text = query_seq[hsp.q_start : hsp.q_end]
    s_text = subject_seq[hsp.s_start : hsp.s_end]
    if hsp.strand == -1:
        q_text = reverse_complement(q_text)

    alignment = align_ranges(
        alphabet.encode(q_text),
        alphabet.encode(s_text),
        matrix,
        options.gap_open,
        options.gap_extend,
        band=max(options.band_width, abs(len(q_text) - len(s_text)) + 8),
    )
    if alignment is None:
        raise ValueError("ranges do not produce a positive-scoring alignment")

    # Build the three display rows from the operation string.
    q_row: list[str] = []
    mid: list[str] = []
    s_row: list[str] = []
    qi = si = 0
    for op in alignment.ops:
        if op == "M":
            a, b = q_text[qi], s_text[si]
            q_row.append(a)
            s_row.append(b)
            mid.append(_midline_char(a, b, matrix, alphabet))
            qi += 1
            si += 1
        elif op == "I":  # query residue against a gap
            q_row.append(q_text[qi])
            s_row.append("-")
            mid.append(" ")
            qi += 1
        else:  # "D": gap in query
            q_row.append("-")
            s_row.append(s_text[si])
            mid.append(" ")
            si += 1

    header = (
        f" Score = {hsp.bit_score:.1f} bits ({hsp.score}), "
        f"Expect = {hsp.evalue:.2g}\n"
        f" Identities = {hsp.identities}/{hsp.align_len} ({hsp.pident:.0f}%), "
        f"Gaps = {hsp.gaps}/{hsp.align_len}\n"
        f" Strand = Plus/{'Plus' if hsp.strand == 1 else 'Minus'}\n"
    )

    # Coordinate bookkeeping (1-based inclusive; minus strand descends on
    # the query per BLAST convention for Plus/Minus presentation).
    if hsp.strand == 1:
        q_pos = hsp.q_start + 1
        q_step = 1
    else:
        q_pos = hsp.q_end
        q_step = -1
    s_pos = hsp.s_start + 1

    num_width = max(
        len(str(hsp.q_end)), len(str(hsp.s_end)), len(str(q_pos))
    )
    blocks: list[str] = []
    for off in range(0, len(q_row), width):
        q_chunk = "".join(q_row[off : off + width])
        m_chunk = "".join(mid[off : off + width])
        s_chunk = "".join(s_row[off : off + width])
        q_consumed = sum(1 for c in q_chunk if c != "-")
        s_consumed = sum(1 for c in s_chunk if c != "-")
        q_last = q_pos + q_step * (q_consumed - 1) if q_consumed else q_pos
        s_last = s_pos + s_consumed - 1 if s_consumed else s_pos
        blocks.append(
            f"Query  {q_pos:<{num_width}}  {q_chunk}  {q_last}\n"
            f"       {'':<{num_width}}  {m_chunk}\n"
            f"Sbjct  {s_pos:<{num_width}}  {s_chunk}  {s_last}\n"
        )
        if q_consumed:
            q_pos = q_last + q_step
        if s_consumed:
            s_pos = s_last + 1
    return header + "\n" + "\n".join(blocks)
