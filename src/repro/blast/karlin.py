"""Karlin-Altschul statistics: λ, K and H from a scoring system.

Local-alignment score statistics follow an extreme-value distribution whose
parameters derive from the score matrix and letter background frequencies
(Karlin & Altschul, PNAS 1990).  The expected number of alignments scoring
at least S between random sequences of lengths m and n is::

    E = K * m * n * exp(-lambda * S)

- ``lambda``: the unique positive solution of  Σ_s P(s)·e^{λs} = 1,
  where P(s) is the probability of score s for one aligned letter pair.
- ``H``: relative entropy of the scoring system, λ·Σ_s s·P(s)·e^{λs}.
- ``K``: computed for lattice score distributions via the convergent series
  of Karlin-Altschul theory (the same construction as NCBI's
  ``BlastKarlinLHtoK``):

      sigma = Σ_{k≥1} (1/k)·[ P(S_k ≥ 0) + E(e^{λ·S_k}; S_k < 0) ]
      K     = d·λ·e^{-2·sigma} / ( H·(1 − e^{-λ·d}) )

  where S_k is the k-step random walk of pair scores and d the lattice span
  (gcd of attainable scores).  The k-step distributions are obtained by
  iterated exact convolution.

Computed values are validated in the tests against NCBI's published numbers
(BLOSUM62: λ=0.3176, K=0.134; +1/−2: λ=1.33, K=0.621; +1/−3: λ=1.37,
K=0.711).

Gapped search statistics cannot be derived analytically; like NCBI, we carry
a table of simulation-derived constants for standard parameter sets and fall
back to ungapped values otherwise (conservative for E-values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.blast.matrices import BLOSUM62, background_frequencies, nucleotide_matrix

__all__ = ["KarlinParams", "karlin_params", "gapped_params", "score_distribution"]


@dataclass(frozen=True)
class KarlinParams:
    """The (λ, K, H) triple of a scoring system."""

    lam: float
    K: float
    H: float
    gapped: bool = False

    @property
    def log_k(self) -> float:
        return math.log(self.K)


def score_distribution(
    matrix: np.ndarray, freqs_row: np.ndarray, freqs_col: np.ndarray | None = None
) -> tuple[int, np.ndarray]:
    """Probability of each pair score.

    Returns ``(low, probs)`` where ``probs[i]`` is P(score == low + i).
    Rows/columns with zero background frequency (ambiguity codes) drop out.
    """
    if freqs_col is None:
        freqs_col = freqs_row
    n = min(matrix.shape[0], freqs_row.size)
    m = min(matrix.shape[1], freqs_col.size)
    sub = matrix[:n, :m]
    w = np.outer(freqs_row[:n], freqs_col[:m])
    w = w / w.sum()
    low, high = int(sub.min()), int(sub.max())
    probs = np.zeros(high - low + 1)
    np.add.at(probs, (sub - low).ravel(), w.ravel())
    return low, probs


def _solve_lambda(low: int, probs: np.ndarray) -> float:
    """Positive root of Σ P(s)·e^{λs} = 1 by bisection + Newton polishing."""
    scores = np.arange(low, low + probs.size, dtype=np.float64)
    mean = float((scores * probs).sum())
    if mean >= 0:
        raise ValueError(
            f"expected pair score must be negative for local statistics, got {mean:.4f}"
        )
    if probs[scores > 0].sum() <= 0:
        raise ValueError("a positive score must be attainable")

    def phi(lam: float) -> float:
        return float((probs * np.exp(lam * scores)).sum()) - 1.0

    lo, hi = 1e-9, 1.0
    while phi(hi) < 0:
        hi *= 2.0
        if hi > 1e4:  # pragma: no cover - defensive
            raise RuntimeError("lambda bracket failed")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if phi(mid) < 0:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-14:
            break
    return 0.5 * (lo + hi)


def _lattice_span(low: int, probs: np.ndarray) -> int:
    """gcd of all attainable scores (the lattice spacing d)."""
    d = 0
    for i, p in enumerate(probs):
        if p > 0:
            d = math.gcd(d, abs(low + i))
    return max(d, 1)


def _compute_k(low: int, probs: np.ndarray, lam: float, H: float, iterations: int = 80) -> float:
    """K via the convergent Karlin-Altschul series (iterated convolution)."""
    d = _lattice_span(low, probs)
    sigma = 0.0
    # Distribution of S_k, stored as (offset, array).
    dist = np.array([1.0])
    offset = 0  # S_0 == 0
    base = probs / probs.sum()
    for k in range(1, iterations + 1):
        dist = np.convolve(dist, base)
        offset += low
        scores = np.arange(offset, offset + dist.size, dtype=np.float64)
        neg = scores < 0
        term = float(dist[~neg].sum()) + float((dist[neg] * np.exp(lam * scores[neg])).sum())
        sigma += term / k
        if term / k < 1e-12:
            break
        # Trim numerical dust to keep convolutions short.
        mass = dist > 1e-18
        first, last = int(np.argmax(mass)), int(dist.size - np.argmax(mass[::-1]))
        dist = dist[first:last]
        offset += first
    K = d * lam * math.exp(-2.0 * sigma) / (H * (1.0 - math.exp(-lam * d)))
    return K


def _karlin_from_distribution(low: int, probs: np.ndarray) -> KarlinParams:
    lam = _solve_lambda(low, probs)
    scores = np.arange(low, low + probs.size, dtype=np.float64)
    H = lam * float((scores * probs * np.exp(lam * scores)).sum())
    K = _compute_k(low, probs, lam, H)
    return KarlinParams(lam=lam, K=K, H=H, gapped=False)


@lru_cache(maxsize=64)
def _cached_nucleotide(reward: int, penalty: int) -> KarlinParams:
    matrix = nucleotide_matrix(reward, penalty)
    low, probs = score_distribution(matrix, background_frequencies("dna"))
    return _karlin_from_distribution(low, probs)


@lru_cache(maxsize=8)
def _cached_protein() -> KarlinParams:
    low, probs = score_distribution(BLOSUM62, background_frequencies("protein"))
    return _karlin_from_distribution(low, probs)


def karlin_params(
    *,
    program: str,
    reward: int = 1,
    penalty: int = -2,
) -> KarlinParams:
    """Ungapped Karlin parameters for a program's scoring system.

    ``program`` is ``"blastn"`` (match/mismatch scores) or ``"blastp"``
    (BLOSUM62 with Robinson background frequencies).
    """
    if program == "blastn":
        return _cached_nucleotide(reward, penalty)
    if program == "blastp":
        return _cached_protein()
    raise ValueError(f"unknown program {program!r}")


#: Simulation-derived gapped constants for standard protein parameter sets
#: (NCBI blast_stat.c's BLOSUM62 table).  Key: (program, matrix, gap_open,
#: gap_extend).  blastn deliberately has no entries: NCBI's nucleotide
#: search reuses the *ungapped* Karlin parameters for gapped E-values, and
#: we follow it (the fallback path below).
_GAPPED_TABLE: dict[tuple, KarlinParams] = {
    ("blastp", "BLOSUM62", 11, 1): KarlinParams(lam=0.267, K=0.041, H=0.14, gapped=True),
    ("blastp", "BLOSUM62", 10, 1): KarlinParams(lam=0.243, K=0.024, H=0.10, gapped=True),
    ("blastp", "BLOSUM62", 12, 1): KarlinParams(lam=0.283, K=0.059, H=0.19, gapped=True),
}


@lru_cache(maxsize=64)
def gapped_params(
    *,
    program: str,
    reward: int = 1,
    penalty: int = -2,
    gap_open: int = 5,
    gap_extend: int = 2,
) -> KarlinParams:
    """Gapped Karlin parameters, cached per scoring system.

    Looks up the published simulation-derived table for standard settings and
    falls back to the ungapped values otherwise.  The fallback overstates λ
    slightly (gapped alignments are easier to attain by chance), making the
    reported E-values conservative — NCBI errors in the same direction when a
    parameter set is missing from its tables.
    """
    if program == "blastp":
        key = ("blastp", "BLOSUM62", gap_open, gap_extend)
    else:
        key = ("blastn", (reward, penalty), gap_open, gap_extend)
    found = _GAPPED_TABLE.get(key)
    if found is not None:
        return found
    ungapped = karlin_params(program=program, reward=reward, penalty=penalty)
    return KarlinParams(lam=ungapped.lam, K=ungapped.K, H=ungapped.H, gapped=True)
