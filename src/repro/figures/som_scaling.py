"""Figure 6: batch-SOM scaling, 81 920 × 256-d vectors on a 50×50 map."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import ranger
from repro.cluster.som_model import SomScalingModel, simulate_som_run

__all__ = ["fig6_som_scaling"]

_CORES = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class SomPoint:
    cores: int
    wall_minutes: float
    efficiency_vs_32: float


def fig6_som_scaling(
    cores_list=_CORES,
    block_rows: int = 40,
    epochs: int = 100,
    seed: int = 0,
) -> list[SomPoint]:
    """Wall-clock and relative efficiency per core count.

    Paper anchors: near-linear scaling; 96 % efficiency at 1024 cores
    relative to 32; 80-vector work units time identically.
    """
    model = SomScalingModel(block_rows=block_rows, epochs=epochs, seed=seed)
    base = simulate_som_run(ranger(cores_list[0]), model)
    points = []
    for cores in cores_list:
        r = simulate_som_run(ranger(cores), model)
        points.append(
            SomPoint(
                cores=cores,
                wall_minutes=r.makespan / 60.0,
                efficiency_vs_32=r.efficiency_vs(base),
            )
        )
    return points
