"""Figures 7-8: trained-map quality (real SOM training, no simulation).

Fig. 7 trains a map on random RGB vectors and checks the classic visual
test quantitatively: neighbouring neurons carry similar colours and the
U-matrix is smooth inside clusters.  Fig. 8 trains on high-dimensional
random vectors and checks for a "well-defined U-matrix" — structured
inter-neuron distances rather than noise.

Both run at the paper's 50×50 size by default but accept smaller grids so
the benchmark harness stays fast; shape metrics are size-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.som.batch import BatchSOM
from repro.som.codebook import SOMGrid
from repro.som.quality import quantization_error, topographic_error
from repro.som.umatrix import umatrix
from repro.util.rng import as_rng

__all__ = ["fig7_rgb_clustering", "fig8_highdim_umatrix"]


@dataclass(frozen=True)
class MapResult:
    grid: SOMGrid
    codebook: np.ndarray
    umatrix: np.ndarray
    quantization_error: float
    topographic_error: float
    #: mean weight distance of grid neighbours / mean distance of random
    #: unit pairs — << 1 for a topology-preserving map
    neighbor_contrast: float


def _neighbor_contrast(grid: SOMGrid, codebook: np.ndarray, seed: int = 0) -> float:
    u = umatrix(grid, codebook)
    rng = as_rng(seed)
    pairs = rng.integers(0, grid.n_units, size=(512, 2))
    random_d = np.linalg.norm(codebook[pairs[:, 0]] - codebook[pairs[:, 1]], axis=1)
    denom = float(random_d.mean())
    return float(u.mean()) / denom if denom > 0 else 0.0


def _train_and_measure(data: np.ndarray, grid: SOMGrid, epochs: int, seed: int) -> MapResult:
    som = BatchSOM(grid, dim=data.shape[1], seed=seed)
    codebook = som.train(data, epochs=epochs)
    return MapResult(
        grid=grid,
        codebook=codebook,
        umatrix=umatrix(grid, codebook),
        quantization_error=quantization_error(data, codebook),
        topographic_error=topographic_error(data, codebook, grid),
        neighbor_contrast=_neighbor_contrast(grid, codebook),
    )


def fig7_rgb_clustering(
    rows: int = 50,
    cols: int = 50,
    n_vectors: int = 100,
    epochs: int = 30,
    seed: int = 0,
) -> MapResult:
    """Fig. 7: a 50×50 SOM trained with 100 random RGB feature vectors."""
    rng = as_rng(seed)
    data = rng.random((n_vectors, 3))
    return _train_and_measure(data, SOMGrid(rows, cols), epochs, seed)


def fig8_highdim_umatrix(
    rows: int = 50,
    cols: int = 50,
    n_vectors: int = 10_000,
    dim: int = 500,
    epochs: int = 10,
    seed: int = 0,
) -> MapResult:
    """Fig. 8: U-matrix of a 50×50 SOM on 10 000 random 500-d vectors."""
    rng = as_rng(seed)
    data = rng.random((n_vectors, dim))
    return _train_and_measure(data, SOMGrid(rows, cols), epochs, seed)
