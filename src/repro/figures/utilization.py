"""Figure 5: useful CPU utilisation over a 1024-core protein BLAST run."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.blast_model import protein_workload
from repro.cluster.dispatch import simulate_blast_run
from repro.cluster.machine import ranger
from repro.cluster.trace import utilization_curve

__all__ = ["fig5_utilization"]


@dataclass(frozen=True)
class UtilizationTrace:
    minutes: np.ndarray
    utilization: np.ndarray

    @property
    def plateau(self) -> float:
        """Mean utilisation over the middle half of the run."""
        n = len(self.utilization)
        return float(self.utilization[n // 4 : 3 * n // 4].mean())

    @property
    def taper_start_fraction(self) -> float:
        """When (fraction of the run) utilisation first drops below 80 % of
        the plateau — the Fig. 5 'tapering off at the end'."""
        threshold = 0.8 * self.plateau
        n = len(self.utilization)
        for i in range(n // 2, n):
            if self.utilization[i] < threshold:
                return i / n
        return 1.0


def fig5_utilization(cores: int = 1024, n_bins: int = 100, seed: int = 0) -> UtilizationTrace:
    """Per-time-bin mean useful utilisation of the blastp run."""
    result = simulate_blast_run(ranger(cores), protein_workload(seed=seed))
    seconds, util = utilization_curve(result, n_bins=n_bins)
    return UtilizationTrace(minutes=seconds / 60.0, utilization=util)
