"""Redraw the paper's figures as SVG files.

``python -m repro.figures.plots OUTDIR`` writes fig3.svg ... fig8 artifacts:
the scaling charts from the Ranger model (Figs. 3-6, same axes as the
paper — log-log wall-clock, core-minutes per query, utilisation trace, SOM
scaling) and the map images for Figs. 7-8 (PPM/PGM via the SOM exporters).
"""

from __future__ import annotations

import os
import sys

from repro.figures.svg import LineChart, Series

__all__ = ["plot_all"]


def plot_fig3(out_dir: str) -> str:
    from repro.figures.blast_scaling import fig3_blast_scaling

    chart = LineChart(
        title="Fig. 3 — MR-MPI BLAST scaling (blastn, Ranger model)",
        x_label="total cores in MPI job",
        y_label="wall clock (minutes)",
        x_log=True,
        y_log=True,
    )
    for name, pts in fig3_blast_scaling().items():
        chart.add(Series(name, [p.cores for p in pts], [p.wall_minutes for p in pts]))
    return chart.write(os.path.join(out_dir, "fig3_blast_scaling.svg"))


def plot_fig4(out_dir: str) -> str:
    from repro.figures.blast_scaling import fig4_block_size

    chart = LineChart(
        title="Fig. 4 — core-minutes per query (80K queries)",
        x_label="total cores in MPI job",
        y_label="core-minutes per query",
        x_log=True,
    )
    for name, pts in fig4_block_size().items():
        chart.add(
            Series(name, [p.cores for p in pts], [p.core_minutes_per_query for p in pts])
        )
    return chart.write(os.path.join(out_dir, "fig4_block_size.svg"))


def plot_fig5(out_dir: str) -> str:
    from repro.figures.utilization import fig5_utilization

    trace = fig5_utilization()
    chart = LineChart(
        title="Fig. 5 — useful CPU utilisation (1024-core blastp)",
        x_label="wall clock (minutes)",
        y_label="utilisation",
    )
    chart.add(
        Series(
            "useful CPU / core",
            [float(m) for m in trace.minutes],
            [float(u) for u in trace.utilization],
            marker="circle",
        )
    )
    return chart.write(os.path.join(out_dir, "fig5_utilization.svg"))


def plot_fig6(out_dir: str) -> str:
    from repro.figures.som_scaling import fig6_som_scaling

    pts = fig6_som_scaling()
    chart = LineChart(
        title="Fig. 6 — MR-MPI batch SOM scaling (81,920 x 256-d, 50x50 map)",
        x_label="total cores in MPI job",
        y_label="wall clock (minutes)",
        x_log=True,
        y_log=True,
    )
    chart.add(Series("batch SOM", [p.cores for p in pts], [p.wall_minutes for p in pts]))
    return chart.write(os.path.join(out_dir, "fig6_som_scaling.svg"))


def plot_fig7(out_dir: str, rows: int = 30, cols: int = 30, epochs: int = 25) -> list[str]:
    from repro.figures.som_maps import fig7_rgb_clustering
    from repro.som.export import codebook_to_rgb, write_pgm, write_ppm

    result = fig7_rgb_clustering(rows=rows, cols=cols, epochs=epochs)
    ppm = write_ppm(
        codebook_to_rgb(result.grid, result.codebook, scale=6),
        os.path.join(out_dir, "fig7_colors.ppm"),
    )
    pgm = write_pgm(result.umatrix, os.path.join(out_dir, "fig7_umatrix.pgm"), invert=True)
    return [ppm, pgm]


def plot_fig8(out_dir: str, rows: int = 30, cols: int = 30,
              n_vectors: int = 2000, dim: int = 500, epochs: int = 8) -> list[str]:
    from repro.figures.som_maps import fig8_highdim_umatrix
    from repro.som.export import write_pgm

    result = fig8_highdim_umatrix(rows=rows, cols=cols, n_vectors=n_vectors,
                                  dim=dim, epochs=epochs)
    return [write_pgm(result.umatrix, os.path.join(out_dir, "fig8_umatrix.pgm"),
                      invert=True)]


def plot_all(out_dir: str) -> list[str]:
    """Render every figure artifact; returns the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    written = [
        plot_fig3(out_dir),
        plot_fig4(out_dir),
        plot_fig5(out_dir),
        plot_fig6(out_dir),
    ]
    written.extend(plot_fig7(out_dir))
    written.extend(plot_fig8(out_dir))
    return written


if __name__ == "__main__":  # pragma: no cover
    target = sys.argv[1] if len(sys.argv) > 1 else "figure_plots"
    for path in plot_all(target):
        print(path)
