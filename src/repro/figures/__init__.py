"""One entry point per paper figure/result.

Each ``fig*`` function regenerates the data series behind the corresponding
figure of the paper (values returned, not plotted — the benchmark harness
prints them and EXPERIMENTS.md records paper-vs-measured).  Scaling figures
(3-6) run on the calibrated Ranger model; map-quality figures (7-8) run
*real* SOM training.
"""

from repro.figures.blast_scaling import (
    fig3_blast_scaling,
    fig4_block_size,
    protein_scaling_result,
)
from repro.figures.utilization import fig5_utilization
from repro.figures.som_scaling import fig6_som_scaling
from repro.figures.som_maps import fig7_rgb_clustering, fig8_highdim_umatrix
from repro.figures.comparisons import ablation_scheduling, htc_comparison
from repro.figures.report import format_table, write_experiments_report

__all__ = [
    "fig3_blast_scaling",
    "fig4_block_size",
    "protein_scaling_result",
    "fig5_utilization",
    "fig6_som_scaling",
    "fig7_rgb_clustering",
    "fig8_highdim_umatrix",
    "htc_comparison",
    "ablation_scheduling",
    "format_table",
    "write_experiments_report",
]

#: Core counts used throughout the paper's charts (whole 16-core nodes).
CORE_COUNTS = (32, 64, 128, 256, 512, 1024)
