"""CSV export of every figure's data series (for external plotting).

``python -m repro.figures.export OUTDIR`` writes one CSV per figure with
the exact series the benchmark harness prints, so the paper's charts can be
re-plotted with any tool without rerunning the models.
"""

from __future__ import annotations

import csv
import os
import sys

__all__ = ["export_all"]


def _write(path: str, headers: list[str], rows: list[list]) -> None:
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def export_all(out_dir: str) -> list[str]:
    """Generate every figure and write its CSV; returns the paths written."""
    from repro.figures.blast_scaling import (
        fig3_blast_scaling,
        fig4_block_size,
        protein_scaling_result,
    )
    from repro.figures.comparisons import ablation_scheduling, htc_comparison
    from repro.figures.som_scaling import fig6_som_scaling
    from repro.figures.utilization import fig5_utilization

    os.makedirs(out_dir, exist_ok=True)
    written: list[str] = []

    def emit(name: str, headers: list[str], rows: list[list]) -> None:
        path = os.path.join(out_dir, name)
        _write(path, headers, rows)
        written.append(path)

    fig3 = fig3_blast_scaling()
    emit(
        "fig3_blast_scaling.csv",
        ["series", "cores", "wall_minutes"],
        [
            [name, p.cores, round(p.wall_minutes, 3)]
            for name, pts in fig3.items()
            for p in pts
        ],
    )

    fig4 = fig4_block_size()
    emit(
        "fig4_block_size.csv",
        ["series", "cores", "core_minutes_per_query", "cache_hit_rate"],
        [
            [name, p.cores, f"{p.core_minutes_per_query:.6g}", round(p.cache_hit_rate, 4)]
            for name, pts in fig4.items()
            for p in pts
        ],
    )

    trace = fig5_utilization()
    emit(
        "fig5_utilization.csv",
        ["minute", "utilization"],
        [[round(float(m), 3), round(float(u), 4)] for m, u in zip(trace.minutes, trace.utilization)],
    )

    prot = protein_scaling_result()
    emit(
        "protein_scaling.csv",
        ["metric", "value"],
        [
            ["wall_512_minutes", round(prot.wall_512_minutes, 2)],
            ["wall_1024_minutes", round(prot.wall_1024_minutes, 2)],
            ["core_min_per_query_ratio", round(prot.core_min_per_query_ratio, 4)],
        ],
    )

    fig6 = fig6_som_scaling()
    emit(
        "fig6_som_scaling.csv",
        ["cores", "wall_minutes", "efficiency_vs_32"],
        [[p.cores, round(p.wall_minutes, 4), round(p.efficiency_vs_32, 4)] for p in fig6],
    )

    htc = htc_comparison()
    emit(
        "htc_comparison.csv",
        ["metric", "value"],
        [
            ["mrmpi_wall_minutes", round(htc.mrmpi_wall_minutes, 2)],
            ["htc_longest_job_minutes", round(htc.htc_longest_job_minutes, 2)],
            ["wall_ratio", round(htc.wall_ratio, 4)],
        ],
    )

    abl = ablation_scheduling()
    emit(
        "ablation_scheduling.csv",
        ["cores", "scheduler", "wall_minutes", "total_reloads", "io_core_hours"],
        [
            [a.cores, a.scheduler, round(a.wall_minutes, 2), a.total_reloads,
             round(a.io_core_hours, 2)]
            for a in abl
        ],
    )
    return written


if __name__ == "__main__":  # pragma: no cover
    target = sys.argv[1] if len(sys.argv) > 1 else "figure_data"
    for path in export_all(target):
        print(path)
