"""Minimal SVG chart renderer (no plotting dependencies).

Enough of a charting kit to redraw the paper's figures: linear and log
axes, line+marker series, legends, axis titles.  Output is plain SVG text,
so the regenerated Figs. 3-6 are actual image files viewable in any
browser, produced offline by :mod:`repro.figures.plots`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "LineChart"]

_COLORS = ["#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c", "#0891b2"]
_MARKERS = ["circle", "square", "diamond", "triangle"]


@dataclass
class Series:
    """One plotted line: points plus styling."""

    name: str
    x: Sequence[float]
    y: Sequence[float]
    color: str | None = None
    marker: str | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")
        if not self.x:
            raise ValueError(f"series {self.name!r} has no points")


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if (hi - lo) / step <= n:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * step:
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> list[float]:
    ticks = []
    e = math.floor(math.log10(lo))
    while 10**e <= hi * 1.0001:
        if 10**e >= lo * 0.9999:
            ticks.append(10**e)
        e += 1
    if len(ticks) < 2:  # degenerate span: fall back to linear ticks
        return _nice_ticks(lo, hi, 4)
    return ticks


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 and float(v).is_integer():
        return f"{int(v)}"
    if abs(v) >= 1:
        return f"{v:g}"
    return f"{v:g}"


@dataclass
class LineChart:
    """A single-panel chart with optional log axes."""

    title: str
    x_label: str
    y_label: str
    width: int = 640
    height: int = 420
    x_log: bool = False
    y_log: bool = False
    series: list[Series] = field(default_factory=list)
    margin_left: int = 72
    margin_bottom: int = 56
    margin_top: int = 44
    margin_right: int = 160

    def add(self, series: Series) -> "LineChart":
        idx = len(self.series)
        if series.color is None:
            series.color = _COLORS[idx % len(_COLORS)]
        if series.marker is None:
            series.marker = _MARKERS[idx % len(_MARKERS)]
        if self.x_log and any(v <= 0 for v in series.x):
            raise ValueError("log x-axis requires positive x values")
        if self.y_log and any(v <= 0 for v in series.y):
            raise ValueError("log y-axis requires positive y values")
        self.series.append(series)
        return self

    # ----------------------------------------------------------- projection

    def _bounds(self) -> tuple[float, float, float, float]:
        if not self.series:
            raise ValueError("chart has no series")
        xs = [v for s in self.series for v in s.x]
        ys = [v for s in self.series for v in s.y]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if self.y_log:
            y_lo, y_hi = y_lo / 1.25, y_hi * 1.25
        else:
            pad = 0.08 * (y_hi - y_lo or 1.0)
            y_lo, y_hi = y_lo - pad, y_hi + pad
            if min(ys) >= 0:
                y_lo = max(y_lo, 0.0)
        if self.x_log:
            x_lo, x_hi = x_lo / 1.1, x_hi * 1.1
        return x_lo, x_hi, y_lo, y_hi

    def _proj(self, x_lo, x_hi, y_lo, y_hi):
        plot_w = self.width - self.margin_left - self.margin_right
        plot_h = self.height - self.margin_top - self.margin_bottom

        def tx(x: float) -> float:
            if self.x_log:
                f = (math.log10(x) - math.log10(x_lo)) / (
                    math.log10(x_hi) - math.log10(x_lo)
                )
            else:
                f = (x - x_lo) / (x_hi - x_lo or 1.0)
            return self.margin_left + f * plot_w

        def ty(y: float) -> float:
            if self.y_log:
                f = (math.log10(y) - math.log10(y_lo)) / (
                    math.log10(y_hi) - math.log10(y_lo)
                )
            else:
                f = (y - y_lo) / (y_hi - y_lo or 1.0)
            return self.height - self.margin_bottom - f * plot_h

        return tx, ty

    # -------------------------------------------------------------- markers

    @staticmethod
    def _marker_svg(kind: str, cx: float, cy: float, color: str, r: float = 4.0) -> str:
        if kind == "circle":
            return f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r}" fill="{color}"/>'
        if kind == "square":
            return (
                f'<rect x="{cx - r:.1f}" y="{cy - r:.1f}" width="{2 * r}" '
                f'height="{2 * r}" fill="{color}"/>'
            )
        if kind == "diamond":
            pts = f"{cx},{cy - r * 1.2} {cx + r * 1.2},{cy} {cx},{cy + r * 1.2} {cx - r * 1.2},{cy}"
            return f'<polygon points="{pts}" fill="{color}"/>'
        if kind == "triangle":
            pts = f"{cx},{cy - r * 1.2} {cx + r * 1.2},{cy + r} {cx - r * 1.2},{cy + r}"
            return f'<polygon points="{pts}" fill="{color}"/>'
        raise ValueError(f"unknown marker {kind!r}")

    # -------------------------------------------------------------- rendering

    def render(self) -> str:
        """The chart as an SVG document string."""
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        tx, ty = self._proj(x_lo, x_hi, y_lo, y_hi)
        left = self.margin_left
        right = self.width - self.margin_right
        top = self.margin_top
        bottom = self.height - self.margin_bottom

        out: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{(left + right) / 2}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_esc(self.title)}</text>',
        ]

        # Gridlines + ticks.
        x_ticks = _log_ticks(x_lo, x_hi) if self.x_log else _nice_ticks(x_lo, x_hi)
        y_ticks = _log_ticks(y_lo, y_hi) if self.y_log else _nice_ticks(y_lo, y_hi)
        for xt in x_ticks:
            px = tx(xt)
            out.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{bottom}" '
                'stroke="#e5e7eb" stroke-width="1"/>'
            )
            out.append(
                f'<text x="{px:.1f}" y="{bottom + 18}" text-anchor="middle" '
                f'font-size="11">{_fmt(xt)}</text>'
            )
        for yt in y_ticks:
            py = ty(yt)
            out.append(
                f'<line x1="{left}" y1="{py:.1f}" x2="{right}" y2="{py:.1f}" '
                'stroke="#e5e7eb" stroke-width="1"/>'
            )
            out.append(
                f'<text x="{left - 8}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11">{_fmt(yt)}</text>'
            )

        # Axes frame.
        out.append(
            f'<rect x="{left}" y="{top}" width="{right - left}" '
            f'height="{bottom - top}" fill="none" stroke="#374151" stroke-width="1.2"/>'
        )
        out.append(
            f'<text x="{(left + right) / 2}" y="{self.height - 12}" '
            f'text-anchor="middle" font-size="12">{_esc(self.x_label)}</text>'
        )
        out.append(
            f'<text x="18" y="{(top + bottom) / 2}" text-anchor="middle" font-size="12" '
            f'transform="rotate(-90 18 {(top + bottom) / 2})">{_esc(self.y_label)}</text>'
        )

        # Series.
        for s in self.series:
            pts = " ".join(f"{tx(x):.1f},{ty(y):.1f}" for x, y in zip(s.x, s.y))
            out.append(
                f'<polyline points="{pts}" fill="none" stroke="{s.color}" '
                'stroke-width="2"/>'
            )
            for x, y in zip(s.x, s.y):
                out.append(self._marker_svg(s.marker, tx(x), ty(y), s.color))

        # Legend.
        lx = right + 12
        for i, s in enumerate(self.series):
            ly = top + 10 + i * 20
            out.append(self._marker_svg(s.marker, lx + 6, ly, s.color))
            out.append(
                f'<text x="{lx + 18}" y="{ly + 4}" font-size="11">{_esc(s.name)}</text>'
            )

        out.append("</svg>")
        return "\n".join(out)

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())
        return path
