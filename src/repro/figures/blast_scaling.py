"""Figures 3-4 and the in-text protein scaling numbers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.blast_model import nucleotide_workload, protein_workload
from repro.cluster.dispatch import SimResult, simulate_blast_run
from repro.cluster.machine import ranger

__all__ = ["fig3_blast_scaling", "fig4_block_size", "protein_scaling_result"]

_CORES = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class ScalingPoint:
    cores: int
    wall_minutes: float
    core_minutes_per_query: float
    cache_hit_rate: float


def _run_series(workload, cores_list=_CORES, scheduler="master_worker"):
    points = []
    for cores in cores_list:
        r = simulate_blast_run(ranger(cores), workload, scheduler=scheduler)
        hits = r.cache_hits + r.cache_misses
        points.append(
            ScalingPoint(
                cores=cores,
                wall_minutes=r.makespan / 60.0,
                core_minutes_per_query=r.core_minutes_per_query,
                cache_hit_rate=r.cache_hits / hits if hits else 0.0,
            )
        )
    return points


def fig3_blast_scaling(cores_list=_CORES, seed: int = 0) -> dict[str, list[ScalingPoint]]:
    """Fig. 3: wall-clock vs cores for the four query-set series.

    Series names match the chart legend: total query counts with 1000-seq
    blocks, plus the 80 K set in 2000-seq blocks (the paper's blue squares).
    """
    return {
        "12K": _run_series(nucleotide_workload(12_000, seed=seed), cores_list),
        "40K": _run_series(nucleotide_workload(40_000, seed=seed), cores_list),
        "80K": _run_series(nucleotide_workload(80_000, seed=seed), cores_list),
        "80K/2000-blocks": _run_series(
            nucleotide_workload(80_000, queries_per_block=2000, seed=seed), cores_list
        ),
    }


def fig4_block_size(cores_list=_CORES, seed: int = 0) -> dict[str, list[ScalingPoint]]:
    """Fig. 4: core-minutes per query, 80×1000-seq vs 40×2000-seq blocks."""
    return {
        "80 blocks x 1000": _run_series(nucleotide_workload(80_000, seed=seed), cores_list),
        "40 blocks x 2000": _run_series(
            nucleotide_workload(80_000, queries_per_block=2000, seed=seed), cores_list
        ),
    }


@dataclass(frozen=True)
class ProteinScaling:
    """The §IV.A in-text numbers for the blastp run."""

    wall_512_minutes: float
    wall_1024_minutes: float
    core_min_per_query_ratio: float  # 1024-core vs 512-core
    result_1024: SimResult

    @property
    def extra_cost_percent(self) -> float:
        return (self.core_min_per_query_ratio - 1.0) * 100.0


def protein_scaling_result(seed: int = 0) -> ProteinScaling:
    """Paper anchors: 294 min wall at 1024 cores; +6 % core·min/query vs 512."""
    wl = protein_workload(seed=seed)
    r512 = simulate_blast_run(ranger(512), wl)
    r1024 = simulate_blast_run(ranger(1024), wl)
    return ProteinScaling(
        wall_512_minutes=r512.makespan / 60.0,
        wall_1024_minutes=r1024.makespan / 60.0,
        core_min_per_query_ratio=r1024.core_minutes_per_query / r512.core_minutes_per_query,
        result_1024=r1024,
    )
