"""Table formatting and the EXPERIMENTS.md generator.

``write_experiments_report`` regenerates every figure's data and writes the
paper-vs-measured record.  It is callable directly::

    python -m repro.figures.report [output.md]

(the committed EXPERIMENTS.md is its output plus the functional parity
numbers recorded from the test suite).
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence

__all__ = ["format_table", "write_experiments_report"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Markdown-ish fixed-width table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    lines = [fmt(headers), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _f(x: float, nd: int = 2) -> str:
    return f"{x:.{nd}f}"


def write_experiments_report(path: str | None = None) -> str:
    """Run every figure generator and render the report text."""
    from repro.figures.blast_scaling import (
        fig3_blast_scaling,
        fig4_block_size,
        protein_scaling_result,
    )
    from repro.figures.comparisons import ablation_scheduling, htc_comparison
    from repro.figures.som_scaling import fig6_som_scaling
    from repro.figures.utilization import fig5_utilization

    sections: list[str] = []
    sections.append("# EXPERIMENTS — paper vs. measured\n")
    sections.append(
        "All scaling numbers below come from the calibrated Ranger model "
        "(see DESIGN.md for the substitution rationale); map-quality numbers "
        "come from real SOM training.  Regenerate with "
        "`python -m repro.figures.report`.\n"
    )

    fig3 = fig3_blast_scaling()
    cores = [p.cores for p in next(iter(fig3.values()))]
    rows = []
    for name, pts in fig3.items():
        rows.append([name] + [_f(p.wall_minutes, 1) for p in pts])
    sections.append("## Figure 3 — MR-MPI BLAST wall-clock minutes vs cores\n")
    sections.append(format_table(["series \\ cores"] + [str(c) for c in cores], rows))
    sections.append(
        "\nPaper's qualitative claims reproduced: straight-ish log-log lines; "
        "large core counts only pay off for the large query sets (the 12K "
        "series flattens beyond 256 cores).\n"
    )

    fig4 = fig4_block_size()
    rows = []
    for name, pts in fig4.items():
        rows.append([name] + [_f(p.core_minutes_per_query * 1000, 3) for p in pts])
    sections.append("## Figure 4 — core-minutes per 1000 queries (80K set)\n")
    sections.append(format_table(["series \\ cores"] + [str(c) for c in cores], rows))
    p80 = fig4["80 blocks x 1000"]
    eff128 = p80[0].core_minutes_per_query / p80[2].core_minutes_per_query
    eff1024 = p80[0].core_minutes_per_query / p80[5].core_minutes_per_query
    sections.append(
        f"\n- efficiency at 128 vs 32 cores: paper 167% -> measured {eff128 * 100:.0f}%"
        f" (cache regime change: the 109 GB DB fits the combined page cache"
        f" from 128 cores on).\n"
        f"- relative efficiency at 1024 vs 32 cores: paper 95% -> measured"
        f" {eff1024 * 100:.0f}%.\n"
        f"- crossover reproduced: 2000-seq blocks win below ~128 cores"
        f" (fewer DB loads per query), 1000-seq blocks win above (better"
        f" load balancing).\n"
    )

    fig5 = fig5_utilization()
    sections.append("## Figure 5 — useful CPU utilisation, 1024-core blastp run\n")
    decimated = list(zip(fig5.minutes[::10], fig5.utilization[::10]))
    sections.append(
        format_table(["minute", "utilisation"], [[_f(m, 1), _f(u, 3)] for m, u in decimated])
    )
    sections.append(
        f"\nPlateau {fig5.plateau:.2f} (paper: high, close to 1.0); taper begins at "
        f"{fig5.taper_start_fraction * 100:.0f}% of the run (paper: 'tapering off at "
        "the end ... due to cores idling without more workloads').\n"
    )

    prot = protein_scaling_result()
    sections.append("## In-text §IV.A — protein BLAST scaling\n")
    sections.append(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["wall clock @1024 cores (min)", "294", _f(prot.wall_1024_minutes, 0)],
                ["extra core-min/query, 1024 vs 512", "+6%", f"+{prot.extra_cost_percent:.0f}%"],
            ],
        )
    )

    fig6 = fig6_som_scaling()
    sections.append("\n## Figure 6 — MR-MPI batch SOM scaling\n")
    sections.append(
        format_table(
            ["cores", "wall minutes", "efficiency vs 32"],
            [[p.cores, _f(p.wall_minutes, 2), _f(p.efficiency_vs_32, 3)] for p in fig6],
        )
    )
    sections.append(
        f"\nPaper: excellent linear scaling, 96% efficiency at 1024 cores -> measured "
        f"{fig6[-1].efficiency_vs_32 * 100:.0f}%.\n"
    )

    htc = htc_comparison()
    sections.append("## In-text §IV.A — HTC (VICS) workflow comparison\n")
    sections.append(
        format_table(
            ["metric", "paper", "measured"],
            [
                [
                    "longest HTC job vs 1024-core MR-MPI wall",
                    "about the same",
                    f"ratio {htc.wall_ratio:.2f}",
                ],
                ["HTC total core-hours", "-", _f(htc.htc_total_core_hours, 0)],
                ["MR-MPI total core-hours", "-", _f(htc.mrmpi_total_core_hours, 0)],
            ],
        )
    )

    abl = ablation_scheduling()
    sections.append("\n## Ablation — §V scheduling improvements (not in paper's charts)\n")
    sections.append(
        format_table(
            ["cores", "scheduler", "wall minutes", "DB reloads", "I/O core-hours"],
            [
                [a.cores, a.scheduler, _f(a.wall_minutes, 1), a.total_reloads, _f(a.io_core_hours, 1)]
                for a in abl
            ],
        )
    )

    text = "\n".join(sections) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    out = sys.argv[1] if len(sys.argv) > 1 else None
    report = write_experiments_report(out)
    if out is None:
        print(report)
