"""The HTC comparison (§IV.A) and the scheduling ablation (§V future work)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.blast_model import nucleotide_workload, protein_workload
from repro.cluster.dispatch import simulate_blast_run
from repro.cluster.machine import ranger

__all__ = ["htc_comparison", "ablation_scheduling"]


@dataclass(frozen=True)
class HtcComparison:
    """MR-MPI on Ranger vs the VICS matrix-split workflow on the HTC cluster.

    The paper's observation: "the user CPU utilisation was similar ... The
    longest VICS job took about the same wall clock time as our run at 1024
    cores."  The HTC side is modelled as 960 independent serial jobs on
    2-years-newer hardware (the paper notes JCVI's machines were newer, so
    per-core speed gets a modest factor).
    """

    mrmpi_wall_minutes: float
    htc_longest_job_minutes: float
    htc_total_core_hours: float
    mrmpi_total_core_hours: float

    @property
    def wall_ratio(self) -> float:
        return self.htc_longest_job_minutes / self.mrmpi_wall_minutes


def htc_comparison(
    n_htc_jobs: int = 960,
    htc_speed_factor: float = 1.35,
    seed: int = 0,
) -> HtcComparison:
    """Compare the 1024-core MR-MPI protein run with the HTC workflow."""
    wl = protein_workload(seed=seed)
    mrmpi = simulate_blast_run(ranger(1024), wl)

    # HTC decomposition: the same total compute split over n_htc_jobs serial
    # jobs; job time = its share of compute / the newer cores' speed.  The
    # longest job dominates the workflow makespan (merge jobs are minor).
    unit_times = [
        wl.compute_seconds(b, p)
        for b in range(wl.n_blocks)
        for p in range(wl.n_partitions)
    ]
    # Round-robin the units into jobs, preserving the heavy tail.
    jobs = [0.0] * n_htc_jobs
    for i, t in enumerate(unit_times):
        jobs[i % n_htc_jobs] += t / htc_speed_factor
    longest = max(jobs)
    return HtcComparison(
        mrmpi_wall_minutes=mrmpi.makespan / 60.0,
        htc_longest_job_minutes=longest / 60.0,
        htc_total_core_hours=sum(jobs) / 3600.0,
        mrmpi_total_core_hours=mrmpi.core_seconds / 3600.0,
    )


@dataclass(frozen=True)
class AblationPoint:
    cores: int
    scheduler: str
    wall_minutes: float
    total_reloads: int
    io_core_hours: float


def ablation_scheduling(
    n_queries: int = 40_000,
    cores_list=(64, 256, 1024),
    seed: int = 0,
    include_glidein: bool = True,
) -> list[AblationPoint]:
    """§V ablation: FIFO master/worker vs location-aware vs static scatter
    (plus the introduction's glide-in execution path).

    Quantifies the paper's announced improvement ("distribute the work unit
    tuples to those ranks that have already been processing the same DB
    partitions"), the mpiBLAST-style static contrast, and the external
    pilot-job alternative the paper argues against.
    """
    from repro.cluster.glidein import simulate_glidein_run

    wl = nucleotide_workload(n_queries, seed=seed)
    out = []
    for cores in cores_list:
        for scheduler in ("master_worker", "affinity", "static"):
            r = simulate_blast_run(ranger(cores), wl, scheduler=scheduler)
            out.append(
                AblationPoint(
                    cores=cores,
                    scheduler=scheduler,
                    wall_minutes=r.makespan / 60.0,
                    total_reloads=r.total_reloads,
                    io_core_hours=r.total_io_seconds / 3600.0,
                )
            )
        if include_glidein:
            g = simulate_glidein_run(ranger(cores), wl)
            out.append(
                AblationPoint(
                    cores=cores,
                    scheduler="glidein",
                    wall_minutes=g.makespan / 60.0,
                    total_reloads=g.total_reloads,
                    io_core_hours=g.total_io_seconds / 3600.0,
                )
            )
    return out
