"""Event loop, events and generator-based processes.

Scheduling is strictly deterministic: events fire in (time, sequence) order
where the sequence number is assigned at schedule time, so identical inputs
replay identical traces — the property the cluster-model tests assert.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional

__all__ = ["Environment", "Event", "Process", "Interrupt", "AllOf", "AnyOf"]


class Interrupt(Exception):
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.env._schedule(self, delay=0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.env._schedule(self, delay=0.0)
        return self


class _Timeout(Event):
    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        super().__init__(env)
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self._triggered = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A running generator; completes (as an event) when the generator returns."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, env: "Environment", gen: Generator) -> None:
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        bootstrap = Event(env)
        bootstrap._triggered = True
        bootstrap.callbacks.append(self._resume)
        env._schedule(bootstrap, delay=0.0)

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process the next time the scheduler runs."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None and not target._triggered:
            # Detach from the event we were waiting on; deliver Interrupt.
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        wake = Event(self.env)
        wake._triggered = True
        wake._ok = False
        wake._value = Interrupt(cause)
        wake.callbacks.append(self._resume)
        self.env._schedule(wake, delay=0.0)

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                nxt = self._gen.send(trigger._value)
            else:
                nxt = self._gen.throw(trigger._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt:  # process chose not to handle the interrupt
            if not self._triggered:
                self.succeed(None)
            return
        if not isinstance(nxt, Event):
            raise TypeError(f"process yielded {type(nxt).__name__}, expected Event")
        self._waiting_on = nxt
        if nxt._triggered and nxt._scheduled:
            nxt.callbacks.append(self._resume)
        elif nxt._triggered:
            # Already processed event (fired in the past): resume immediately.
            wake = Event(self.env)
            wake._triggered = True
            wake._ok = nxt._ok
            wake._value = nxt._value
            wake.callbacks.append(self._resume)
            self.env._schedule(wake, delay=0.0)
        else:
            nxt.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when all given events have fired; value = list of their values.

    ``yield AllOf(env, [proc_a, proc_b])`` is the join/barrier idiom for
    processes waiting on several concurrent activities.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, env: "Environment", events: list) -> None:
        super().__init__(env)
        events = list(events)
        if not events:
            raise ValueError("AllOf requires at least one event")
        self._pending = 0
        self._values: list = [None] * len(events)
        for i, ev in enumerate(events):
            if not isinstance(ev, Event):
                raise TypeError(f"AllOf item {i} is {type(ev).__name__}, expected Event")
            if ev._triggered and not ev._scheduled:
                self._values[i] = ev._value
                continue
            self._pending += 1
            ev.callbacks.append(self._make_cb(i))
        if self._pending == 0:
            self.succeed(self._values)

    def _make_cb(self, index: int):
        def cb(ev: Event) -> None:
            self._values[index] = ev._value
            self._pending -= 1
            if self._pending == 0 and not self._triggered:
                self.succeed(self._values)

        return cb


class AnyOf(Event):
    """Fires when the first of the given events fires; value = (index, value)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list) -> None:
        super().__init__(env)
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(events):
            if not isinstance(ev, Event):
                raise TypeError(f"AnyOf item {i} is {type(ev).__name__}, expected Event")
            if ev._triggered and not ev._scheduled:
                self.succeed((i, ev._value))
                return
            ev.callbacks.append(self._make_cb(i))

    def _make_cb(self, index: int):
        def cb(ev: Event) -> None:
            if not self._triggered:
                self.succeed((index, ev._value))

        return cb


class Environment:
    """The clock + event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()

    def _schedule(self, event: Event, delay: float) -> None:
        event._scheduled = True
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), event))

    def timeout(self, delay: float, value: Any = None) -> Event:
        return _Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains (or the time limit)."""
        while self._queue:
            t, _seq, event = self._queue[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = t
            event._scheduled = False
            callbacks, event.callbacks = event.callbacks, []
            for cb in callbacks:
                cb(event)
