"""A small discrete-event simulation kernel (SimPy-flavoured).

The paper's performance results come from 32-1024 cores of TACC Ranger;
this kernel is the time substrate on which :mod:`repro.cluster` rebuilds
those experiments.  Processes are Python generators that ``yield`` events;
the environment advances virtual time from event to event, so a 5-hour
1024-core run simulates in milliseconds and is bit-reproducible.

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0 and proc.value == "done"
"""

from repro.simtime.events import AllOf, AnyOf, Environment, Event, Process, Interrupt
from repro.simtime.resources import Resource, Store

__all__ = ["Environment", "Event", "Process", "Interrupt", "AllOf", "AnyOf", "Resource", "Store"]
