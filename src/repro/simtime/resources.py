"""Shared resources for the DES: counting resources and FIFO stores.

``Resource`` models things like a bounded-capacity I/O channel; ``Store``
is the master-worker work queue (put work units in, workers get them out).
Both are strictly FIFO, keeping runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.simtime.events import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """Counting resource with FIFO grant order.

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot.  (A context-manager style is deliberately
    omitted: DES processes here acquire and release across yields.)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        ev = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release without matching request")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class Store:
    """Unbounded FIFO channel of items between processes."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
