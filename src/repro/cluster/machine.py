"""Cluster hardware description and the calibrated Ranger instance.

"Each node has 16 AMD cores and 32 GB of RAM.  The shared file system is
Lustre, and no locally attached storage is available to the user programs.
... the cluster always allocates entire nodes to the MPI job, [so] total
core counts were always multiples of 16." (paper §IV)

Calibration notes (documented, not measured — see DESIGN.md):

- ``lustre_stream_gbps``: a *memory-mapped* 1 GB DB volume loads through
  4 KB page faults against Lustre; effective streaming rates in the tens of
  MB/s are typical for that access pattern, and the paper's 167 %
  superlinear efficiency at 128 cores requires the cold-load cost to be a
  large fraction of a work unit — 0.027 GB/s puts a 1 GB volume at ~37 s.
- ``ram_stream_gbps``: re-touching an already-cached mapping.
- latencies: InfiniBand-class small-message latency plus MapReduce-MPI
  bookkeeping per dispatched unit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterSpec", "ranger"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster allocation."""

    n_nodes: int
    cores_per_node: int = 16
    node_ram_gb: float = 32.0
    #: RAM unavailable for the page cache (application + OS working set:
    #: 16 BLAST processes with query/lookup/MR-MPI pages per node)
    app_ram_gb: float = 8.0
    #: effective mmap-fault streaming rate from the shared FS (GB/s);
    #: calibrated so the 80 K-query run hits the paper's 167 % efficiency
    #: anchor at 128 cores (see EXPERIMENTS.md)
    lustre_stream_gbps: float = 0.057
    #: re-read rate for volumes resident in the page cache (GB/s)
    ram_stream_gbps: float = 2.0
    #: master/worker request-assign round trip (s)
    dispatch_latency: float = 5e-4
    #: network small-message latency (s) and per-link bandwidth (GB/s)
    net_latency: float = 5e-5
    net_bw_gbps: float = 2.5
    #: effective per-core compute throughput for the SOM kernel (GFLOP/s)
    core_gflops: float = 0.5

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cores_per_node < 1:
            raise ValueError(f"cores_per_node must be >= 1, got {self.cores_per_node}")
        if self.app_ram_gb >= self.node_ram_gb:
            raise ValueError("app_ram_gb must leave room for the page cache")

    @property
    def cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    @property
    def workers(self) -> int:
        """Worker count under master/worker mode (rank 0 only dispatches)."""
        return max(self.cores - 1, 1)

    @property
    def page_cache_gb(self) -> float:
        """Combined page-cache capacity of the allocation.

        Modelled cluster-wide (see DESIGN.md): the paper attributes its
        superlinear region to "all 109 1GB DB partitions begin[ning] to fit
        entirely into the combined RAM of the MPI process ranks".
        """
        return self.n_nodes * (self.node_ram_gb - self.app_ram_gb)

    def load_seconds(self, size_gb: float, cached: bool) -> float:
        """Time to (re)open a DB volume of ``size_gb``."""
        rate = self.ram_stream_gbps if cached else self.lustre_stream_gbps
        return size_gb / rate

    def tree_collective_seconds(self, payload_gb: float) -> float:
        """Binomial-tree bcast/reduce estimate for one payload."""
        import math

        rounds = max(1, math.ceil(math.log2(max(self.cores, 2))))
        return rounds * (self.net_latency + payload_gb / self.net_bw_gbps)


def ranger(cores: int) -> ClusterSpec:
    """A Ranger allocation of ``cores`` (must be a multiple of 16)."""
    if cores < 16 or cores % 16 != 0:
        raise ValueError(f"Ranger allocates whole 16-core nodes, got {cores}")
    return ClusterSpec(n_nodes=cores // 16)
