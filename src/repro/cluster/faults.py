"""Fault-tolerance trade-off: the price of the MPI execution model.

"The price for this extra flexibility and portability is a lack of
fault-tolerance inherent in the underlying MPI execution model" (§II.A).
An MPI job dies whole when any rank dies; an HTC workflow only re-runs the
failed task.  This module quantifies that trade-off analytically:

- an MPI job of W cores running T hours survives with probability
  ``exp(-λ·W·T)`` for a per-core-hour failure rate λ, and the *expected*
  completed-work cost includes full restarts (geometric retry);
- the HTC workflow pays only the failed tasks again, so its expected
  overhead is ≈ λ·(core-hours)·(mean task hours).

``compare_fault_costs`` puts the two side by side for a simulated run —
at small λ·W·T the MPI path is essentially free; the crossover where
restarts start to dominate is where checkpointing or HTC decompositions
earn their keep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.dispatch import SimResult

__all__ = ["FaultModel", "compare_fault_costs"]


@dataclass(frozen=True)
class FaultModel:
    """Exponential per-core failure model."""

    #: failures per core-hour (clusters see roughly 1e-6 .. 1e-4)
    failures_per_core_hour: float = 1e-5

    def __post_init__(self) -> None:
        if self.failures_per_core_hour < 0:
            raise ValueError("failure rate must be >= 0")

    def job_survival(self, cores: int, hours: float) -> float:
        """P(an MPI job of this size and length sees no failure)."""
        if cores < 1 or hours < 0:
            raise ValueError("cores must be >= 1 and hours >= 0")
        return math.exp(-self.failures_per_core_hour * cores * hours)

    def expected_mpi_attempts(self, cores: int, hours: float) -> float:
        """Expected number of full runs until one completes (geometric).

        Conservative model: a failed attempt costs a full run's core-hours
        (failures near the end dominate the expectation anyway for small
        rates).  Infinite when survival is ~0.
        """
        p = self.job_survival(cores, hours)
        if p <= 0:
            return math.inf
        return 1.0 / p

    def expected_htc_overhead_fraction(self, mean_task_hours: float) -> float:
        """Extra fraction of core-hours the HTC path re-runs on failures.

        Each failure costs one task redo: overhead ≈ λ × mean task length.
        """
        if mean_task_hours < 0:
            raise ValueError("mean_task_hours must be >= 0")
        return self.failures_per_core_hour * mean_task_hours


@dataclass(frozen=True)
class FaultComparison:
    mpi_survival: float
    mpi_expected_core_hours: float
    htc_expected_core_hours: float
    base_core_hours: float

    @property
    def mpi_overhead_fraction(self) -> float:
        return self.mpi_expected_core_hours / self.base_core_hours - 1.0

    @property
    def htc_overhead_fraction(self) -> float:
        return self.htc_expected_core_hours / self.base_core_hours - 1.0


def compare_fault_costs(
    result: SimResult,
    model: FaultModel | None = None,
    mean_task_hours: float | None = None,
) -> FaultComparison:
    """Fault-cost comparison for one simulated MR-MPI run.

    ``mean_task_hours`` defaults to the run's mean work-unit time.
    """
    model = model or FaultModel()
    hours = result.makespan / 3600.0
    cores = result.cluster.cores
    base = result.core_seconds / 3600.0
    if mean_task_hours is None:
        n_units = sum(t.units for t in result.traces)
        mean_task_hours = (result.total_compute_seconds / 3600.0) / max(n_units, 1)
    survival = model.job_survival(cores, hours)
    attempts = model.expected_mpi_attempts(cores, hours)
    return FaultComparison(
        mpi_survival=survival,
        mpi_expected_core_hours=base * attempts,
        htc_expected_core_hours=base * (1.0 + model.expected_htc_overhead_fraction(mean_task_hours)),
        base_core_hours=base,
    )
