"""Fault-tolerance trade-off: the price of the MPI execution model.

"The price for this extra flexibility and portability is a lack of
fault-tolerance inherent in the underlying MPI execution model" (§II.A).
An MPI job dies whole when any rank dies; an HTC workflow only re-runs the
failed task.  This module quantifies that trade-off analytically:

- an MPI job of W cores running T hours survives with probability
  ``exp(-λ·W·T)`` for a per-core-hour failure rate λ, and the *expected*
  completed-work cost includes full restarts (geometric retry);
- the HTC workflow pays only the failed tasks again, so its expected
  overhead is ≈ λ·(core-hours)·(mean task hours).

``compare_fault_costs`` puts the two side by side for a simulated run —
at small λ·W·T the MPI path is essentially free; the crossover where
restarts start to dominate is where checkpointing or HTC decompositions
earn their keep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.dispatch import SimResult

__all__ = [
    "FaultModel",
    "FaultComparison",
    "RestartObservation",
    "RestartValidation",
    "compare_fault_costs",
    "validate_restart_overhead",
]


@dataclass(frozen=True)
class FaultModel:
    """Exponential per-core failure model."""

    #: failures per core-hour (clusters see roughly 1e-6 .. 1e-4)
    failures_per_core_hour: float = 1e-5

    def __post_init__(self) -> None:
        if self.failures_per_core_hour < 0:
            raise ValueError("failure rate must be >= 0")

    def job_survival(self, cores: int, hours: float) -> float:
        """P(an MPI job of this size and length sees no failure)."""
        if cores < 1 or hours < 0:
            raise ValueError("cores must be >= 1 and hours >= 0")
        return math.exp(-self.failures_per_core_hour * cores * hours)

    def expected_mpi_attempts(self, cores: int, hours: float) -> float:
        """Expected number of full runs until one completes (geometric).

        Conservative model: a failed attempt costs a full run's core-hours
        (failures near the end dominate the expectation anyway for small
        rates).  Infinite when survival is ~0.
        """
        p = self.job_survival(cores, hours)
        if p <= 0:
            return math.inf
        return 1.0 / p

    def expected_htc_overhead_fraction(self, mean_task_hours: float) -> float:
        """Extra fraction of core-hours the HTC path re-runs on failures.

        Each failure costs one task redo: overhead ≈ λ × mean task length.
        """
        if mean_task_hours < 0:
            raise ValueError("mean_task_hours must be >= 0")
        return self.failures_per_core_hour * mean_task_hours

    def expected_checkpoint_overhead_fraction(
        self, cores: int, checkpoint_hours: float
    ) -> float:
        """Expected redone-work fraction for a checkpointed MPI job.

        With a checkpoint every ``checkpoint_hours`` of wall time, a failure
        throws away on average half an interval; failures arrive at rate
        λ·cores per wall-hour, so the redone fraction is
        λ · cores · checkpoint_hours / 2.  This is what turns the
        unbounded geometric restart cost of :meth:`expected_mpi_attempts`
        into a bounded overhead — the analytic counterpart of the
        checkpoint/resume path in :mod:`repro.core.checkpoint`.
        """
        if cores < 1 or checkpoint_hours < 0:
            raise ValueError("cores must be >= 1 and checkpoint_hours >= 0")
        return self.failures_per_core_hour * cores * checkpoint_hours / 2.0


@dataclass(frozen=True)
class FaultComparison:
    mpi_survival: float
    mpi_expected_core_hours: float
    htc_expected_core_hours: float
    base_core_hours: float

    @property
    def mpi_overhead_fraction(self) -> float:
        return self.mpi_expected_core_hours / self.base_core_hours - 1.0

    @property
    def htc_overhead_fraction(self) -> float:
        return self.htc_expected_core_hours / self.base_core_hours - 1.0


@dataclass(frozen=True)
class RestartObservation:
    """What a supervised run with injected faults actually did.

    ``units_useful`` is the work a fault-free run executes once;
    ``units_executed`` counts every execution across all attempts (resumed
    attempts redo the part of a checkpoint interval lost to the crash);
    ``units_per_checkpoint`` is the checkpoint cadence in work units.
    """

    units_useful: int
    units_executed: int
    n_failures: int
    units_per_checkpoint: float

    def __post_init__(self) -> None:
        if self.units_useful < 1:
            raise ValueError("units_useful must be >= 1")
        if self.units_executed < self.units_useful:
            raise ValueError("units_executed cannot be below units_useful")
        if self.n_failures < 0 or self.units_per_checkpoint <= 0:
            raise ValueError("n_failures >= 0 and units_per_checkpoint > 0 required")

    @property
    def observed_overhead_fraction(self) -> float:
        """Redone work as a fraction of useful work."""
        return (self.units_executed - self.units_useful) / self.units_useful

    @property
    def predicted_overhead_fraction(self) -> float:
        """Half-interval-per-failure prediction (same form as the λ model).

        Each failure loses, on average, half a checkpoint interval of
        already-executed work; here the failure count is known (injected)
        rather than drawn from the exponential model, so the prediction is
        ``n_failures · units_per_checkpoint / 2`` redone units.
        """
        return (self.n_failures * self.units_per_checkpoint / 2.0) / self.units_useful


@dataclass(frozen=True)
class RestartValidation:
    observation: RestartObservation
    observed: float
    predicted: float

    @property
    def absolute_error(self) -> float:
        return abs(self.observed - self.predicted)

    def within(self, intervals: float = 1.0) -> bool:
        """True when observed and predicted agree to ``intervals`` checkpoint
        intervals of redone work — the half-interval mean has worst-case
        error of half an interval per failure, so the default tolerance is
        one interval (per observation, scaled by failures)."""
        budget = (
            max(self.observation.n_failures, 1)
            * self.observation.units_per_checkpoint
            * intervals
        ) / self.observation.units_useful
        return self.absolute_error <= budget


def validate_restart_overhead(observation: RestartObservation) -> RestartValidation:
    """Check a simulated (fault-injected) run against the analytic model.

    The acceptance loop for the fault-tolerance subsystem: inject a known
    number of crashes into a supervised run, count redone work units, and
    confirm the restart overhead lands where the half-interval model says
    it should.
    """
    return RestartValidation(
        observation=observation,
        observed=observation.observed_overhead_fraction,
        predicted=observation.predicted_overhead_fraction,
    )


def compare_fault_costs(
    result: SimResult,
    model: FaultModel | None = None,
    mean_task_hours: float | None = None,
) -> FaultComparison:
    """Fault-cost comparison for one simulated MR-MPI run.

    ``mean_task_hours`` defaults to the run's mean work-unit time.
    """
    model = model or FaultModel()
    hours = result.makespan / 3600.0
    cores = result.cluster.cores
    base = result.core_seconds / 3600.0
    if mean_task_hours is None:
        n_units = sum(t.units for t in result.traces)
        mean_task_hours = (result.total_compute_seconds / 3600.0) / max(n_units, 1)
    survival = model.job_survival(cores, hours)
    attempts = model.expected_mpi_attempts(cores, hours)
    return FaultComparison(
        mpi_survival=survival,
        mpi_expected_core_hours=base * attempts,
        htc_expected_core_hours=base * (1.0 + model.expected_htc_overhead_fraction(mean_task_hours)),
        base_core_hours=base,
    )
