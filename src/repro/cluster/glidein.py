"""Glide-in (pilot-job) execution model — the alternative the paper rejects.

The introduction discusses engines like SWIFT and GlideinWMS that "work
through a two-level scheduling: allocating relatively large MPI jobs at the
local resource manager on the cluster, and then having each processor rank
act as an execution daemon that starts sequential tasks farmed out from the
scheduler in a load-balancing mode", noting they need external scheduler
connectivity and fork() on compute nodes.

This model quantifies the trade-off the paper leaves implicit: a glide-in
daemon pays a *wide-area scheduler round trip* plus a fork/exec start-up
per task, where the in-job MR-MPI master costs microseconds.  For
coarse-grained units both work; when units shrink (as the paper's own §V
dynamic-chunking plan requires for load balancing), the glide-in overhead
dominates — one reason the in-MPI master/worker design matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.blast_model import BlastWorkloadModel
from repro.cluster.dispatch import SimResult, WorkerTrace
from repro.cluster.machine import ClusterSpec
from repro.cluster.pagecache import PartitionCache
from repro.simtime.events import Environment

__all__ = ["GlideinSpec", "simulate_glidein_run"]


@dataclass(frozen=True)
class GlideinSpec:
    """Overheads of the pilot-job path."""

    #: round trip to the external (off-cluster) scheduler per task
    scheduler_latency: float = 0.5
    #: fork()/exec and per-task process start-up on the compute node
    fork_overhead: float = 0.3
    #: how many concurrent scheduler requests the gateway proxy sustains
    gateway_concurrency: int = 64

    def __post_init__(self) -> None:
        if self.scheduler_latency < 0 or self.fork_overhead < 0:
            raise ValueError("overheads must be non-negative")
        if self.gateway_concurrency < 1:
            raise ValueError("gateway_concurrency must be >= 1")


def simulate_glidein_run(
    cluster: ClusterSpec,
    workload: BlastWorkloadModel,
    glidein: GlideinSpec | None = None,
) -> SimResult:
    """Replay the same workload through glide-in daemons.

    Every core runs a daemon (no master rank is needed — the scheduler is
    external), tasks are fetched one at a time through the shared gateway,
    and each execution pays the fork overhead.  Page-cache behaviour matches
    the MR-MPI runs (same nodes, same mmap'd volumes).
    """
    spec = glidein or GlideinSpec()
    env = Environment()
    workers = cluster.cores
    cache = PartitionCache(cluster.page_cache_gb)
    traces = [WorkerTrace(w) for w in range(workers)]

    units = [
        (b, p)
        for b in range(workload.n_blocks)
        for p in range(workload.n_partitions)
    ]
    cursor = [0]

    from repro.simtime.resources import Resource

    gateway = Resource(env, capacity=spec.gateway_concurrency)

    def daemon(env: Environment, wid: int):
        trace = traces[wid]
        current: int | None = None
        while True:
            # Fetch the next task through the gateway proxy.
            yield gateway.request()
            yield env.timeout(spec.scheduler_latency)
            if cursor[0] >= len(units):
                gateway.release()
                return
            block, partition = units[cursor[0]]
            cursor[0] += 1
            gateway.release()

            yield env.timeout(spec.fork_overhead)
            start = env.now
            io = 0.0
            if partition != current:
                cached = cache.access(partition, workload.partition_gb)
                io = cluster.load_seconds(workload.partition_gb, cached)
                yield env.timeout(io)
                trace.reloads += 1
                current = partition
            compute = workload.compute_seconds(block, partition)
            yield env.timeout(compute)
            trace.intervals.append((start, start + io, env.now))
            trace.units += 1
            trace.io_seconds += io
            trace.compute_seconds += compute

    for w in range(workers):
        env.process(daemon(env, w))
    env.run()

    # File-system-level result merging replaces collate/reduce.
    kv_total_gb = sum(
        workload.kv_bytes(b, p) for b, p in units
    ) / 1e9
    merge_seconds = kv_total_gb / 0.2

    return SimResult(
        cluster=cluster,
        workload=workload,
        scheduler="glidein",
        map_makespan=env.now,
        collate_seconds=0.0,
        reduce_seconds=merge_seconds,
        traces=traces,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
