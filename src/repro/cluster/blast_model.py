"""Workload model: per-work-unit BLAST cost for the scaling experiments.

A work unit is one (query block, DB partition) pair.  Its compute time is
drawn from a lognormal around ``base_unit_seconds × queries/1000`` with an
occasional extreme straggler — the paper: "the BLAST search time can vary
widely for specific query and DB sequences ... some combinations of the
query blocks and DB partitions take much longer than others".  Draws are
keyed by (seed, block, partition), so a unit costs the same no matter which
worker runs it or in which order — schedulers can be compared apples to
apples.

Two factory functions configure the paper's workloads:

- :func:`nucleotide_workload` — Fig. 3/4: 109 × 1 GB partitions, 364 Gbp,
  shredded-read query blocks of 1000 or 2000, I/O-sensitive.
- :func:`protein_workload` — Fig. 5 and §IV.A: env_nr subset vs UniRef100
  in 58 partitions of 200 k sequences, CPU-bound (partitions are small and
  per-residue work is much higher).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.rng import derive_rng

__all__ = ["BlastWorkloadModel", "nucleotide_workload", "protein_workload"]


@dataclass(frozen=True)
class BlastWorkloadModel:
    """Deterministic per-unit cost model."""

    name: str
    n_blocks: int
    queries_per_block: int
    n_partitions: int
    partition_gb: float
    #: mean compute seconds for 1000 queries against one partition
    base_unit_seconds: float
    #: lognormal shape of per-unit variability
    sigma: float
    #: probability and size of extreme straggler units
    straggler_prob: float = 0.003
    straggler_factor: float = 8.0
    #: KV bytes emitted per query (hits survive to collate)
    kv_bytes_per_query: float = 400.0
    #: fraction of in-search time that is CPU (vs internal BLAST I/O)
    cpu_fraction: float = 0.92
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_blocks < 1 or self.n_partitions < 1:
            raise ValueError("need at least one block and one partition")
        if self.base_unit_seconds <= 0 or self.partition_gb <= 0:
            raise ValueError("base_unit_seconds and partition_gb must be positive")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not (0 <= self.straggler_prob <= 1):
            raise ValueError("straggler_prob must be in [0, 1]")

    @property
    def n_units(self) -> int:
        return self.n_blocks * self.n_partitions

    @property
    def total_queries(self) -> int:
        return self.n_blocks * self.queries_per_block

    @property
    def db_gb(self) -> float:
        return self.n_partitions * self.partition_gb

    def compute_seconds(self, block: int, partition: int) -> float:
        """Compute time of one unit (same value for every scheduler/run)."""
        if not (0 <= block < self.n_blocks):
            raise ValueError(f"block {block} outside [0, {self.n_blocks})")
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} outside [0, {self.n_partitions})")
        rng = derive_rng(self.seed, self.name, block, partition)
        mean = self.base_unit_seconds * self.queries_per_block / 1000.0
        # Lognormal with the chosen mean: mu = ln(mean) - sigma^2/2.
        mu = math.log(mean) - 0.5 * self.sigma * self.sigma
        value = float(rng.lognormal(mu, self.sigma))
        if rng.random() < self.straggler_prob:
            value *= self.straggler_factor
        return value

    def kv_bytes(self, block: int, partition: int) -> float:
        """Shuffle payload this unit contributes to collate()."""
        del partition
        return self.kv_bytes_per_query * self.queries_per_block


def nucleotide_workload(
    n_queries: int,
    queries_per_block: int = 1000,
    seed: int = 0,
) -> BlastWorkloadModel:
    """The Fig. 3/4 blastn setup for a given query-set size."""
    if n_queries % queries_per_block:
        raise ValueError(
            f"{n_queries} queries do not divide into blocks of {queries_per_block}"
        )
    return BlastWorkloadModel(
        name="blastn-ranger",
        n_blocks=n_queries // queries_per_block,
        queries_per_block=queries_per_block,
        n_partitions=109,
        partition_gb=1.0,
        base_unit_seconds=20.0,
        sigma=0.50,
        straggler_prob=0.003,
        straggler_factor=5.0,
        cpu_fraction=0.85,
        seed=seed,
    )


def protein_workload(
    n_queries: int = 139_846,
    queries_per_block: int = 500,
    seed: int = 0,
) -> BlastWorkloadModel:
    """The §IV.A blastp setup: env_nr subset vs UniRef100 (58 partitions).

    Protein search is far more CPU-bound than nucleotide (remote homologies
    mean many more candidate matches per database residue), so partitions
    are small, per-unit compute huge, and variability mild — which is what
    produces the paper's near-perfect scaling (1024 cores cost only ~6 %
    more core·min/query than 512) and its 294-minute 1024-core wall time.
    """
    n_blocks = max(1, round(n_queries / queries_per_block))
    return BlastWorkloadModel(
        name="blastp-ranger",
        n_blocks=n_blocks,
        queries_per_block=queries_per_block,
        n_partitions=58,
        partition_gb=0.2,
        base_unit_seconds=2050.0,
        sigma=0.25,
        straggler_prob=0.001,
        straggler_factor=2.0,
        cpu_fraction=0.97,
        seed=seed,
    )
