"""LRU page-cache model for memory-mapped DB volumes.

"The memory mapped DB partitions stay cached in RAM after being loaded upon
the first read access" (§IV.A).  Capacity is the allocation's combined
page-cache RAM; entries are whole volumes (the unit mmap actually touches
during a scan).  The crossover this produces — all volumes resident once
``nodes × (32-app) GB ≥ total DB size`` — is the paper's superlinear region.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PartitionCache"]


class PartitionCache:
    """Cluster-wide LRU over DB volumes keyed by partition index."""

    def __init__(self, capacity_gb: float) -> None:
        if capacity_gb < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_gb}")
        self.capacity_gb = capacity_gb
        self._entries: OrderedDict[int, float] = OrderedDict()
        self._used_gb = 0.0
        self.hits = 0
        self.misses = 0

    @property
    def used_gb(self) -> float:
        return self._used_gb

    @property
    def resident(self) -> list[int]:
        return list(self._entries)

    def access(self, partition: int, size_gb: float) -> bool:
        """Touch a volume; returns True on hit.  Misses insert + evict LRU."""
        if size_gb < 0:
            raise ValueError(f"size must be >= 0, got {size_gb}")
        if partition in self._entries:
            self._entries.move_to_end(partition)
            self.hits += 1
            return True
        self.misses += 1
        if size_gb > self.capacity_gb:
            return False  # cannot be cached at all
        while self._used_gb + size_gb > self.capacity_gb and self._entries:
            _evicted, evicted_size = self._entries.popitem(last=False)
            self._used_gb -= evicted_size
        self._entries[partition] = size_gb
        self._used_gb += size_gb
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
