"""Utilisation traces: the Fig. 5 "useful CPU utilisation" curve.

The paper defines useful utilisation as user CPU time spent inside BLAST
calls divided by wall-clock time, summed over concurrent calls and divided
by the allocated core count.  From the DES we know each unit's I/O span and
compute span, and the workload's CPU fraction inside the search call, so
the same quantity falls out of the per-worker interval logs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.dispatch import SimResult

__all__ = ["utilization_curve"]


def utilization_curve(result: SimResult, n_bins: int = 60) -> tuple[np.ndarray, np.ndarray]:
    """(bin centres in seconds, mean useful utilisation per bin).

    Each worker contributes ``cpu_fraction`` while computing, 0 while
    loading a DB volume or idling; the sum is normalised by *allocated*
    cores (the master rank counts in the denominator, as in the paper).
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    horizon = result.map_makespan
    if horizon <= 0:
        return np.zeros(0), np.zeros(0)
    edges = np.linspace(0.0, horizon, n_bins + 1)
    busy = np.zeros(n_bins)
    cpu_fraction = result.workload.cpu_fraction
    for trace in result.traces:
        for start, io_end, end in trace.intervals:
            if end <= io_end:
                continue
            # Clip the compute span [io_end, end) onto the bins.
            lo = np.searchsorted(edges, io_end, side="right") - 1
            hi = np.searchsorted(edges, end, side="left")
            for b in range(max(lo, 0), min(hi, n_bins)):
                overlap = min(end, edges[b + 1]) - max(io_end, edges[b])
                if overlap > 0:
                    busy[b] += overlap * cpu_fraction
    bin_width = edges[1] - edges[0]
    centres = 0.5 * (edges[:-1] + edges[1:])
    utilisation = busy / (bin_width * result.cluster.cores)
    return centres, utilisation
