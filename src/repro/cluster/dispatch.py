"""DES replay of the MR-MPI BLAST map phase on a modelled cluster.

Workers (cores minus the rank-0 master) pull (query block, DB partition)
units from a scheduler, pay a dispatch round trip, reload the partition when
it differs from the one they hold (cost depending on the page cache), then
compute.  Three schedulers:

- ``master_worker`` — the paper's FIFO dispatch (units in partition-major
  order, first free worker gets the next unit);
- ``static`` — mpiBLAST-style ownership: partition p belongs to worker
  ``p % W``; no work stealing;
- ``affinity`` — the paper's §V *future work*: the master prefers a unit
  whose partition the requesting worker already holds ("distribute the work
  unit tuples to those ranks that have already been processing the same DB
  partitions").

The collate/reduce phases are appended analytically (personalised
all-to-all of the emitted KV volume), since the paper's scaling behaviour
is dominated by the map phase.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.cluster.blast_model import BlastWorkloadModel
from repro.cluster.machine import ClusterSpec
from repro.cluster.pagecache import PartitionCache
from repro.simtime.events import Environment

__all__ = ["SimResult", "WorkerTrace", "simulate_blast_run"]


@dataclass
class WorkerTrace:
    """Per-worker activity log: (start, io_end, end) per unit."""

    worker: int
    intervals: list[tuple[float, float, float]] = field(default_factory=list)
    units: int = 0
    reloads: int = 0
    io_seconds: float = 0.0
    compute_seconds: float = 0.0


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    cluster: ClusterSpec
    workload: BlastWorkloadModel
    scheduler: str
    map_makespan: float
    collate_seconds: float
    reduce_seconds: float
    traces: list[WorkerTrace]
    cache_hits: int
    cache_misses: int

    @property
    def makespan(self) -> float:
        return self.map_makespan + self.collate_seconds + self.reduce_seconds

    @property
    def total_compute_seconds(self) -> float:
        return sum(t.compute_seconds for t in self.traces)

    @property
    def total_io_seconds(self) -> float:
        return sum(t.io_seconds for t in self.traces)

    @property
    def total_reloads(self) -> int:
        return sum(t.reloads for t in self.traces)

    @property
    def core_seconds(self) -> float:
        """Allocated core time (what the batch system charges)."""
        return self.makespan * self.cluster.cores

    @property
    def core_minutes_per_query(self) -> float:
        """Fig. 4's y-axis: allocated core minutes per query sequence."""
        return self.core_seconds / 60.0 / self.workload.total_queries

    def efficiency_vs(self, baseline: "SimResult") -> float:
        """Relative parallel efficiency against another run of the same
        workload: (baseline core·s per query) / (this core·s per query)."""
        if baseline.workload.total_queries != self.workload.total_queries:
            raise ValueError("efficiency comparison requires the same workload size")
        return baseline.core_seconds / self.core_seconds


class _Scheduler:
    """Synchronous unit source; the DES charges dispatch latency around it."""

    def __init__(
        self,
        workload: BlastWorkloadModel,
        policy: str,
        workers: int,
        order: str = "query_major",
    ) -> None:
        self.policy = policy
        if order == "query_major":
            # For each query block, sweep all DB partitions — the order that
            # reproduces the paper's caching behaviour (every rank re-opens a
            # different partition per unit, so the page cache does the work).
            units = [
                (b, p)
                for b in range(workload.n_blocks)
                for p in range(workload.n_partitions)
            ]
        elif order == "partition_major":
            units = [
                (b, p)
                for p in range(workload.n_partitions)
                for b in range(workload.n_blocks)
            ]
        else:
            raise ValueError(f"unknown unit order {order!r}")
        if policy == "master_worker":
            self._fifo = deque(units)
        elif policy == "affinity":
            self._by_partition: dict[int, deque] = defaultdict(deque)
            for b, p in units:
                self._by_partition[p].append((b, p))
            self._order = deque(range(workload.n_partitions))
        elif policy == "static":
            self._per_worker: list[deque] = [deque() for _ in range(workers)]
            for b, p in units:
                self._per_worker[p % workers].append((b, p))
        else:
            raise ValueError(f"unknown scheduler policy {policy!r}")

    def next_unit(self, worker: int, current_partition: int | None):
        if self.policy == "master_worker":
            return self._fifo.popleft() if self._fifo else None
        if self.policy == "static":
            q = self._per_worker[worker]
            return q.popleft() if q else None
        # affinity: keep feeding the worker its current partition; otherwise
        # let it *claim* the next unclaimed partition (removing it from the
        # claim order so other workers pick different ones); when no
        # unclaimed partitions remain, steal from the fullest queue.
        if current_partition is not None:
            q = self._by_partition.get(current_partition)
            if q:
                return q.popleft()
        while self._order:
            p = self._order.popleft()
            q = self._by_partition.get(p)
            if q:
                return q.popleft()
        remaining = [p for p, q in self._by_partition.items() if q]
        if not remaining:
            return None
        victim = max(remaining, key=lambda p: len(self._by_partition[p]))
        return self._by_partition[victim].popleft()


def simulate_blast_run(
    cluster: ClusterSpec,
    workload: BlastWorkloadModel,
    scheduler: str = "master_worker",
    order: str = "query_major",
) -> SimResult:
    """Simulate one map+collate+reduce cycle; deterministic per inputs."""
    env = Environment()
    workers = cluster.workers if scheduler != "static" else cluster.cores
    cache = PartitionCache(cluster.page_cache_gb)
    sched = _Scheduler(workload, scheduler, workers, order=order)
    traces = [WorkerTrace(w) for w in range(workers)]

    def worker_proc(env: Environment, wid: int):
        trace = traces[wid]
        current: int | None = None
        while True:
            unit = sched.next_unit(wid, current)
            if unit is None:
                return
            block, partition = unit
            yield env.timeout(cluster.dispatch_latency)
            start = env.now
            io = 0.0
            if partition != current:
                cached = cache.access(partition, workload.partition_gb)
                io = cluster.load_seconds(workload.partition_gb, cached)
                yield env.timeout(io)
                trace.reloads += 1
                current = partition
            compute = workload.compute_seconds(block, partition)
            yield env.timeout(compute)
            trace.intervals.append((start, start + io, env.now))
            trace.units += 1
            trace.io_seconds += io
            trace.compute_seconds += compute

    for w in range(workers):
        env.process(worker_proc(env, w))
    env.run()
    map_makespan = env.now

    # Shuffle model: every rank holds kv_total/P and exchanges (P-1)/P of it
    # in a personalised all-to-all limited by per-link bandwidth.
    kv_total_gb = (
        sum(
            workload.kv_bytes(b, p)
            for p in range(workload.n_partitions)
            for b in range(workload.n_blocks)
        )
        / 1e9
    )
    per_rank_gb = kv_total_gb / max(cluster.cores, 1)
    collate_seconds = per_rank_gb / cluster.net_bw_gbps + cluster.net_latency * max(
        cluster.cores - 1, 1
    ) * 0.01
    # Reduce: sort + file append of the per-rank share (disk-rate bound).
    reduce_seconds = per_rank_gb / 0.2

    return SimResult(
        cluster=cluster,
        workload=workload,
        scheduler=scheduler,
        map_makespan=map_makespan,
        collate_seconds=collate_seconds,
        reduce_seconds=reduce_seconds,
        traces=traces,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
