"""DES replay of the MR-MPI BLAST map phase on a modelled cluster.

Workers (cores minus the rank-0 master) pull (query block, DB partition)
units from a scheduler, pay a dispatch round trip, reload the partition when
it differs from the one they hold (cost depending on the page cache), then
compute.  Three schedulers:

- ``master_worker`` — the paper's FIFO dispatch (units in partition-major
  order, first free worker gets the next unit);
- ``static`` — mpiBLAST-style ownership: partition p belongs to worker
  ``p % W``; no work stealing;
- ``affinity`` — the paper's §V *future work*: the master prefers a unit
  whose partition the requesting worker already holds ("distribute the work
  unit tuples to those ranks that have already been processing the same DB
  partitions").

The collate/reduce phases are appended analytically (personalised
all-to-all of the emitted KV volume), since the paper's scaling behaviour
is dominated by the map phase.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.cluster.blast_model import BlastWorkloadModel
from repro.cluster.machine import ClusterSpec
from repro.cluster.pagecache import PartitionCache
from repro.mpi.faultplan import CrashRank, FaultPlan, StallRank
from repro.sched import SpeculationPolicy, StragglerTracker
from repro.simtime.events import Environment

__all__ = ["SimResult", "WorkerTrace", "simulate_blast_run"]


@dataclass
class WorkerTrace:
    """Per-worker activity log: (start, io_end, end) per unit."""

    worker: int
    intervals: list[tuple[float, float, float]] = field(default_factory=list)
    units: int = 0
    reloads: int = 0
    io_seconds: float = 0.0
    compute_seconds: float = 0.0
    #: straggler-mitigation accounting (PR 8)
    wasted_units: int = 0
    wasted_seconds: float = 0.0
    stall_seconds: float = 0.0
    crashed: bool = False


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    cluster: ClusterSpec
    workload: BlastWorkloadModel
    scheduler: str
    map_makespan: float
    collate_seconds: float
    reduce_seconds: float
    traces: list[WorkerTrace]
    cache_hits: int
    cache_misses: int
    #: straggler-mitigation / fault accounting (PR 8)
    speculated_units: int = 0
    wasted_units: int = 0
    wasted_seconds: float = 0.0
    reassigned_units: int = 0
    lost_units: int = 0
    lost_workers: tuple[int, ...] = ()

    @property
    def makespan(self) -> float:
        return self.map_makespan + self.collate_seconds + self.reduce_seconds

    @property
    def total_compute_seconds(self) -> float:
        return sum(t.compute_seconds for t in self.traces)

    @property
    def total_io_seconds(self) -> float:
        return sum(t.io_seconds for t in self.traces)

    @property
    def total_reloads(self) -> int:
        return sum(t.reloads for t in self.traces)

    @property
    def core_seconds(self) -> float:
        """Allocated core time (what the batch system charges)."""
        return self.makespan * self.cluster.cores

    @property
    def core_minutes_per_query(self) -> float:
        """Fig. 4's y-axis: allocated core minutes per query sequence."""
        return self.core_seconds / 60.0 / self.workload.total_queries

    def efficiency_vs(self, baseline: "SimResult") -> float:
        """Relative parallel efficiency against another run of the same
        workload: (baseline core·s per query) / (this core·s per query)."""
        if baseline.workload.total_queries != self.workload.total_queries:
            raise ValueError("efficiency comparison requires the same workload size")
        return baseline.core_seconds / self.core_seconds


class _Scheduler:
    """Synchronous unit source; the DES charges dispatch latency around it."""

    def __init__(
        self,
        workload: BlastWorkloadModel,
        policy: str,
        workers: int,
        order: str = "query_major",
    ) -> None:
        self.policy = policy
        if order == "query_major":
            # For each query block, sweep all DB partitions — the order that
            # reproduces the paper's caching behaviour (every rank re-opens a
            # different partition per unit, so the page cache does the work).
            units = [
                (b, p)
                for b in range(workload.n_blocks)
                for p in range(workload.n_partitions)
            ]
        elif order == "partition_major":
            units = [
                (b, p)
                for p in range(workload.n_partitions)
                for b in range(workload.n_blocks)
            ]
        else:
            raise ValueError(f"unknown unit order {order!r}")
        if policy == "master_worker":
            self._fifo = deque(units)
        elif policy == "affinity":
            self._by_partition: dict[int, deque] = defaultdict(deque)
            for b, p in units:
                self._by_partition[p].append((b, p))
            self._order = deque(range(workload.n_partitions))
        elif policy == "static":
            self._per_worker: list[deque] = [deque() for _ in range(workers)]
            for b, p in units:
                self._per_worker[p % workers].append((b, p))
        else:
            raise ValueError(f"unknown scheduler policy {policy!r}")

    def next_unit(self, worker: int, current_partition: int | None):
        if self.policy == "master_worker":
            return self._fifo.popleft() if self._fifo else None
        if self.policy == "static":
            q = self._per_worker[worker]
            return q.popleft() if q else None
        # affinity: keep feeding the worker its current partition; otherwise
        # let it *claim* the next unclaimed partition (removing it from the
        # claim order so other workers pick different ones); when no
        # unclaimed partitions remain, steal from the fullest queue.
        if current_partition is not None:
            q = self._by_partition.get(current_partition)
            if q:
                return q.popleft()
        while self._order:
            p = self._order.popleft()
            q = self._by_partition.get(p)
            if q:
                return q.popleft()
        remaining = [p for p, q in self._by_partition.items() if q]
        if not remaining:
            return None
        victim = max(remaining, key=lambda p: len(self._by_partition[p]))
        return self._by_partition[victim].popleft()

    def requeue(self, unit: tuple[int, int]) -> None:
        """Put a unit back at the FRONT of its queue (a dead worker's work).

        Front, not back: the unit is the oldest outstanding work, so it
        should not wait behind the whole remaining backlog a second time.
        """
        b, p = unit
        if self.policy == "master_worker":
            self._fifo.appendleft(unit)
        elif self.policy == "affinity":
            self._by_partition[p].appendleft(unit)
        else:  # pragma: no cover - static has no reassignment (checked above)
            raise ValueError("static scheduling cannot requeue units")


def simulate_blast_run(
    cluster: ClusterSpec,
    workload: BlastWorkloadModel,
    scheduler: str = "master_worker",
    order: str = "query_major",
    *,
    speculation: SpeculationPolicy | None = None,
    reassign: bool = False,
    fault_plan: FaultPlan | None = None,
) -> SimResult:
    """Simulate one map+collate+reduce cycle; deterministic per inputs.

    Straggler/fault extensions (PR 8), all off by default:

    - ``fault_plan`` reinterprets a :class:`~repro.mpi.faultplan.FaultPlan`
      on the simulated fleet: event ``rank`` is the worker index and
      ``at_op`` counts that worker's *dispatched units* (1-based).
      ``StallRank`` adds ``seconds`` to the unit's service time;
      ``CrashRank`` kills the worker right after it takes its ``at_op``-th
      unit.  Message events are ignored (the DES has no message plane).
    - ``speculation`` re-issues overdue units to idle workers under the
      same :class:`~repro.sched.SpeculationPolicy` as the real runtime;
      the first copy to finish wins and the loser's time is wasted work.
    - ``reassign`` requeues a dead worker's in-flight units to the front
      of the queue (degraded completion); without it they are lost.

    ``map_makespan`` then means *result-complete time* — the instant the
    last work unit is accepted — so a loser copy still grinding on a
    stalled worker does not mask the speculation win.
    """
    if scheduler == "static" and (speculation is not None or reassign):
        raise ValueError(
            "static scheduling has no central queue: speculation/reassignment "
            "require the master_worker or affinity policy"
        )
    env = Environment()
    workers = cluster.workers if scheduler != "static" else cluster.cores
    cache = PartitionCache(cluster.page_cache_gb)
    sched = _Scheduler(workload, scheduler, workers, order=order)
    traces = [WorkerTrace(w) for w in range(workers)]

    # Per-worker fault tables, read (not consumed) from the plan so one plan
    # can drive many simulated arms.
    crash_at: dict[int, int] = {}
    stall_at: dict[tuple[int, int], float] = {}
    if fault_plan is not None:
        for ev in fault_plan.events:
            if isinstance(ev, CrashRank) and ev.rank < workers:
                crash_at[ev.rank] = min(crash_at.get(ev.rank, ev.at_op), ev.at_op)
            elif isinstance(ev, StallRank) and ev.rank < workers:
                key = (ev.rank, ev.at_op)
                stall_at[key] = stall_at.get(key, 0.0) + ev.seconds
    tracked = speculation is not None or reassign or bool(crash_at) or bool(stall_at)

    def worker_proc(env: Environment, wid: int):
        trace = traces[wid]
        current: int | None = None
        while True:
            unit = sched.next_unit(wid, current)
            if unit is None:
                return
            block, partition = unit
            yield env.timeout(cluster.dispatch_latency)
            start = env.now
            io = 0.0
            if partition != current:
                cached = cache.access(partition, workload.partition_gb)
                io = cluster.load_seconds(workload.partition_gb, cached)
                yield env.timeout(io)
                trace.reloads += 1
                current = partition
            compute = workload.compute_seconds(block, partition)
            yield env.timeout(compute)
            trace.intervals.append((start, start + io, env.now))
            trace.units += 1
            trace.io_seconds += io
            trace.compute_seconds += compute

    n_units = workload.n_blocks * workload.n_partitions
    tracker = StragglerTracker(speculation)
    state = {"lost": 0, "crashed": []}

    def sched_worker_proc(env: Environment, wid: int):
        trace = traces[wid]
        current: int | None = None
        dispatched = 0
        crash_op = crash_at.get(wid)
        while tracker.completed + state["lost"] < n_units:
            unit = sched.next_unit(wid, current)
            if unit is None and speculation is not None:
                # Queue drained: clone the most-overdue straggler instead of
                # going idle (dedup by unit id makes the clone safe).
                unit = tracker.candidate(env.now, exclude_worker=wid)
            if unit is None:
                # Idle but the job is not done (a straggler or a requeue may
                # still need this worker): poll at a cadence scaled to the
                # observed unit cost.
                med = tracker.median()
                yield env.timeout(
                    max((med or 2.0) / 2.0, cluster.dispatch_latency * 8)
                )
                continue
            dispatched += 1
            yield env.timeout(cluster.dispatch_latency)
            tracker.assign(unit, wid, env.now)
            if crash_op is not None and dispatched >= crash_op:
                trace.crashed = True
                state["crashed"].append(wid)
                orphans = tracker.release_worker(wid, env.now)
                if reassign:
                    for u in orphans:
                        sched.requeue(u)
                    tracker.reassigned += len(orphans)
                else:
                    state["lost"] += len(orphans)
                    if scheduler == "static":
                        # Static ownership: the dead worker's whole queue
                        # dies with it — nobody else may serve it.
                        q = sched._per_worker[wid]
                        state["lost"] += len(q)
                        q.clear()
                return
            block, partition = unit
            start = env.now
            io = 0.0
            if partition != current:
                cached = cache.access(partition, workload.partition_gb)
                io = cluster.load_seconds(workload.partition_gb, cached)
                yield env.timeout(io)
                trace.reloads += 1
                current = partition
            stall = stall_at.get((wid, dispatched), 0.0)
            if stall:
                trace.stall_seconds += stall
                yield env.timeout(stall)
            compute = workload.compute_seconds(block, partition)
            yield env.timeout(compute)
            accepted = tracker.complete(unit, wid, env.now)
            trace.intervals.append((start, start + io, env.now))
            if accepted:
                trace.units += 1
                trace.io_seconds += io
                trace.compute_seconds += compute
            else:
                trace.wasted_units += 1
                trace.wasted_seconds += io + stall + compute

    proc = sched_worker_proc if tracked else worker_proc
    for w in range(workers):
        env.process(proc(env, w))
    env.run()
    if tracked and tracker.finish_time is not None:
        map_makespan = tracker.finish_time
    else:
        map_makespan = env.now

    # Shuffle model: every rank holds kv_total/P and exchanges (P-1)/P of it
    # in a personalised all-to-all limited by per-link bandwidth.
    kv_total_gb = (
        sum(
            workload.kv_bytes(b, p)
            for p in range(workload.n_partitions)
            for b in range(workload.n_blocks)
        )
        / 1e9
    )
    per_rank_gb = kv_total_gb / max(cluster.cores, 1)
    collate_seconds = per_rank_gb / cluster.net_bw_gbps + cluster.net_latency * max(
        cluster.cores - 1, 1
    ) * 0.01
    # Reduce: sort + file append of the per-rank share (disk-rate bound).
    reduce_seconds = per_rank_gb / 0.2

    return SimResult(
        cluster=cluster,
        workload=workload,
        scheduler=scheduler,
        map_makespan=map_makespan,
        collate_seconds=collate_seconds,
        reduce_seconds=reduce_seconds,
        traces=traces,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        speculated_units=tracker.speculated,
        wasted_units=tracker.wasted,
        wasted_seconds=sum(t.wasted_seconds for t in traces),
        reassigned_units=tracker.reassigned,
        lost_units=state["lost"],
        lost_workers=tuple(sorted(state["crashed"])),
    )
