"""Performance model of the MR-MPI batch SOM (Fig. 6).

Per epoch: broadcast the codebook, map over vector blocks (uniform compute
— BMU search flops dominate and every 40-vector block costs the same), then
two MPI_Reduce calls over the accumulators.  The paper chose input sizes
that are multiples of the core counts ("81,920 random vectors (the multiple
of our core counts)"), so blocks divide evenly and the map phase is
balance-perfect; the model distributes blocks round-robin over all cores
accordingly (the master's bookkeeping is negligible next to a 51-MFLOP
block and the paper notes master/worker "is not as critical" here).

Collectives are modelled as pipelined large-message trees:
``log2(P)·latency + 2·payload/bandwidth``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.machine import ClusterSpec
from repro.util.rng import derive_rng

__all__ = ["SomScalingModel", "SomSimResult", "simulate_som_run"]


@dataclass(frozen=True)
class SomScalingModel:
    """The Fig. 6 workload: 81 920 × 256-d vectors, 50×50 map, 40-row blocks."""

    n_vectors: int = 81_920
    dim: int = 256
    map_rows: int = 50
    map_cols: int = 50
    block_rows: int = 40
    epochs: int = 100
    #: flops per (vector, unit, dimension): subtract+square+accumulate ≈ 3,
    #: plus the update pass amortised
    flops_per_element: float = 3.5
    #: relative jitter of per-block times (cache effects etc.)
    jitter: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_vectors < 1 or self.dim < 1 or self.block_rows < 1:
            raise ValueError("n_vectors, dim and block_rows must be positive")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")

    @property
    def map_units(self) -> int:
        return self.map_rows * self.map_cols

    @property
    def n_blocks(self) -> int:
        return -(-self.n_vectors // self.block_rows)

    @property
    def codebook_gb(self) -> float:
        # platform single-precision floats, as the paper's dense matrix
        return self.map_units * self.dim * 4 / 1e9

    def block_seconds(self, cluster: ClusterSpec, block: int) -> float:
        rows = min(self.block_rows, self.n_vectors - block * self.block_rows)
        flops = rows * self.map_units * self.dim * self.flops_per_element
        base = flops / (cluster.core_gflops * 1e9)
        rng = derive_rng(self.seed, "somblock", block)
        return base * (1.0 + self.jitter * float(rng.standard_normal()))


@dataclass
class SomSimResult:
    cluster: ClusterSpec
    model: SomScalingModel
    makespan: float
    compute_seconds: float
    comm_seconds: float

    @property
    def core_seconds(self) -> float:
        return self.makespan * self.cluster.cores

    def efficiency_vs(self, baseline: "SomSimResult") -> float:
        return baseline.core_seconds / self.core_seconds


def _pipelined_collective(cluster: ClusterSpec, payload_gb: float) -> float:
    rounds = max(1, math.ceil(math.log2(max(cluster.cores, 2))))
    return rounds * cluster.net_latency + 2.0 * payload_gb / cluster.net_bw_gbps


def simulate_som_run(cluster: ClusterSpec, model: SomScalingModel) -> SomSimResult:
    """Closed-form epoch assembly (blocks round-robin over all cores)."""
    per_core_seconds = [0.0] * cluster.cores
    for block in range(model.n_blocks):
        per_core_seconds[block % cluster.cores] += model.block_seconds(cluster, block)
    map_epoch = max(per_core_seconds)
    compute_epoch = sum(per_core_seconds)
    # bcast(codebook) + 2 reduces (numerator matrix + denominator vector,
    # reduced together they move ~2x the codebook payload).
    comm_epoch = _pipelined_collective(cluster, model.codebook_gb) + _pipelined_collective(
        cluster, 2.0 * model.codebook_gb
    )
    dispatch_epoch = cluster.dispatch_latency * model.n_blocks / cluster.cores
    makespan = model.epochs * (map_epoch + comm_epoch + dispatch_epoch)
    return SomSimResult(
        cluster=cluster,
        model=model,
        makespan=makespan,
        compute_seconds=model.epochs * compute_epoch,
        comm_seconds=model.epochs * comm_epoch,
    )
