"""Cluster performance models: the paper's Ranger runs, rebuilt in a DES.

The functional pipelines in :mod:`repro.core` prove *correctness* on the
in-process MPI runtime; this package reproduces the *performance* results
(Figs. 3-6 and the in-text scaling numbers) on a discrete-event model of
TACC Ranger: 16-core/32 GB nodes, a shared Lustre file system with no
node-local scratch, and master/worker work dispatch.

The mechanisms modelled are exactly the ones the paper's analysis invokes:

- work-unit granularity vs. core count (load-balancing tail, Figs. 3-4);
- DB partition reload cost vs. RAM caching of memory-mapped volumes (the
  superlinear region of Fig. 4);
- heavy-tailed, unpredictable per-unit BLAST times (the straggler delays
  of §IV.A and the Fig. 5 taper);
- collective communication costs (SOM bcast/reduce, Fig. 6).

Absolute constants are calibrated (see :mod:`repro.cluster.machine`); the
experiments compare *shapes* against the paper's anchors, which is the
scope a simulation substitute can honestly claim.
"""

from repro.cluster.machine import ClusterSpec, ranger
from repro.cluster.pagecache import PartitionCache
from repro.cluster.blast_model import BlastWorkloadModel, protein_workload, nucleotide_workload
from repro.cluster.dispatch import SimResult, simulate_blast_run
from repro.cluster.som_model import SomScalingModel, simulate_som_run
from repro.cluster.glidein import GlideinSpec, simulate_glidein_run
from repro.cluster.faults import (
    FaultModel,
    RestartObservation,
    RestartValidation,
    compare_fault_costs,
    validate_restart_overhead,
)
from repro.cluster.trace import utilization_curve

__all__ = [
    "ClusterSpec",
    "ranger",
    "PartitionCache",
    "BlastWorkloadModel",
    "nucleotide_workload",
    "protein_workload",
    "SimResult",
    "simulate_blast_run",
    "SomScalingModel",
    "simulate_som_run",
    "GlideinSpec",
    "simulate_glidein_run",
    "FaultModel",
    "RestartObservation",
    "RestartValidation",
    "compare_fault_costs",
    "validate_restart_overhead",
    "utilization_curve",
]
