"""repro — reproduction of "Parallelizing BLAST and SOM algorithms with
MapReduce-MPI library" (Sul & Tovchigrechko, IPDPS 2011).

The package contains every substrate the paper depends on, implemented from
scratch in Python:

- :mod:`repro.mpi` — an in-process SPMD MPI runtime (mpi4py-style API).
- :mod:`repro.mrmpi` — a Python port of Sandia's MapReduce-MPI library.
- :mod:`repro.blast` — a from-scratch seed-and-extend BLAST (blastn/blastp)
  with Karlin-Altschul statistics and partitioned 2-bit databases.
- :mod:`repro.som` — online and batch Self-Organizing Maps.
- :mod:`repro.core` — the paper's contributions: MR-MPI BLAST (Fig. 1) and
  MR-MPI batch SOM (Fig. 2), plus serial/HTC/mpiBLAST-like baselines.
- :mod:`repro.simtime` / :mod:`repro.cluster` — a discrete-event cluster
  simulator (TACC Ranger model) used to regenerate the paper's scaling
  figures at 32-1024 cores.
- :mod:`repro.bio` — FASTA handling, synthetic sequence workloads,
  composition vectors.
- :mod:`repro.figures` — one entry point per paper figure.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
