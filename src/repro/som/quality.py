"""SOM quality measures: quantisation error and topographic error.

Quantisation error (mean distance to the BMU) is the objective batch
training drives down; topographic error (fraction of inputs whose two best
units are not grid neighbours) measures topology preservation.  Both are
the standard SOM health checks the test suite and the Fig. 7/8 benches use
to assert the maps are "well-defined".
"""

from __future__ import annotations

import numpy as np

from repro.som.bmu import pairwise_sq_distances
from repro.som.codebook import SOMGrid

__all__ = ["quantization_error", "topographic_error"]


def quantization_error(data: np.ndarray, codebook: np.ndarray, chunk: int = 2048) -> float:
    """Mean Euclidean distance from each input to its BMU."""
    data = np.asarray(data, dtype=np.float64)
    if data.shape[0] == 0:
        raise ValueError("quantization error of an empty dataset is undefined")
    total = 0.0
    for start in range(0, data.shape[0], chunk):
        d2 = pairwise_sq_distances(data[start : start + chunk], codebook)
        total += np.sqrt(d2.min(axis=1)).sum()
    return total / data.shape[0]


def topographic_error(
    data: np.ndarray, codebook: np.ndarray, grid: SOMGrid, chunk: int = 2048
) -> float:
    """Fraction of inputs whose best two units are not 4-neighbours."""
    data = np.asarray(data, dtype=np.float64)
    if data.shape[0] == 0:
        raise ValueError("topographic error of an empty dataset is undefined")
    if codebook.shape[0] != grid.n_units:
        raise ValueError("codebook does not match grid size")
    errors = 0
    neighbor_sets = [set(grid.neighbors(k)) for k in range(grid.n_units)]
    for start in range(0, data.shape[0], chunk):
        d2 = pairwise_sq_distances(data[start : start + chunk], codebook)
        order = np.argsort(d2, axis=1)[:, :2]
        for first, second in order:
            if int(second) not in neighbor_sets[int(first)]:
                errors += 1
    return errors / data.shape[0]
