"""Semi-supervised classification with a trained SOM.

The paper's group uses SOMs for "unsupervised clustering and
semi-supervised classification of metagenomic sequences": train on
everything, label map cells from the sequences with known taxonomy, then
read off labels for the unknowns from the cells they map to.  That workflow
is implemented here:

- :func:`label_units` — majority label per map unit from labelled data;
- :func:`propagate_labels` — unlabelled units inherit the label of the
  nearest labelled unit in *grid* space (the map's topology does the
  generalisation);
- :func:`classify` — label new vectors through their BMUs.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.som.bmu import best_matching_units
from repro.som.codebook import SOMGrid

__all__ = ["label_units", "propagate_labels", "classify"]


def label_units(
    data: np.ndarray,
    labels: Sequence[Hashable],
    codebook: np.ndarray,
    grid: SOMGrid,
) -> list[Optional[Hashable]]:
    """Majority label of the training vectors mapping to each unit.

    Units receiving no vectors get ``None``.  Ties resolve to the label
    that reached the count first (deterministic for fixed input order).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.shape[0] != len(labels):
        raise ValueError(f"{data.shape[0]} vectors but {len(labels)} labels")
    if codebook.shape[0] != grid.n_units:
        raise ValueError("codebook does not match grid")
    votes: list[Counter] = [Counter() for _ in range(grid.n_units)]
    if data.shape[0]:
        for label, bmu in zip(labels, best_matching_units(data, codebook)):
            votes[int(bmu)][label] += 1
    return [v.most_common(1)[0][0] if v else None for v in votes]


def propagate_labels(
    unit_labels: Sequence[Optional[Hashable]], grid: SOMGrid
) -> list[Hashable]:
    """Fill unlabelled units with the nearest labelled unit's label.

    Distance is Euclidean in grid coordinates; ties resolve to the lowest
    unit index.  Raises if no unit is labelled at all.
    """
    if len(unit_labels) != grid.n_units:
        raise ValueError(f"expected {grid.n_units} unit labels, got {len(unit_labels)}")
    labelled = [i for i, lab in enumerate(unit_labels) if lab is not None]
    if not labelled:
        raise ValueError("no labelled units to propagate from")
    pos = grid.positions()
    out = list(unit_labels)
    anchor_pos = pos[labelled]
    for i, lab in enumerate(unit_labels):
        if lab is not None:
            continue
        d2 = ((anchor_pos - pos[i]) ** 2).sum(axis=1)
        out[i] = unit_labels[labelled[int(np.argmin(d2))]]
    return out


def classify(
    vectors: np.ndarray,
    codebook: np.ndarray,
    unit_labels: Sequence[Optional[Hashable]],
    grid: SOMGrid,
    propagate: bool = True,
) -> list[Optional[Hashable]]:
    """Label each vector by its BMU's (possibly propagated) unit label."""
    if len(unit_labels) != grid.n_units:
        raise ValueError(f"expected {grid.n_units} unit labels, got {len(unit_labels)}")
    table = propagate_labels(unit_labels, grid) if propagate else list(unit_labels)
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.shape[0] == 0:
        return []
    bmus = best_matching_units(vectors, codebook)
    return [table[int(b)] for b in bmus]
