"""U-matrix and component planes: the paper's SOM visualisations.

Figures 7 and 8 present U-matrices of trained 50×50 maps.  The U-matrix
value of a neuron is the mean distance between its weight vector and those
of its grid neighbours; cluster interiors show low values, cluster
boundaries show high "ridges".  ``umatrix`` returns the per-neuron (rows ×
cols) form; ``umatrix_full`` the expanded (2r−1 × 2c−1) form with explicit
between-neuron cells, as in classic U-matrix renderings.
"""

from __future__ import annotations

import numpy as np

from repro.som.codebook import SOMGrid

__all__ = ["umatrix", "umatrix_full", "component_planes", "render_ascii"]


def _weights_grid(grid: SOMGrid, codebook: np.ndarray) -> np.ndarray:
    if codebook.shape[0] != grid.n_units:
        raise ValueError(
            f"codebook has {codebook.shape[0]} units, grid expects {grid.n_units}"
        )
    return codebook.reshape(grid.rows, grid.cols, -1)


def umatrix(grid: SOMGrid, codebook: np.ndarray) -> np.ndarray:
    """(rows, cols) mean weight distance from each unit to its neighbours.

    Uses the grid's own adjacency, so hexagonal and toroidal topologies get
    their 6-neighbour / wrapped U-matrices; the plain rectangular case runs
    a fully vectorised path.
    """
    if grid.topology != "rect" or grid.periodic:
        _weights_grid(grid, codebook)  # shape check
        out = np.zeros(grid.n_units)
        for k in range(grid.n_units):
            neigh = grid.neighbors(k)
            d = np.linalg.norm(codebook[neigh] - codebook[k], axis=1)
            out[k] = d.mean() if len(neigh) else 0.0
        return out.reshape(grid.rows, grid.cols)
    w = _weights_grid(grid, codebook)
    total = np.zeros((grid.rows, grid.cols))
    count = np.zeros((grid.rows, grid.cols))
    # vertical neighbour distances
    if grid.rows > 1:
        dv = np.linalg.norm(w[1:] - w[:-1], axis=2)
        total[:-1] += dv
        total[1:] += dv
        count[:-1] += 1
        count[1:] += 1
    if grid.cols > 1:
        dh = np.linalg.norm(w[:, 1:] - w[:, :-1], axis=2)
        total[:, :-1] += dh
        total[:, 1:] += dh
        count[:, :-1] += 1
        count[:, 1:] += 1
    count[count == 0] = 1
    return total / count


def umatrix_full(grid: SOMGrid, codebook: np.ndarray) -> np.ndarray:
    """Expanded (2r−1, 2c−1) U-matrix with explicit edge cells (rect only)."""
    if grid.topology != "rect" or grid.periodic:
        raise ValueError("umatrix_full supports plain rectangular grids only")
    w = _weights_grid(grid, codebook)
    rows, cols = grid.rows, grid.cols
    out = np.zeros((2 * rows - 1, 2 * cols - 1))
    if rows > 1:
        out[1::2, 0::2] = np.linalg.norm(w[1:] - w[:-1], axis=2)
    if cols > 1:
        out[0::2, 1::2] = np.linalg.norm(w[:, 1:] - w[:, :-1], axis=2)
    if rows > 1 and cols > 1:
        d1 = np.linalg.norm(w[1:, 1:] - w[:-1, :-1], axis=2)
        d2 = np.linalg.norm(w[1:, :-1] - w[:-1, 1:], axis=2)
        out[1::2, 1::2] = 0.5 * (d1 + d2)
    base = umatrix(grid, codebook)
    out[0::2, 0::2] = base
    return out


def component_planes(grid: SOMGrid, codebook: np.ndarray) -> np.ndarray:
    """(dim, rows, cols) view: one heat-map per input dimension."""
    w = _weights_grid(grid, codebook)
    return np.moveaxis(w, 2, 0)


_SHADES = " .:-=+*#%@"


def render_ascii(matrix: np.ndarray, width: int = 10) -> str:
    """Terminal rendering of a U-matrix (dark = ridge), for the examples."""
    m = np.asarray(matrix, dtype=np.float64)
    lo, hi = float(m.min()), float(m.max())
    span = (hi - lo) or 1.0
    idx = ((m - lo) / span * (len(_SHADES) - 1)).astype(int)
    del width
    return "\n".join("".join(_SHADES[v] for v in row) for row in idx)
