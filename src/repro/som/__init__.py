"""Self-Organizing Maps: online and batch trainers (paper §II.D).

A SOM is a grid of K neurons, each carrying an n-dimensional weight vector;
the matrix of all weight vectors is the *codebook*.  Training pulls weight
vectors toward input patterns, with a neighbourhood kernel coupling nearby
neurons so the map becomes a topology-preserving projection.

- :class:`~repro.som.online.OnlineSOM` — Kohonen's original sequential rule
  (Eqs. 1-4): one input at a time, learning rate α(t) and shrinking
  neighbourhood σ(t).
- :class:`~repro.som.batch.BatchSOM` — the "batch" formulation (Eq. 5): all
  updates applied at the end of an epoch from neighbourhood-weighted sums.
  Batch training is *independent of input order*, which is what makes the
  MapReduce parallelisation exact rather than approximate.

The per-epoch numerator/denominator accumulation is exposed as a standalone
kernel (:func:`~repro.som.batch.accumulate_batch`) so the parallel
implementation in :mod:`repro.core.mrsom` executes literally the same code
per input block — the parallel == serial parity tests rest on that.
"""

from repro.som.codebook import SOMGrid, init_codebook
from repro.som.neighborhood import gaussian_kernel, bubble_kernel, radius_schedule
from repro.som.bmu import best_matching_units, pairwise_sq_distances
from repro.som.batch import BatchSOM, accumulate_batch, batch_update
from repro.som.online import OnlineSOM
from repro.som.umatrix import umatrix, component_planes
from repro.som.quality import quantization_error, topographic_error
from repro.som.classify import classify, label_units, propagate_labels
from repro.som.export import codebook_to_rgb, write_pgm, write_ppm

__all__ = [
    "SOMGrid",
    "init_codebook",
    "gaussian_kernel",
    "bubble_kernel",
    "radius_schedule",
    "best_matching_units",
    "pairwise_sq_distances",
    "BatchSOM",
    "accumulate_batch",
    "batch_update",
    "OnlineSOM",
    "umatrix",
    "component_planes",
    "quantization_error",
    "topographic_error",
    "classify",
    "label_units",
    "propagate_labels",
    "write_pgm",
    "write_ppm",
    "codebook_to_rgb",
]
