"""Image export for SOM visualisations (no plotting dependencies).

Figures 7-8 of the paper are images; these writers produce the same
artifacts as portable Netpbm files — ``PGM`` (grayscale, for U-matrices)
and ``PPM`` (colour, for RGB codebook maps) — viewable with any image tool
and diffable in tests.
"""

from __future__ import annotations

import os

import numpy as np

from repro.som.codebook import SOMGrid

__all__ = ["write_pgm", "write_ppm", "codebook_to_rgb"]


def _normalise(matrix: np.ndarray) -> np.ndarray:
    m = np.asarray(matrix, dtype=np.float64)
    lo, hi = float(m.min()), float(m.max())
    span = (hi - lo) or 1.0
    return ((m - lo) / span * 255.0).round().astype(np.uint8)


def write_pgm(matrix: np.ndarray, path: str | os.PathLike, invert: bool = False) -> str:
    """Write a 2-D array as a binary PGM (min->black, max->white)."""
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ValueError(f"PGM needs a 2-D array, got shape {m.shape}")
    pixels = _normalise(m)
    if invert:
        pixels = 255 - pixels
    path = os.fspath(path)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{m.shape[1]} {m.shape[0]}\n255\n".encode("ascii"))
        fh.write(pixels.tobytes())
    return path


def write_ppm(rgb: np.ndarray, path: str | os.PathLike) -> str:
    """Write an (H, W, 3) array in [0, 1] or [0, 255] as a binary PPM."""
    img = np.asarray(rgb, dtype=np.float64)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError(f"PPM needs an (H, W, 3) array, got shape {img.shape}")
    if img.max() <= 1.0:
        img = img * 255.0
    pixels = np.clip(img, 0, 255).round().astype(np.uint8)
    path = os.fspath(path)
    with open(path, "wb") as fh:
        fh.write(f"P6\n{img.shape[1]} {img.shape[0]}\n255\n".encode("ascii"))
        fh.write(pixels.tobytes())
    return path


def codebook_to_rgb(grid: SOMGrid, codebook: np.ndarray, scale: int = 1) -> np.ndarray:
    """An RGB image of a 3-dimensional codebook (Fig. 7's colour panel).

    ``scale`` repeats each neuron into a scale x scale pixel block.
    """
    if codebook.shape != (grid.n_units, 3):
        raise ValueError(
            f"need a ({grid.n_units}, 3) RGB codebook, got {codebook.shape}"
        )
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    img = np.clip(codebook.reshape(grid.rows, grid.cols, 3), 0.0, 1.0)
    if scale > 1:
        img = np.repeat(np.repeat(img, scale, axis=0), scale, axis=1)
    return img
