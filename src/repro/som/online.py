"""Online (sequential) SOM training — the paper's Eqs. 1-3 baseline.

One input vector at a time: find the BMU, pull it and its neighbourhood
toward the input with a decaying learning rate.  Unlike batch training the
result *depends on presentation order* (paper §II.D) — a property the test
suite verifies as the contrast to the batch trainer's order independence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.som.codebook import SOMGrid, init_codebook
from repro.som.neighborhood import radius_schedule
from repro.util.rng import as_rng

__all__ = ["OnlineSOM"]


@dataclass
class OnlineSOM:
    """Kohonen's original training rule.

    ``alpha`` decays linearly from ``alpha0`` to ``alpha_final`` over all
    presented samples; σ follows the same schedule as the batch trainer.
    """

    grid: SOMGrid
    dim: int
    alpha0: float = 0.5
    alpha_final: float = 0.01
    init: str = "linear"
    seed: int = 0
    initial_radius: float | None = None
    final_radius: float = 1.0
    shuffle: bool = False
    codebook: np.ndarray | None = None
    _sq: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not (0 < self.alpha0 <= 1):
            raise ValueError(f"alpha0 must be in (0, 1], got {self.alpha0}")
        if not (0 < self.alpha_final <= self.alpha0):
            raise ValueError("alpha_final must be in (0, alpha0]")

    def train(self, data: np.ndarray, epochs: int = 10) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(f"data must be (N, {self.dim}), got {data.shape}")
        if self.codebook is None:
            self.codebook = init_codebook(self.grid, data, method=self.init,
                                          seed_or_rng=self.seed)
        codebook = self.codebook
        if self._sq is None:
            self._sq = self.grid.grid_sq_distances()
        initial = self.initial_radius
        if initial is None:
            initial = max(self.grid.diagonal / 2.0, self.final_radius)
        sigmas = radius_schedule(initial, self.final_radius, epochs)
        n = data.shape[0]
        total = epochs * n
        alphas = np.linspace(self.alpha0, self.alpha_final, max(total, 1))
        rng = as_rng(self.seed) if self.shuffle else None
        step = 0
        for epoch in range(epochs):
            sigma = float(sigmas[epoch])
            order = rng.permutation(n) if rng is not None else np.arange(n)
            for i in order:
                x = data[i]
                d2 = ((codebook - x) ** 2).sum(axis=1)
                bmu = int(np.argmin(d2))
                h = np.exp(-self._sq[bmu] / (sigma * sigma))
                codebook += alphas[step] * h[:, None] * (x - codebook)
                step += 1
        self.codebook = codebook
        return codebook
