"""Best Matching Unit search (paper Eqs. 1-2), fully vectorised.

The BMU of an input x is the neuron minimising ‖x − w_i‖ (Eq. 2).  Squared
distances are computed as ‖x‖² + ‖w‖² − 2·x·wᵀ so the inner loop is one
matrix multiply; inputs are processed in chunks to bound the (chunk × K)
distance matrix, which is how the full 10 000 × 2 500 × 500-D searches of
Fig. 8 stay fast and memory-safe.

Ties: the paper breaks BMU ties randomly.  The default here is the lowest
index (deterministic — required for the parallel == serial parity tests and
harmless statistically); pass an ``rng`` to get the paper's randomised
tie-breaking.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_rng

__all__ = ["pairwise_sq_distances", "best_matching_units"]


def pairwise_sq_distances(data: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """(N, K) squared Euclidean distances (clipped at 0 for FP safety)."""
    data = np.asarray(data, dtype=np.float64)
    codebook = np.asarray(codebook, dtype=np.float64)
    if data.ndim != 2 or codebook.ndim != 2 or data.shape[1] != codebook.shape[1]:
        raise ValueError(
            f"shape mismatch: data {data.shape} vs codebook {codebook.shape}"
        )
    d2 = (
        (data**2).sum(axis=1)[:, None]
        + (codebook**2).sum(axis=1)[None, :]
        - 2.0 * (data @ codebook.T)
    )
    np.maximum(d2, 0.0, out=d2)
    return d2


def best_matching_units(
    data: np.ndarray,
    codebook: np.ndarray,
    chunk: int = 2048,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """BMU index for every input row.

    ``rng=None`` → deterministic lowest-index tie-breaking;
    otherwise ties are broken uniformly at random (paper behaviour).
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    out = np.empty(n, dtype=np.int64)
    generator = None if rng is None else as_rng(rng)
    for start in range(0, n, chunk):
        block = data[start : start + chunk]
        d2 = pairwise_sq_distances(block, codebook)
        if generator is None:
            out[start : start + block.shape[0]] = np.argmin(d2, axis=1)
        else:
            mins = d2.min(axis=1, keepdims=True)
            for r in range(block.shape[0]):
                ties = np.nonzero(d2[r] <= mins[r] + 1e-12)[0]
                out[start + r] = ties[generator.integers(0, ties.size)]
    return out
