"""Batch SOM training (paper Eq. 5).

Per epoch, with BMU assignments b(x) frozen at the epoch-start codebook::

    w_i(end) = Σ_x h_{b(x),i} · x   /   Σ_x h_{b(x),i}

Both sums decompose over any partition of the inputs, which is exactly the
property the paper's MapReduce-MPI SOM exploits: each map() call accumulates
the numerator and denominator over its block of input vectors, and a single
``MPI_Reduce`` adds the partial sums (Fig. 2).  :func:`accumulate_batch` is
that per-block kernel; the serial trainer and the parallel driver both call
it, so parallel and serial training are the same arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.som.bmu import best_matching_units
from repro.som.codebook import SOMGrid, init_codebook
from repro.som.neighborhood import gaussian_kernel, radius_schedule
from repro.som.quality import quantization_error

__all__ = ["accumulate_batch", "batch_update", "BatchSOM"]


def accumulate_batch(
    data: np.ndarray,
    codebook: np.ndarray,
    kernel: np.ndarray,
    num: np.ndarray | None = None,
    denom: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate Eq. 5 numerator/denominator contributions of one block.

    ``kernel`` is the (K, K) neighbourhood matrix h[c, i] for the current
    radius.  Pass existing ``num`` (K, dim) and ``denom`` (K,) arrays to
    accumulate in place (the mapper's running accumulators); fresh zeroed
    arrays are created otherwise.
    """
    data = np.asarray(data, dtype=np.float64)
    k, dim = codebook.shape
    if kernel.shape != (k, k):
        raise ValueError(f"kernel shape {kernel.shape} != ({k}, {k})")
    if num is None:
        num = np.zeros((k, dim))
    if denom is None:
        denom = np.zeros(k)
    if data.shape[0] == 0:
        return num, denom
    bmus = best_matching_units(data, codebook, chunk=chunk)
    # h rows selected by BMU: contributions are hᵀ·x summed per unit.
    # counts-based formulation: for unit c with inputs X_c,
    #   num += Σ_c kernel[c]ᵀ ⊗ sum(X_c);  denom += Σ_c kernel[c]ᵀ·|X_c|
    counts = np.bincount(bmus, minlength=k).astype(np.float64)
    sums = np.zeros((k, dim))
    np.add.at(sums, bmus, data)
    num += kernel.T @ sums
    denom += kernel.T @ counts
    return num, denom


def batch_update(
    codebook: np.ndarray, num: np.ndarray, denom: np.ndarray
) -> np.ndarray:
    """Apply Eq. 5: new weights = num/denom; units nobody touched keep
    their old weights (standard batch-SOM convention for empty units)."""
    new = codebook.copy()
    alive = denom > 0
    new[alive] = num[alive] / denom[alive, None]
    return new


@dataclass
class BatchSOM:
    """Serial batch-SOM trainer — also the arithmetic reference for mrsom.

    Parameters mirror the paper's setup: a 2-D grid, Gaussian neighbourhood,
    radius shrinking linearly from half the grid diagonal to one cell.
    """

    grid: SOMGrid
    dim: int
    init: str = "linear"
    seed: int = 0
    initial_radius: float | None = None
    final_radius: float = 1.0
    codebook: np.ndarray | None = None
    #: per-epoch quantization error, appended during train()
    history: list[float] = field(default_factory=list)

    def _ensure_codebook(self, data: np.ndarray) -> np.ndarray:
        if self.codebook is None:
            self.codebook = init_codebook(self.grid, data, method=self.init,
                                          seed_or_rng=self.seed)
        return self.codebook

    def radii(self, epochs: int) -> np.ndarray:
        initial = self.initial_radius
        if initial is None:
            initial = max(self.grid.diagonal / 2.0, self.final_radius)
        return radius_schedule(initial, self.final_radius, epochs)

    def train(self, data: np.ndarray, epochs: int = 10, track_error: bool = False
              ) -> np.ndarray:
        """Run ``epochs`` batch epochs; returns the trained codebook."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(f"data must be (N, {self.dim}), got {data.shape}")
        codebook = self._ensure_codebook(data)
        sq = self.grid.grid_sq_distances()
        for sigma in self.radii(epochs):
            kernel = gaussian_kernel(sq, float(sigma))
            num, denom = accumulate_batch(data, codebook, kernel)
            codebook = batch_update(codebook, num, denom)
            if track_error:
                self.history.append(quantization_error(data, codebook))
        self.codebook = codebook
        return codebook
