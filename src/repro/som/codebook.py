"""SOM grid geometry and codebook initialisation.

The paper trains 50×50 maps; "initially all weight vectors are either
assigned random values or linearly generated from the first two PCA
eigen-vectors" — both strategies are provided.

Beyond the paper's rectangular grid, two standard SOM topologies are
supported: ``hex`` (each interior neuron has six equidistant neighbours —
the classic SOM_PAK layout, which reduces axis artefacts in U-matrices)
and periodic (toroidal) boundaries for the rectangular grid (removes map
edge effects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["SOMGrid", "init_codebook"]

_SQRT3_2 = np.sqrt(3.0) / 2.0


@dataclass(frozen=True)
class SOMGrid:
    """A 2-D neuron grid.

    Neuron k sits at row ``k // cols``, column ``k % cols``.  Grid distances
    (Eq. 4's ``r_i``) are Euclidean in cell units; ``hex`` topology offsets
    odd rows by half a cell and compresses row spacing to √3/2 so the six
    neighbours of an interior unit are equidistant.  ``periodic`` wraps the
    rectangular grid into a torus (not combined with hex).
    """

    rows: int
    cols: int
    topology: str = "rect"
    periodic: bool = False

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        if self.topology not in ("rect", "hex"):
            raise ValueError(f"topology must be 'rect' or 'hex', got {self.topology!r}")
        if self.periodic and self.topology == "hex":
            raise ValueError("periodic boundaries are supported for 'rect' only")

    @property
    def n_units(self) -> int:
        return self.rows * self.cols

    @property
    def diagonal(self) -> float:
        """Largest grid distance (the paper's initial radius scale)."""
        if self.periodic:
            return float(np.hypot(self.rows / 2.0, self.cols / 2.0))
        pos = self.positions()
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        return float(np.hypot(*(hi - lo))) or 1.0

    def positions(self) -> np.ndarray:
        """(K, 2) array of (y, x) coordinates in unit order."""
        r, c = np.divmod(np.arange(self.n_units), self.cols)
        if self.topology == "hex":
            y = r * _SQRT3_2
            x = c + 0.5 * (r % 2)
            return np.stack([y, x], axis=1).astype(np.float64)
        return np.stack([r, c], axis=1).astype(np.float64)

    def grid_sq_distances(self) -> np.ndarray:
        """(K, K) squared grid distances ‖r_i − r_j‖² (Eq. 4's exponent)."""
        if self.periodic:
            r, c = np.divmod(np.arange(self.n_units), self.cols)
            dr = np.abs(r[:, None] - r[None, :])
            dr = np.minimum(dr, self.rows - dr)
            dc = np.abs(c[:, None] - c[None, :])
            dc = np.minimum(dc, self.cols - dc)
            return (dr.astype(np.float64) ** 2 + dc.astype(np.float64) ** 2)
        pos = self.positions()
        diff = pos[:, None, :] - pos[None, :, :]
        return (diff**2).sum(axis=2)

    def neighbors(self, k: int) -> list[int]:
        """Adjacent units of ``k``: 4 on rect grids, 6 on hex (edges fewer,
        except on a torus where every unit has the full set)."""
        if not (0 <= k < self.n_units):
            raise IndexError(f"unit {k} outside grid of {self.n_units}")
        r, c = divmod(k, self.cols)
        if self.topology == "hex":
            # Offset coordinates: odd rows shift right.
            if r % 2 == 0:
                deltas = [(-1, -1), (-1, 0), (0, -1), (0, 1), (1, -1), (1, 0)]
            else:
                deltas = [(-1, 0), (-1, 1), (0, -1), (0, 1), (1, 0), (1, 1)]
        else:
            deltas = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        out = []
        for dr, dc in deltas:
            rr, cc = r + dr, c + dc
            if self.periodic:
                rr %= self.rows
                cc %= self.cols
            if 0 <= rr < self.rows and 0 <= cc < self.cols:
                unit = rr * self.cols + cc
                if unit != k:
                    out.append(unit)
        return out


def init_codebook(
    grid: SOMGrid,
    data: np.ndarray,
    method: str = "linear",
    seed_or_rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Initial codebook of shape (K, dim).

    ``"random"`` samples uniformly inside the data bounding box;
    ``"linear"`` spreads the grid over the plane of the first two principal
    components (the deterministic initialisation the paper mentions, which
    also makes batch training reproducible without luck).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 1:
        raise ValueError(f"data must be a non-empty (N, dim) matrix, got {data.shape}")
    dim = data.shape[1]
    if method == "random":
        rng = as_rng(seed_or_rng)
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        return lo + (hi - lo) * rng.random((grid.n_units, dim))
    if method == "linear":
        mean = data.mean(axis=0)
        centered = data - mean
        # Principal directions via SVD of the (N, dim) matrix.
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        # Canonicalise singular-vector signs (SVD is sign-ambiguous and the
        # ambiguity depends on row order): make each direction's largest
        # component positive so the init is independent of input order.
        for r in range(vt.shape[0]):
            pivot = int(np.argmax(np.abs(vt[r])))
            if vt[r, pivot] < 0:
                vt[r] = -vt[r]
        if vt.shape[0] < 2 or s[1] == 0:
            # Degenerate data (rank < 2): fall back to tiny deterministic
            # jitter around the mean so units remain distinct.
            jitter = np.linspace(-0.5, 0.5, grid.n_units)[:, None]
            direction = vt[0] if vt.shape[0] >= 1 and s[0] > 0 else np.ones(dim) / np.sqrt(dim)
            return mean + jitter * direction
        scale = s[:2] / np.sqrt(max(data.shape[0] - 1, 1))
        pos = grid.positions()
        # Map grid coords to [-1, 1]^2.
        extent = pos.max(axis=0) - pos.min(axis=0)
        extent[extent == 0] = 1.0
        uv = 2.0 * (pos - pos.min(axis=0)) / extent - 1.0
        return mean + np.outer(uv[:, 0] * scale[0], vt[0]) + np.outer(uv[:, 1] * scale[1], vt[1])
    raise ValueError(f"unknown init method {method!r} (use 'random' or 'linear')")
