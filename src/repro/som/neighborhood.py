"""Neighbourhood kernels and the radius schedule (paper Eq. 4).

The Gaussian kernel h_ci(t) = exp(−‖r_c − r_i‖² / σ(t)²) couples each
neuron to the BMU; σ(t) "monotonically decreases as iteration goes from a
value no less than half of the largest diagonal of the map to a value equal
to the width of a single cell".
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_kernel", "bubble_kernel", "radius_schedule"]


def gaussian_kernel(grid_sq_dists: np.ndarray, sigma: float) -> np.ndarray:
    """exp(−d² / σ²) for an array of squared grid distances."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return np.exp(-grid_sq_dists / (sigma * sigma))


def bubble_kernel(grid_sq_dists: np.ndarray, sigma: float) -> np.ndarray:
    """1 inside radius σ, 0 outside (the cheap classic alternative)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return (grid_sq_dists <= sigma * sigma).astype(np.float64)


def radius_schedule(initial: float, final: float, epochs: int) -> np.ndarray:
    """Linearly decreasing σ per epoch, from ``initial`` down to ``final``.

    ``initial`` defaults in the trainers to half the grid diagonal and
    ``final`` to 1.0 (one cell width), per the paper's description.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if initial < final:
        raise ValueError(f"initial radius {initial} must be >= final {final}")
    if final <= 0:
        raise ValueError(f"final radius must be positive, got {final}")
    if epochs == 1:
        return np.array([initial], dtype=np.float64)
    return np.linspace(initial, final, epochs)
