"""k-mer composition vectors: the SOM's input space.

The paper's SOM application clusters metagenomic sequences "in a
multi-dimensional sequence composition space" — tetranucleotide frequency
vectors (k=4, 256 dimensions).  These helpers turn sequences into that
representation, fully vectorised.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bio.alphabet import DNA
from repro.bio.seq import SeqRecord

__all__ = ["kmer_frequencies", "composition_matrix", "kmer_labels"]


def kmer_frequencies(seq: str, k: int = 4, normalize: bool = True) -> np.ndarray:
    """Frequency vector of all ``4**k`` k-mers of a DNA sequence.

    Sliding windows are counted with a vectorised polynomial rolling encode
    (no Python loop over positions).  Ambiguity characters participate via
    their canonical substitution (see :mod:`repro.bio.alphabet`).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_bins = 4**k
    codes = DNA.encode(seq).astype(np.int64)
    n = codes.size - k + 1
    if n <= 0:
        return np.zeros(n_bins, dtype=np.float64)
    # index(i) = sum_j codes[i+j] * 4**(k-1-j): build via strided windows.
    weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(codes, k)
    idx = windows @ weights
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    if normalize:
        counts /= counts.sum()
    return counts


def composition_matrix(
    records: Sequence[SeqRecord] | Iterable[SeqRecord],
    k: int = 4,
    normalize: bool = True,
) -> np.ndarray:
    """Stack per-record k-mer frequency vectors into an (N, 4**k) matrix."""
    rows = [kmer_frequencies(rec.seq, k=k, normalize=normalize) for rec in records]
    if not rows:
        return np.zeros((0, 4**k), dtype=np.float64)
    return np.vstack(rows)


def kmer_labels(k: int = 4) -> list[str]:
    """The k-mer string for each vector dimension, in index order."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    letters = "ACGT"
    labels = [""]
    for _ in range(k):
        labels = [prefix + ch for prefix in labels for ch in letters]
    return labels
