"""Sequence records and basic molecular-biology transforms."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SeqRecord", "reverse_complement", "translate", "CODON_TABLE"]

_COMPLEMENT = str.maketrans("ACGTNacgtn", "TGCANtgcan")


@dataclass
class SeqRecord:
    """One FASTA entry: ``>id description`` + sequence."""

    id: str
    seq: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("SeqRecord id must be non-empty")
        self.seq = self.seq.upper()

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def header(self) -> str:
        return f"{self.id} {self.description}".strip()

    def slice(self, start: int, end: int, suffix: str | None = None) -> "SeqRecord":
        """Sub-record covering ``[start, end)``; id records the coordinates."""
        if not (0 <= start < end <= len(self.seq)):
            raise ValueError(f"bad slice [{start}, {end}) of length-{len(self.seq)} sequence")
        new_id = f"{self.id}:{start}-{end}" if suffix is None else f"{self.id}{suffix}"
        return SeqRecord(new_id, self.seq[start:end], self.description)


def reverse_complement(seq: str) -> str:
    """Watson-Crick reverse complement (preserves N)."""
    return seq.translate(_COMPLEMENT)[::-1]


#: Standard genetic code (DNA codons).
CODON_TABLE = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}


def translate(seq: str, frame: int = 0, stop: bool = True) -> str:
    """Translate a DNA sequence in the given frame (0, 1, 2).

    Codons containing ambiguity characters translate to ``X``.  With
    ``stop=True`` translation halts at the first stop codon (excluded).
    """
    if frame not in (0, 1, 2):
        raise ValueError(f"frame must be 0, 1 or 2, got {frame}")
    seq = seq.upper()
    out: list[str] = []
    for i in range(frame, len(seq) - 2, 3):
        aa = CODON_TABLE.get(seq[i : i + 3], "X")
        if aa == "*" and stop:
            break
        out.append(aa)
    return "".join(out)
