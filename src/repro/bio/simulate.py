"""Synthetic sequence workloads replacing the paper's NCBI downloads.

The paper searches shredded RefSeq fragments against a 364 Gbp nucleotide DB
and an env_nr protein subset against UniRef100.  Neither dataset is
available offline, so these generators produce scaled-down equivalents with
the properties the experiments exercise:

- databases contain *homologs* of the queries (mutated copies), so searches
  produce real hit distributions across DB partitions;
- queries derived from DB sequences produce self-hits (the paper explicitly
  excludes self-hits of RefSeq fragments — mrblast supports the same);
- per-query search cost is heavy-tailed (repeat-rich sequences), driving the
  load-balancing behaviour the scaling figures depend on.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bio.seq import SeqRecord
from repro.util.rng import as_rng

__all__ = [
    "random_genome",
    "random_protein",
    "mutate_dna",
    "synthetic_community",
    "synthetic_nt_database",
    "synthetic_protein_database",
]

_DNA = np.frombuffer(b"ACGT", dtype=np.uint8)
_AA = np.frombuffer(b"ARNDCQEGHILKMFPSTWYV", dtype=np.uint8)
#: Approximate Robinson-Robinson amino-acid background frequencies in the
#: order of ``_AA`` (normalised below).
_AA_FREQ = np.array(
    [7.8, 5.1, 4.5, 5.4, 1.9, 4.3, 6.3, 7.4, 2.2, 5.1,
     9.0, 5.7, 2.2, 3.9, 5.2, 7.1, 5.8, 1.3, 3.2, 6.4]
)
_AA_FREQ = _AA_FREQ / _AA_FREQ.sum()


def random_genome(
    length: int,
    gc: float = 0.5,
    seed_or_rng: int | np.random.Generator | None = 0,
    repeat_fraction: float = 0.0,
    repeat_unit: int = 24,
) -> str:
    """Random DNA with a target GC content and optional tandem repeats.

    ``repeat_fraction`` of the genome is rewritten as tandem copies of a
    random ``repeat_unit``-mer — repeats are what makes BLAST search time
    heavy-tailed and what low-complexity filtering targets.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if not (0.0 <= gc <= 1.0):
        raise ValueError(f"gc must be in [0, 1], got {gc}")
    if not (0.0 <= repeat_fraction <= 1.0):
        raise ValueError(f"repeat_fraction must be in [0, 1], got {repeat_fraction}")
    rng = as_rng(seed_or_rng)
    p = np.array([(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2])
    codes = rng.choice(4, size=length, p=p).astype(np.uint8)
    if repeat_fraction > 0 and length > repeat_unit * 2:
        n_repeat_bases = int(length * repeat_fraction)
        # A few long tandem arrays, not many short ones: long arrays are what
        # produce pathological BLAST hit counts and strong k-mer skew.
        n_regions = max(1, n_repeat_bases // 2048)
        span = min(max(n_repeat_bases // n_regions, repeat_unit * 2), length)
        for _ in range(n_regions):
            unit = rng.integers(0, 4, size=repeat_unit).astype(np.uint8)
            start = int(rng.integers(0, length - span + 1))
            tiled = np.tile(unit, span // repeat_unit + 1)[:span]
            codes[start : start + span] = tiled
    return _DNA[codes].tobytes().decode("ascii")


def random_protein(
    length: int, seed_or_rng: int | np.random.Generator | None = 0
) -> str:
    """Random protein drawn from background amino-acid frequencies."""
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    rng = as_rng(seed_or_rng)
    codes = rng.choice(20, size=length, p=_AA_FREQ)
    return _AA[codes].tobytes().decode("ascii")


def mutate_dna(
    seq: str,
    rate: float,
    seed_or_rng: int | np.random.Generator | None = 0,
    indel_fraction: float = 0.1,
) -> str:
    """Mutate DNA: ``rate`` of positions change; a fraction become indels.

    Substitutions pick one of the three other bases; indels are single-base
    insertions or deletions (half each), producing the gapped alignments the
    gapped extension stage must recover.
    """
    if not (0.0 <= rate <= 1.0):
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if not (0.0 <= indel_fraction <= 1.0):
        raise ValueError(f"indel_fraction must be in [0, 1], got {indel_fraction}")
    rng = as_rng(seed_or_rng)
    out: list[str] = []
    bases = "ACGT"
    for ch in seq:
        r = rng.random()
        if r >= rate:
            out.append(ch)
            continue
        kind = rng.random()
        if kind < indel_fraction / 2:
            continue  # deletion
        if kind < indel_fraction:
            out.append(ch)
            out.append(bases[rng.integers(0, 4)])  # insertion after
            continue
        choices = bases.replace(ch, "") or bases
        out.append(choices[rng.integers(0, len(choices))])
    return "".join(out)


@dataclass
class Community:
    """A synthetic metagenomic community: genomes plus derived reads."""

    genomes: list[SeqRecord]
    reads: list[SeqRecord] = field(default_factory=list)

    @property
    def total_bases(self) -> int:
        return sum(len(g) for g in self.genomes)


def synthetic_community(
    n_genomes: int = 8,
    genome_length: int = 20_000,
    seed: int = 0,
    gc_range: tuple[float, float] = (0.3, 0.7),
    repeat_fraction: float = 0.02,
) -> Community:
    """Generate a community of genomes with distinct GC contents.

    Distinct GC (and hence distinct tetranucleotide composition) is what
    makes SOM-based metagenomic binning work, so the binning example can
    recover the genome-of-origin structure.
    """
    rng = as_rng(seed)
    genomes = []
    for i in range(n_genomes):
        gc = gc_range[0] + (gc_range[1] - gc_range[0]) * (
            i / max(n_genomes - 1, 1)
        )
        seq = random_genome(
            genome_length, gc=gc, seed_or_rng=rng, repeat_fraction=repeat_fraction
        )
        genomes.append(SeqRecord(f"genome{i:03d}", seq, f"synthetic gc={gc:.2f}"))
    return Community(genomes=genomes)


def synthetic_nt_database(
    community: Community,
    n_decoys: int = 8,
    decoy_length: int = 10_000,
    homolog_rate: float = 0.05,
    seed: int = 1,
    homologs_per_genome: int = 1,
) -> list[SeqRecord]:
    """Build a nucleotide DB: mutated homologs of the community + decoys.

    Mirrors the paper's setup where queries (shredded RefSeq) have true
    homologs in the database alongside unrelated sequence.  With
    ``homologs_per_genome > 1``, each genome gets several independently
    mutated copies (deeper hit lists per query — heavier shuffles).
    """
    if homologs_per_genome < 1:
        raise ValueError(f"homologs_per_genome must be >= 1, got {homologs_per_genome}")
    rng = as_rng(seed)
    db: list[SeqRecord] = []
    for g in community.genomes:
        for copy in range(homologs_per_genome):
            hom = mutate_dna(g.seq, rate=homolog_rate, seed_or_rng=rng)
            suffix = "" if copy == 0 else f"_v{copy}"
            db.append(SeqRecord(f"db_{g.id}{suffix}", hom, f"homolog of {g.id}"))
    for d in range(n_decoys):
        db.append(
            SeqRecord(
                f"decoy{d:03d}",
                random_genome(decoy_length, gc=0.5, seed_or_rng=rng),
                "unrelated decoy",
            )
        )
    return db


def synthetic_protein_database(
    n_families: int = 6,
    members_per_family: int = 4,
    length: int = 300,
    mutation_rate: float = 0.2,
    seed: int = 2,
) -> tuple[list[SeqRecord], list[SeqRecord]]:
    """Protein DB of families plus one query per family.

    Returns ``(queries, database)``.  Family members are point-mutated
    copies, giving blastp remote-homology work in each family.
    """
    rng = as_rng(seed)
    aa = "ARNDCQEGHILKMFPSTWYV"
    queries: list[SeqRecord] = []
    db: list[SeqRecord] = []
    for f in range(n_families):
        ancestor = random_protein(length, seed_or_rng=rng)
        queries.append(SeqRecord(f"qfam{f:02d}", ancestor, "family query"))
        for m in range(members_per_family):
            chars = list(ancestor)
            for i in range(len(chars)):
                if rng.random() < mutation_rate:
                    chars[i] = aa[rng.integers(0, 20)]
            db.append(SeqRecord(f"fam{f:02d}_m{m}", "".join(chars), f"family {f}"))
    return queries, db
