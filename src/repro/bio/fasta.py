"""FASTA reading, writing, splitting and offset indexing.

``split_fasta`` implements the paper's query-block preparation: "the query
blocks are created before executing our MPI process by splitting the entire
query set into multiple FASTA files of a specified target size each."

``FastaIndex`` implements the paper's announced *future work*: "an index of
sequence offsets in the input FASTA file ... allow[s] selecting the size of
the query blocks dynamically after the start of the program" — the dynamic
chunking ablation uses it.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.bio.seq import SeqRecord

__all__ = ["read_fasta", "write_fasta", "split_fasta", "FastaIndex"]


def _open_text(path, mode: str):
    """Open a FASTA path, transparently gzipped when it ends in ``.gz``."""
    if os.fspath(path).endswith(".gz"):
        import gzip

        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def read_fasta(source: str | os.PathLike | io.TextIOBase) -> Iterator[SeqRecord]:
    """Stream records from a FASTA file path (``.gz`` supported) or handle."""
    own = isinstance(source, (str, os.PathLike))
    handle = _open_text(source, "r") if own else source
    try:
        header: str | None = None
        chunks: list[str] = []
        for line in handle:
            line = line.rstrip("\n\r")
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield _make_record(header, chunks)
                header = line[1:]
                chunks = []
            else:
                if header is None:
                    raise ValueError("FASTA parse error: sequence data before first '>'")
                chunks.append(line.strip())
        if header is not None:
            yield _make_record(header, chunks)
    finally:
        if own:
            handle.close()


def _make_record(header: str, chunks: list[str]) -> SeqRecord:
    parts = header.split(None, 1)
    rec_id = parts[0] if parts else ""
    desc = parts[1] if len(parts) > 1 else ""
    return SeqRecord(rec_id, "".join(chunks), desc)


def write_fasta(
    records: Iterable[SeqRecord],
    dest: str | os.PathLike | io.TextIOBase,
    width: int = 70,
) -> int:
    """Write records; returns the number written."""
    if width < 1:
        raise ValueError(f"line width must be >= 1, got {width}")
    own = isinstance(dest, (str, os.PathLike))
    handle = _open_text(dest, "w") if own else dest
    n = 0
    try:
        for rec in records:
            handle.write(f">{rec.header}\n")
            for i in range(0, len(rec.seq), width):
                handle.write(rec.seq[i : i + width])
                handle.write("\n")
            n += 1
    finally:
        if own:
            handle.close()
    return n


def split_fasta(
    records: Sequence[SeqRecord],
    out_dir: str | os.PathLike,
    seqs_per_block: int,
    prefix: str = "block",
) -> list[str]:
    """Split a query set into FASTA block files of ``seqs_per_block`` each.

    Returns the file paths in block order.  The last block may be short.
    """
    if seqs_per_block < 1:
        raise ValueError(f"seqs_per_block must be >= 1, got {seqs_per_block}")
    os.makedirs(out_dir, exist_ok=True)
    paths: list[str] = []
    for b in range(0, len(records), seqs_per_block):
        path = os.path.join(os.fspath(out_dir), f"{prefix}.{len(paths):05d}.fasta")
        write_fasta(records[b : b + seqs_per_block], path)
        paths.append(path)
    return paths


@dataclass
class _IndexEntry:
    id: str
    offset: int  # byte offset of the '>' line
    length: int  # sequence length in bases


class FastaIndex:
    """Byte-offset index over a FASTA file for random access by entry number.

    Built in one sequential pass; afterwards any contiguous range of entries
    can be materialised without re-reading the whole file, which is what
    dynamic query chunking needs.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._entries: list[_IndexEntry] = []
        self._build()

    def _build(self) -> None:
        with open(self.path, "rb") as fh:
            offset = 0
            current: _IndexEntry | None = None
            for line in fh:
                if line.startswith(b">"):
                    if current is not None:
                        self._entries.append(current)
                    rec_id = line[1:].split(None, 1)[0].decode("ascii") if len(line) > 1 else ""
                    current = _IndexEntry(rec_id, offset, 0)
                elif current is not None:
                    current.length += len(line.strip())
                offset += len(line)
            if current is not None:
                self._entries.append(current)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def ids(self) -> list[str]:
        return [e.id for e in self._entries]

    @property
    def total_bases(self) -> int:
        return sum(e.length for e in self._entries)

    def entry_length(self, i: int) -> int:
        return self._entries[i].length

    def load_range(self, start: int, stop: int) -> list[SeqRecord]:
        """Materialise records ``start <= i < stop`` via one seek + read."""
        if not (0 <= start <= stop <= len(self._entries)):
            raise IndexError(f"range [{start}, {stop}) outside index of {len(self._entries)}")
        if start == stop:
            return []
        begin = self._entries[start].offset
        end = (
            self._entries[stop].offset
            if stop < len(self._entries)
            else os.path.getsize(self.path)
        )
        with open(self.path, "r", encoding="ascii") as fh:
            fh.seek(begin)
            blob = fh.read(end - begin)
        return list(read_fasta(io.StringIO(blob)))
