"""Nucleotide and protein alphabets with numpy-friendly encodings.

Nucleotides encode to ``uint8`` codes 0-3 (A,C,G,T) so databases can be
packed two bits per base, matching NCBI's formatdb storage that the paper's
DB partitions use.  Ambiguity codes (N and friends) map to a configurable
replacement policy because 2-bit storage cannot represent them — NCBI's
packed format does the same and keeps an ambiguity side-channel; we
substitute a deterministic base, which is faithful enough for scoring
synthetic data.

Proteins use the BLOSUM matrix row order ``ARNDCQEGHILKMFPSTWYVBZX*`` so a
raw score lookup is ``matrix[code_a, code_b]`` with no indirection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Alphabet", "DNA", "PROTEIN"]


@dataclass(frozen=True)
class Alphabet:
    """A finite ordered alphabet with encode/decode tables."""

    name: str
    letters: str
    #: letters considered "real" (others are ambiguity codes)
    canonical: int
    _encode_table: np.ndarray = field(repr=False, default=None)
    _decode_table: np.ndarray = field(repr=False, default=None)

    @staticmethod
    def build(name: str, letters: str, canonical: int, aliases: dict[str, str] | None = None
              ) -> "Alphabet":
        encode = np.full(256, 255, dtype=np.uint8)
        for i, ch in enumerate(letters):
            encode[ord(ch)] = i
            encode[ord(ch.lower())] = i
        for alias, target in (aliases or {}).items():
            code = letters.index(target)
            encode[ord(alias)] = code
            encode[ord(alias.lower())] = code
        decode = np.frombuffer(letters.encode("ascii"), dtype=np.uint8).copy()
        return Alphabet(name, letters, canonical, encode, decode)

    @property
    def size(self) -> int:
        return len(self.letters)

    def encode(self, seq: str | bytes) -> np.ndarray:
        """Encode to uint8 codes; raises on characters outside the alphabet."""
        raw = seq.encode("ascii") if isinstance(seq, str) else bytes(seq)
        arr = np.frombuffer(raw, dtype=np.uint8)
        codes = self._encode_table[arr]
        if (codes == 255).any():
            bad = sorted({chr(b) for b, c in zip(raw, codes) if c == 255})
            raise ValueError(f"{self.name}: invalid characters {bad!r}")
        return codes

    def decode(self, codes: np.ndarray) -> str:
        """Inverse of :meth:`encode`."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.size and int(codes.max()) >= self.size:
            raise ValueError(f"{self.name}: code {int(codes.max())} out of range")
        return self._decode_table[codes].tobytes().decode("ascii")

    def is_valid(self, seq: str | bytes) -> bool:
        raw = seq.encode("ascii") if isinstance(seq, str) else bytes(seq)
        arr = np.frombuffer(raw, dtype=np.uint8)
        return bool((self._encode_table[arr] != 255).all())


#: DNA: 2-bit codes A=0 C=1 G=2 T=3.  Ambiguity codes collapse onto a
#: canonical base (the common convention for packed storage of synthetic or
#: pre-cleaned data): N/X->A, U->T, and IUPAC degenerate codes pick their
#: alphabetically-first member.
DNA = Alphabet.build(
    "dna",
    "ACGT",
    canonical=4,
    aliases={
        "N": "A", "X": "A", "U": "T",
        "R": "A", "Y": "C", "S": "C", "W": "A",
        "K": "G", "M": "A", "B": "C", "D": "A", "H": "A", "V": "A",
    },
)

#: Protein in BLOSUM62 row order; J (rare) maps to L, U (selenocysteine) to C,
#: O (pyrrolysine) to K.
PROTEIN = Alphabet.build(
    "protein",
    "ARNDCQEGHILKMFPSTWYVBZX*",
    canonical=20,
    aliases={"J": "L", "U": "C", "O": "K"},
)
