"""Read shredding: the paper's query-set construction.

"We have built the query dataset from those RefSeq sequences ... and
shredded them into 400 bp fragments overlapping by 200 bp.  This procedure
simulated sequencing reads per our primary BLAST use case of the
metagenomic taxonomic classification."
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.bio.seq import SeqRecord

__all__ = ["shred_record", "shred_records", "parent_id"]


def shred_record(
    record: SeqRecord,
    fragment: int = 400,
    overlap: int = 200,
    keep_tail: bool = True,
) -> Iterator[SeqRecord]:
    """Yield overlapping fragments of one sequence.

    Fragment ``i`` covers ``[i*step, i*step + fragment)`` with
    ``step = fragment - overlap``.  A final partial fragment shorter than
    ``fragment`` (but at least ``overlap`` long when possible) is kept by
    default, since real shredders do not discard genome ends.
    Fragment ids are ``{parent}/{start}-{end}`` so self-hit exclusion can
    recover the parent id.
    """
    if fragment <= 0:
        raise ValueError(f"fragment must be positive, got {fragment}")
    if not (0 <= overlap < fragment):
        raise ValueError(f"overlap must satisfy 0 <= overlap < fragment, got {overlap}")
    step = fragment - overlap
    n = len(record.seq)
    if n == 0:
        return
    if n <= fragment:
        yield SeqRecord(f"{record.id}/0-{n}", record.seq, record.description)
        return
    start = 0
    while start < n:
        end = min(start + fragment, n)
        if end - start < step and start > 0 and not keep_tail:
            break
        if start > 0 and end - start < min(overlap, fragment) and not keep_tail:
            break
        yield SeqRecord(f"{record.id}/{start}-{end}", record.seq[start:end], record.description)
        if end == n:
            break
        start += step


def shred_records(
    records: Iterable[SeqRecord],
    fragment: int = 400,
    overlap: int = 200,
    keep_tail: bool = True,
) -> Iterator[SeqRecord]:
    """Shred every record in turn (order preserved)."""
    for rec in records:
        yield from shred_record(rec, fragment=fragment, overlap=overlap, keep_tail=keep_tail)


def parent_id(fragment_id: str) -> str:
    """Recover the parent sequence id from a shredded fragment id."""
    return fragment_id.rsplit("/", 1)[0]
