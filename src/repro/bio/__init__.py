"""Sequence handling and synthetic workloads.

Provides what the paper gets from NCBI data files and unix tooling: FASTA
I/O and indexing, sequence records, the read-shredding procedure used to
build the query set (400 bp fragments overlapping by 200 bp), seeded
synthetic genome/proteome generators standing in for RefSeq/NT/UniRef data,
and k-mer composition vectors (the SOM's input space for metagenomic
binning).
"""

from repro.bio.alphabet import DNA, PROTEIN, Alphabet
from repro.bio.seq import SeqRecord, reverse_complement, translate
from repro.bio.fasta import FastaIndex, read_fasta, split_fasta, write_fasta
from repro.bio.shred import shred_record, shred_records
from repro.bio.simulate import (
    mutate_dna,
    random_genome,
    random_protein,
    synthetic_community,
    synthetic_nt_database,
    synthetic_protein_database,
)
from repro.bio.kmers import composition_matrix, kmer_frequencies

__all__ = [
    "Alphabet",
    "DNA",
    "PROTEIN",
    "SeqRecord",
    "reverse_complement",
    "translate",
    "read_fasta",
    "write_fasta",
    "split_fasta",
    "FastaIndex",
    "shred_record",
    "shred_records",
    "random_genome",
    "random_protein",
    "mutate_dna",
    "synthetic_community",
    "synthetic_nt_database",
    "synthetic_protein_database",
    "kmer_frequencies",
    "composition_matrix",
]
