"""Checkpoint/resume primitives for the MR drivers.

The paper's execution model offers no recovery: "the price for this extra
flexibility ... is a lack of fault-tolerance inherent in the underlying MPI
execution model" (§II.A).  This module supplies the durable state that turns
the supervisor's relaunch (:func:`repro.mpi.runtime.run_supervised`) into a
*resume*:

- :class:`IterationCheckpoint` — mrblast's per-rank progress manifest: the
  output-file byte offset (and emitted counts) after each committed outer
  iteration.  A relaunch truncates the rank's file back to the last
  *globally* committed iteration and continues from there.
- :class:`CodebookCheckpoint` — mrsom's per-epoch codebook snapshot.  Batch
  SOM epochs are deterministic, so resuming from epoch ``k``'s codebook
  reproduces the fault-free run bit for bit.
- :class:`PoisonList` — the quarantine ledger for repeatedly-fatal work
  units: a unit whose ``map()`` keeps raising is retried at most
  ``quarantine_after`` times across relaunches, then skipped and reported
  instead of wedging the job.

Every commit is an atomic write-to-temp + :func:`os.replace`, so a crash
mid-commit leaves the previous checkpoint intact — there is never a moment
where readers can observe a torn file.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from typing import Any

import numpy as np

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "read_json",
    "IterationCheckpoint",
    "CodebookCheckpoint",
    "PoisonList",
]


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Commit ``payload`` to ``path`` via temp file + rename (crash-safe)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".ckpt.", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, obj: Any) -> None:
    """Commit ``obj`` as JSON to ``path`` atomically (see atomic_write_bytes)."""
    atomic_write_bytes(path, json.dumps(obj, indent=1, sort_keys=True).encode("utf-8"))


def read_json(path: str, default: Any = None) -> Any:
    """Load a JSON checkpoint; ``default`` when absent or unreadable garbage."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return default
    except (OSError, json.JSONDecodeError):
        return default


class IterationCheckpoint:
    """Per-rank mrblast progress manifest, committed once per outer iteration.

    The manifest records, for every *committed* iteration, the rank's output
    file size plus cumulative queries/hits written — enough to truncate away
    any partially-written iteration on resume and to report resume points.
    """

    def __init__(self, output_dir: str, rank: int) -> None:
        self.path = os.path.join(output_dir, f"progress.rank{rank:04d}.json")

    def load(self) -> dict:
        """The manifest: ``{"offsets": [...], "queries": [...], "hits": [...]}``."""
        state = read_json(self.path, default={}) or {}
        offsets = [int(x) for x in state.get("offsets", [])]
        queries = [int(x) for x in state.get("queries", [])]
        hits = [int(x) for x in state.get("hits", [])]
        # Older manifests carried offsets only; pad the counts defensively.
        while len(queries) < len(offsets):
            queries.append(0)
        while len(hits) < len(offsets):
            hits.append(0)
        return {"offsets": offsets, "queries": queries, "hits": hits}

    def commit(self, offsets: list[int], queries: list[int], hits: list[int]) -> None:
        atomic_write_json(
            self.path, {"offsets": offsets, "queries": queries, "hits": hits}
        )

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


class CodebookCheckpoint:
    """Per-epoch SOM codebook snapshot with single-file atomic commit."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, "codebook.ckpt.npz")

    def save(self, epochs_done: int, codebook: np.ndarray) -> None:
        """Commit the codebook state after ``epochs_done`` completed epochs."""
        buf = io.BytesIO()
        np.savez(buf, epochs_done=np.int64(epochs_done), codebook=codebook)
        atomic_write_bytes(self.path, buf.getvalue())

    def load(self) -> tuple[int, np.ndarray] | None:
        """``(epochs_done, codebook)`` from the last commit, or ``None``."""
        try:
            with np.load(self.path) as data:
                return int(data["epochs_done"]), np.array(data["codebook"])
        except (OSError, KeyError, ValueError):
            return None

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


class PoisonList:
    """Failure ledger for work units; quarantines after ``quarantine_after``.

    Keys are caller-defined unit identifiers (mrblast uses
    ``"b<block>:p<partition>"``).  The ledger is shared state across
    supervised relaunches of the same job directory: the failing rank
    records the failure *before* the job dies, so the relaunch sees it.
    Only one unit is ever failing at a time (the first map() exception kills
    the whole MPI job), so last-writer-wins commits are race-free in
    practice and atomic either way.
    """

    def __init__(self, path: str, quarantine_after: int = 3) -> None:
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        self.path = path
        self.quarantine_after = quarantine_after

    def load(self) -> dict[str, dict]:
        state = read_json(self.path, default={}) or {}
        return {str(k): dict(v) for k, v in state.items()}

    def record_failure(self, key: str, error: str) -> int:
        """Persist one failure of ``key``; returns its total failure count."""
        state = self.load()
        entry = state.setdefault(key, {"failures": 0, "error": ""})
        entry["failures"] = int(entry.get("failures", 0)) + 1
        entry["error"] = error
        atomic_write_json(self.path, state)
        return entry["failures"]

    def quarantined(self) -> set[str]:
        """Unit keys that have exhausted their attempt budget."""
        return {
            key
            for key, entry in self.load().items()
            if int(entry.get("failures", 0)) >= self.quarantine_after
        }

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass
