"""mpiBLAST-like static DB scatter (the comparator the paper moved away from).

mpiBLAST statically assigns database partitions to ranks and streams all
queries past each rank's partitions, collating candidate results afterwards.
There is no dynamic work stealing, so a rank stuck with an expensive
partition becomes the critical path — the behaviour the paper's
master/worker dispatch avoids and the scheduling ablation quantifies.

This functional model runs on the in-process MPI runtime and must produce
the same merged hits as mrblast and serial BLAST (the parity suite checks
that); only its *work placement* differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DatabaseAlias
from repro.blast.engine import make_engine
from repro.blast.hsp import HSP, top_hits
from repro.blast.options import BlastOptions
from repro.mpi.comm import Comm
from repro.mpi.runtime import run_spmd

__all__ = ["run_mpiblast_like", "mpiblast_like_spmd"]


@dataclass
class MpiBlastLikeResult:
    rank: int
    partitions_owned: list[int]
    hits: dict[str, list[HSP]]  # rank 0 only: merged results
    units_processed: int


def run_mpiblast_like(
    comm: Comm,
    alias_path: str,
    query_blocks: Sequence[Sequence[SeqRecord]],
    options: BlastOptions,
) -> MpiBlastLikeResult:
    """Static scatter: rank r owns partitions {p : p % size == r}."""
    alias = DatabaseAlias.load(alias_path)
    opts = options.with_db_size(alias.total_length, alias.num_seqs)
    engine = make_engine(opts)
    owned = [p for p in range(alias.num_partitions) if p % comm.size == comm.rank]
    local: list[HSP] = []
    units = 0
    for p in owned:
        partition = alias.open_partition(p)
        for block in query_blocks:
            local.extend(engine.search_block(block, partition))
            units += 1
    gathered = comm.gather(local, root=0)
    merged: dict[str, list[HSP]] = {}
    if comm.rank == 0:
        by_query: dict[str, list[HSP]] = {}
        for rank_hits in gathered:
            for hsp in rank_hits:
                by_query.setdefault(hsp.query_id, []).append(hsp)
        merged = {
            qid: top_hits(hits, opts.max_hits, opts.evalue)
            for qid, hits in by_query.items()
            if top_hits(hits, opts.max_hits, opts.evalue)
        }
    return MpiBlastLikeResult(
        rank=comm.rank, partitions_owned=owned, hits=merged, units_processed=units
    )


def mpiblast_like_spmd(
    nprocs: int,
    alias_path: str,
    query_blocks: Sequence[Sequence[SeqRecord]],
    options: BlastOptions,
) -> list[MpiBlastLikeResult]:
    """Launch an in-process MPI job running the static-scatter baseline."""
    return run_spmd(nprocs, run_mpiblast_like, alias_path, query_blocks, options)
