"""Baselines the paper compares against (or replaces).

- :mod:`serial_blast` — the plain serial search over all partitions: the
  ground truth every parallel decomposition must reproduce.
- :mod:`htc_blast` — the JCVI/VICS-style matrix-split HTC workflow: a
  collection of independent serial jobs plus merge/format jobs exchanging
  data through files (§IV.A's comparison run).
- :mod:`mpiblast_like` — a static DB-partition-scatter scheduler in the
  spirit of mpiBLAST: each rank owns fixed partitions, no dynamic load
  balancing (the contrast the ablation bench quantifies).
- :mod:`serial_som` — serial batch/online SOM runs with the mrsom config
  surface.
"""

from repro.core.baselines.serial_blast import run_serial_blast
from repro.core.baselines.htc_blast import HtcWorkflowResult, run_htc_blast
from repro.core.baselines.mpiblast_like import run_mpiblast_like
from repro.core.baselines.serial_som import run_serial_batch_som

__all__ = [
    "run_serial_blast",
    "run_htc_blast",
    "HtcWorkflowResult",
    "run_mpiblast_like",
    "run_serial_batch_som",
]
