"""Serial SOM baseline with the mrsom configuration surface.

Runs :class:`repro.som.batch.BatchSOM` over the same memory-mapped matrix
file the parallel driver consumes, with identical initialisation and radius
schedule — so ``run_serial_batch_som(cfg)`` and ``mrsom_spmd(P, cfg)`` are
comparable bit-for-bit (up to floating-point summation order).
"""

from __future__ import annotations

import numpy as np

from repro.core.mrsom.driver import MrSomConfig
from repro.core.mrsom.mmap_input import MatrixFile
from repro.som.batch import accumulate_batch, batch_update
from repro.som.codebook import init_codebook
from repro.som.neighborhood import gaussian_kernel, radius_schedule

__all__ = ["run_serial_batch_som"]


def run_serial_batch_som(config: MrSomConfig) -> np.ndarray:
    """Train serially with exactly the parallel driver's schedule and init."""
    matrix = MatrixFile(config.matrix_path)
    grid = config.grid
    sample = matrix.rows(0, min(config.init_sample_rows, matrix.n))
    codebook = init_codebook(grid, sample, method=config.init, seed_or_rng=config.seed)
    initial = config.initial_radius
    if initial is None:
        initial = max(grid.diagonal / 2.0, config.final_radius)
    sigmas = radius_schedule(initial, config.final_radius, config.epochs)
    sq = grid.grid_sq_distances()
    for sigma in sigmas:
        kernel = gaussian_kernel(sq, float(sigma))
        num, denom = None, None
        # Walk the same work units the parallel driver would, in order.
        for start, stop in matrix.work_units(config.block_rows):
            num, denom = accumulate_batch(matrix.rows(start, stop), codebook, kernel, num, denom)
        codebook = batch_update(codebook, num, denom)
    return codebook
