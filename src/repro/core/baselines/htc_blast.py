"""HTC-style matrix-split BLAST workflow (the paper's JCVI/VICS comparison).

"The search was controlled by a VICS workflow execution engine ... that
executed a matrix-split computation as a collection of 960 serial BLAST
jobs followed by a few merge-sort and formatting jobs.  The data files and
intermediate results were stored on a shared [storage] system." (§IV.A)

This baseline runs the same decomposition *functionally*: every (query
block, partition) cell becomes an independent job writing its hits to its
own file on "shared storage" (a directory); merge jobs then combine the
per-cell files per query.  Job wall-times are recorded so the HTC-vs-MR-MPI
bench can compare the longest-job makespan against the MPI run, as the
paper does.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DatabaseAlias
from repro.blast.engine import make_engine
from repro.blast.hsp import HSP, top_hits
from repro.blast.options import BlastOptions
from repro.blast.tabular import parse_tabular, write_tabular

__all__ = ["HtcWorkflowResult", "run_htc_blast"]


@dataclass
class HtcWorkflowResult:
    """Outcome of the file-based workflow."""

    merged: dict[str, list[HSP]]
    n_jobs: int
    job_seconds: list[float] = field(default_factory=list)
    merge_seconds: float = 0.0

    @property
    def longest_job_seconds(self) -> float:
        return max(self.job_seconds, default=0.0)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(self.job_seconds) + self.merge_seconds


def run_htc_blast(
    alias_path: str,
    query_blocks: Sequence[Sequence[SeqRecord]],
    options: BlastOptions,
    work_dir: str,
) -> HtcWorkflowResult:
    """Run the matrix of serial jobs + merge jobs through the file system."""
    alias = DatabaseAlias.load(alias_path)
    opts = options.with_db_size(alias.total_length, alias.num_seqs)
    os.makedirs(work_dir, exist_ok=True)

    # Phase 1: one independent serial job per matrix cell.
    job_seconds: list[float] = []
    cell_files: list[str] = []
    for p in range(alias.num_partitions):
        partition = alias.open_partition(p)
        for b, block in enumerate(query_blocks):
            t0 = time.perf_counter()
            engine = make_engine(opts)  # each job is a fresh process
            hits = engine.search_block(block, partition)
            path = os.path.join(work_dir, f"job_b{b:04d}_p{p:04d}.tsv")
            write_tabular(hits, path)
            cell_files.append(path)
            job_seconds.append(time.perf_counter() - t0)

    # Phase 2: merge-sort jobs combining the per-cell files.
    t0 = time.perf_counter()
    by_query: dict[str, list[HSP]] = {}
    for path in cell_files:
        for hsp in parse_tabular(path):
            by_query.setdefault(hsp.query_id, []).append(hsp)
    merged = {
        qid: top_hits(hits, opts.max_hits, opts.evalue)
        for qid, hits in by_query.items()
        if top_hits(hits, opts.max_hits, opts.evalue)
    }
    merge_seconds = time.perf_counter() - t0
    return HtcWorkflowResult(
        merged=merged,
        n_jobs=len(cell_files),
        job_seconds=job_seconds,
        merge_seconds=merge_seconds,
    )
