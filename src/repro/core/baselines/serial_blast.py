"""Serial BLAST over a partitioned database: the parity reference.

Searches every query block against every partition in one process, merges
per-query results with the same E-value sort + top-K as mrblast's reducer.
Every parallel run must produce exactly this output (the "unmodified NCBI
toolkit ensures that the results are compatible" guarantee the paper leans
on).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bio.seq import SeqRecord
from repro.blast.dbreader import DatabaseAlias
from repro.blast.engine import make_engine
from repro.blast.hsp import HSP, top_hits
from repro.blast.options import BlastOptions

__all__ = ["run_serial_blast"]


def run_serial_blast(
    alias_path: str,
    query_blocks: Sequence[Sequence[SeqRecord]],
    options: BlastOptions,
    hit_filter: Callable[[str, HSP], bool] | None = None,
) -> dict[str, list[HSP]]:
    """Returns {query_id: E-value-sorted top-K hits across the whole DB}."""
    alias = DatabaseAlias.load(alias_path)
    opts = options.with_db_size(alias.total_length, alias.num_seqs)
    engine = make_engine(opts)
    by_query: dict[str, list[HSP]] = {}
    for p in range(alias.num_partitions):
        partition = alias.open_partition(p)
        for block in query_blocks:
            for hsp in engine.search_block(block, partition):
                if hit_filter is not None and hit_filter(hsp.query_id, hsp):
                    continue
                by_query.setdefault(hsp.query_id, []).append(hsp)
    return {
        qid: top_hits(hits, opts.max_hits, opts.evalue)
        for qid, hits in by_query.items()
        if top_hits(hits, opts.max_hits, opts.evalue)
    }
