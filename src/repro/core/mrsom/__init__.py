"""MR-MPI batch SOM (paper Fig. 2)."""

from repro.core.mrsom.mmap_input import MatrixFile, write_matrix_file
from repro.core.mrsom.driver import MrSomConfig, MrSomResult, run_mrsom, mrsom_spmd

__all__ = [
    "MatrixFile",
    "write_matrix_file",
    "MrSomConfig",
    "MrSomResult",
    "run_mrsom",
    "mrsom_spmd",
]
