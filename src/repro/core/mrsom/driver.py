"""The MR-MPI batch SOM driver: the control flow of the paper's Fig. 2.

Per epoch:

1. the master broadcasts the codebook with ``MPI_Bcast``;
2. ``map()`` over blocks of input vectors (offset pairs into the
   memory-mapped matrix) accumulates Eq. 5's numerator and denominator into
   two rank-local arrays ("each worker has its own copy of a new codebook,
   initialized to zero at the start of an epoch, plus a matrix of floating
   point scalars with the same shape");
3. a collective ``MPI_Reduce`` sums the partial accumulators on the master,
   which applies Eq. 5.  "No reduce() stage is used in this program."

This is the paper's "mix of MapReduce-MPI and direct MPI calls".

Epoch boundaries are the natural checkpoint cadence: with
``checkpoint_dir`` set, the master commits the codebook after every epoch
(atomic rename), and ``resume=True`` continues from the last committed
epoch.  Batch-SOM epochs are deterministic, so a resumed run reproduces
the fault-free codebook bit for bit — see :func:`mrsom_supervised`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.checkpoint import CodebookCheckpoint
from repro.core.mrsom.mmap_input import MatrixFile
from repro.mpi.comm import Comm
from repro.mpi.faultplan import FaultPlan
from repro.mpi.ops import SUM
from repro.mpi.runtime import RetryPolicy, SupervisedOutcome, run_spmd, run_supervised
from repro.mrmpi.mapreduce import MapReduce, MapStyle
from repro.mrmpi.schema import RecordSchema
from repro.obs.export import write_chrome_trace
from repro.obs.trace import TraceSession
from repro.som.batch import accumulate_batch, batch_update
from repro.som.codebook import SOMGrid, init_codebook
from repro.som.neighborhood import gaussian_kernel, radius_schedule

__all__ = ["MrSomConfig", "MrSomResult", "run_mrsom", "mrsom_spmd", "mrsom_supervised"]


@dataclass
class MrSomConfig:
    """One parallel batch-SOM training run.

    The paper's Fig. 6 benchmark: 81 920 random 256-d vectors, a 50×50 map,
    work units of 40 vectors.
    """

    matrix_path: str
    grid: SOMGrid
    epochs: int = 10
    block_rows: int = 40
    init: str = "linear"
    seed: int = 0
    initial_radius: float | None = None
    final_radius: float = 1.0
    mapstyle: MapStyle = MapStyle.MASTER_WORKER
    #: rows sampled (from the start) for the linear initialisation; keeps
    #: init cost bounded on huge matrices
    init_sample_rows: int = 4096
    #: record per-epoch quantisation error on the master (over the init
    #: sample) — convergence monitoring at bounded cost
    track_error: bool = False
    #: directory for per-epoch codebook checkpoints (None = no checkpoints)
    checkpoint_dir: str | None = None
    #: continue from the last committed epoch in ``checkpoint_dir``
    resume: bool = False
    #: stop after this many (additional) epochs — incremental training and
    #: the test hook for resume
    stop_after_epochs: int | None = None
    #: how the per-rank Eq. 5 accumulators are combined each epoch.
    #: ``"mpi"`` is the paper's direct ``MPI_Reduce`` ("No reduce() stage is
    #: used in this program").  ``"mrmpi"`` routes the accumulators through
    #: the columnar MR-MPI data plane instead — each rank emits its (unit,
    #: {num row, denom}) blocks as one structured-array batch, collate
    #: spreads the units across ranks, and a reduce() sums the per-rank
    #: contributions in the same pairwise order as the direct reduction,
    #: so the trained codebook is bit-identical between the two modes.
    reduce_mode: str = "mpi"
    #: memory budget and spill directory for the ``"mrmpi"`` reduction
    #: plane (None = MapReduce defaults); a tiny memsize forces the
    #: accumulator exchange out of core
    memsize: int | None = None
    spool_dir: str | None = None
    #: write a Chrome ``trace_event`` JSON of the whole run here (open in
    #: chrome://tracing or Perfetto).  None disables tracing entirely —
    #: the zero-cost default.
    trace_path: str | None = None
    #: transport backend: "thread" (in-process, GIL-bound parity oracle) or
    #: "process" (one OS process per rank, real multi-core epoch compute).
    #: None defers to the REPRO_MPI_BACKEND environment default.
    backend: str | None = None
    #: process-backend shared-memory arena budget in MiB per rank (0
    #: disables the arena, restoring the per-message shm path).  None
    #: defers to $REPRO_MPI_ARENA_MB / the built-in default; ignored by
    #: the thread backend.
    arena_mb: int | None = None
    #: straggler threshold: re-issue a unit once its elapsed time exceeds
    #: ``speculation_factor ×`` the running median (None = no speculation).
    #: Only effective under MASTER_WORKER dispatch on >1 rank.
    speculation_factor: float | None = None
    #: keep training when a worker rank dies mid-map: the master reassigns
    #: its units to survivors and the epoch's collectives run on the shrunk
    #: communicator.  Incompatible with ``reduce_mode="mrmpi"`` (the
    #: reduction plane's exchange is collective over the original comm).
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {self.block_rows}")
        if self.stop_after_epochs is not None and self.stop_after_epochs < 1:
            raise ValueError("stop_after_epochs must be >= 1 when set")
        if self.reduce_mode not in ("mpi", "mrmpi"):
            raise ValueError(
                f"reduce_mode must be 'mpi' or 'mrmpi', got {self.reduce_mode!r}"
            )
        if self.speculation_factor is not None and self.speculation_factor <= 1.0:
            raise ValueError(
                f"speculation_factor must be > 1.0, got {self.speculation_factor}"
            )
        if self.degraded and self.reduce_mode == "mrmpi":
            raise ValueError(
                "degraded=True is incompatible with reduce_mode='mrmpi': the "
                "accumulator exchange is collective over the original "
                "communicator and cannot survive a rank loss"
            )

    def validate(self) -> None:
        """Fail-fast checks before any rank spawns (one clear error, not N)."""
        if not os.path.isfile(self.matrix_path):
            raise ValueError(f"mrsom config: matrix_path {self.matrix_path!r} does not exist")
        try:
            matrix = MatrixFile(self.matrix_path)
        except Exception as exc:
            raise ValueError(
                f"mrsom config: matrix_path {self.matrix_path!r} is not a readable "
                f"matrix file ({exc})"
            ) from exc
        if matrix.n < 1:
            raise ValueError(f"mrsom config: matrix {self.matrix_path!r} has no rows")
        if self.grid.n_units < 1:
            raise ValueError("mrsom config: SOM grid has no units")
        if self.init not in ("linear", "random"):
            raise ValueError(f"mrsom config: unknown init {self.init!r}")
        if self.final_radius <= 0:
            raise ValueError(
                f"mrsom config: final_radius must be > 0, got {self.final_radius}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("mrsom config: resume=True requires checkpoint_dir")
        if self.checkpoint_dir is not None:
            try:
                os.makedirs(self.checkpoint_dir, exist_ok=True)
                probe = os.path.join(self.checkpoint_dir, ".write-probe")
                with open(probe, "w") as fh:
                    fh.write("")
                os.unlink(probe)
            except OSError as exc:
                raise ValueError(
                    f"mrsom config: checkpoint_dir {self.checkpoint_dir!r} is not "
                    f"writable ({exc})"
                ) from exc


@dataclass
class MrSomResult:
    """Per-rank outcome; the codebook is identical on every rank."""

    rank: int
    codebook: np.ndarray
    epochs: int
    units_processed: int
    busy_seconds: float
    bcast_seconds: float
    reduce_seconds: float
    #: per-epoch quantisation error (rank 0 only, when track_error is set)
    error_history: list[float] = None
    #: robustness counters (PR 3): epoch this attempt resumed at, plus the
    #: supervision counters filled in by :func:`mrsom_supervised`
    resumed_from_epoch: int = 0
    faults_injected: int = 0
    retries: int = 0
    #: shuffle traffic of the ``"mrmpi"`` reduction plane (0 in "mpi" mode)
    shuffle_pairs_moved: int = 0
    shuffle_bytes_moved: int = 0
    #: straggler-mitigation / degraded-mode counters (PR 8)
    degraded: bool = False
    lost_ranks: tuple = ()
    speculated_units: int = 0
    wasted_units: int = 0
    reassigned_units: int = 0


@dataclass
class _BlockAccumulator:
    """The map() callable: accumulates Eq. 5 sums over assigned blocks.

    Under scheduled dispatch (speculation / degraded mode) the master may
    discard a unit after the mapper already ran it — a speculative loser,
    or a unit redone after a worker death.  Accumulating straight into the
    rank totals would then double-count, so the scheduler's unit hooks
    stage each unit in its own buffers: ``begin_unit`` allocates them,
    ``commit_unit`` folds them into the totals once the master accepts the
    unit, ``discard_unit`` drops them.  Without hooks (plain dispatch) the
    mapper accumulates directly into the totals, as before.
    """

    matrix: MatrixFile
    codebook: np.ndarray = None
    kernel: np.ndarray = None
    num: np.ndarray = None
    denom: np.ndarray = None
    units: int = 0
    busy: float = 0.0
    _unit_num: np.ndarray = None
    _unit_denom: np.ndarray = None

    def start_epoch(self, codebook: np.ndarray, kernel: np.ndarray) -> None:
        self.codebook = codebook
        self.kernel = kernel
        k, dim = codebook.shape
        self.num = np.zeros((k, dim))
        self.denom = np.zeros(k)
        self._unit_num = None
        self._unit_denom = None

    def begin_unit(self, itask: int) -> None:
        k, dim = self.codebook.shape
        self._unit_num = np.zeros((k, dim))
        self._unit_denom = np.zeros(k)

    def commit_unit(self, itask: int) -> None:
        if self._unit_num is not None:
            self.num += self._unit_num
            self.denom += self._unit_denom
            self.units += 1
        self._unit_num = None
        self._unit_denom = None

    def discard_unit(self, itask: int) -> None:
        self._unit_num = None
        self._unit_denom = None

    def __call__(self, itask: int, item: tuple[int, int], kv) -> None:
        t0 = time.perf_counter()
        start, stop = item
        block = self.matrix.rows(start, stop)
        if self._unit_num is not None:
            accumulate_batch(
                block, self.codebook, self.kernel, self._unit_num, self._unit_denom
            )
        else:
            accumulate_batch(block, self.codebook, self.kernel, self.num, self.denom)
            self.units += 1
        self.busy += time.perf_counter() - t0


def _accumulator_schema(dim: int) -> RecordSchema:
    """Record schema of one (unit index → rank contribution) pair.

    The value row carries the contributing rank so the reducer can restore
    rank order no matter how the exchange rounds interleaved arrivals.
    """
    value_dtype = np.dtype([("rank", "<i8"), ("num", "<f8", (dim,)), ("denom", "<f8")])
    return RecordSchema(key_dtype=np.dtype("<i8"), value_dtype=value_dtype, key_kind="int")


def _binomial_sum(parts: list):
    """Sum in the same pairwise order as ``Comm.reduce``'s binomial tree.

    Summing rank contributions in this order (not left-to-right) is what
    makes the ``"mrmpi"`` reduction bit-identical to the direct
    ``MPI_Reduce`` path: IEEE-754 addition is not associative, but the
    same additions in the same order give the same bits.
    """
    vals = list(parts)
    mask = 1
    while mask < len(vals):
        for i in range(0, len(vals), mask << 1):
            if i + mask < len(vals):
                vals[i] = vals[i] + vals[i + mask]
        mask <<= 1
    return vals[0]


def _mrmpi_reduce(
    red_mr: MapReduce, num: np.ndarray, denom: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-rank accumulators through the columnar MR-MPI plane.

    Each rank emits its whole accumulator as one columnar batch (one int64
    unit-index key column plus one structured {rank, num, denom} row array),
    collate spreads the units across ranks, reduce sums each unit's rank
    contributions in binomial order, and gather(1) concentrates the summed
    rows on rank 0 — the rank that applies Eq. 5.
    """
    k, dim = num.shape
    rows = np.empty(k, dtype=red_mr.schema.value_dtype)
    rows["rank"] = red_mr.rank
    rows["num"] = num
    rows["denom"] = denom
    keys = np.arange(k, dtype=np.int64)
    # One task per rank under CHUNK: every rank emits exactly its own rows.
    red_mr.map(
        red_mr.comm.size,
        lambda i, kv: kv.add_batch(keys, rows),
        mapstyle=MapStyle.CHUNK,
    )
    red_mr.collate()

    def reducer(key, values, kv):
        ordered = sorted(values, key=lambda r: int(r["rank"]))
        num_sum = _binomial_sum([r["num"] for r in ordered])
        denom_sum = _binomial_sum([r["denom"] for r in ordered])
        kv.add(int(key), (np.asarray(num_sum), float(denom_sum)))

    red_mr.reduce(reducer, out_schema=None)
    red_mr.gather(1)
    num_total = np.zeros_like(num)
    denom_total = np.zeros_like(denom)
    if red_mr.rank == 0:
        for unit, (num_sum, denom_sum) in red_mr.kv:
            num_total[unit] = num_sum
            denom_total[unit] = denom_sum
    return num_total, denom_total


def run_mrsom(comm: Comm, config: MrSomConfig) -> MrSomResult:
    """SPMD entry point: call on every rank of ``comm``."""
    matrix = MatrixFile(config.matrix_path)
    grid = config.grid
    k, dim = grid.n_units, matrix.dim

    # Master initialises the codebook (or reloads the last committed epoch);
    # everyone allocates the buffer.
    checkpoint = (
        CodebookCheckpoint(config.checkpoint_dir) if config.checkpoint_dir else None
    )
    codebook = np.zeros((k, dim))
    start_epoch = 0
    if comm.rank == 0:
        loaded = checkpoint.load() if (checkpoint is not None and config.resume) else None
        if loaded is not None:
            start_epoch, codebook = loaded
            start_epoch = min(start_epoch, config.epochs)
        else:
            sample = matrix.rows(0, min(config.init_sample_rows, matrix.n))
            codebook = init_codebook(grid, sample, method=config.init, seed_or_rng=config.seed)
            if checkpoint is not None and not config.resume:
                checkpoint.clear()  # a fresh run must not resume stale state
    start_epoch = int(comm.bcast(start_epoch, root=0))

    trc = comm.tracer
    if trc.enabled:
        # Always emitted, so a resumed run's trace carries the marker the
        # fault-path tests look for (0 on fresh runs).
        trc.instant("mrsom.resume", cat="driver", resumed_from_epoch=start_epoch)

    initial = config.initial_radius
    if initial is None:
        initial = max(grid.diagonal / 2.0, config.final_radius)
    sigmas = radius_schedule(initial, config.final_radius, config.epochs)
    sq = grid.grid_sq_distances()
    work = matrix.work_units(config.block_rows)

    speculation = None
    if config.speculation_factor is not None:
        from repro.sched import SpeculationPolicy

        speculation = SpeculationPolicy(factor=config.speculation_factor)

    mr = MapReduce(comm, mapstyle=config.mapstyle)
    red_mr = None
    if config.reduce_mode == "mrmpi":
        red_kwargs = {}
        if config.memsize is not None:
            red_kwargs["memsize"] = config.memsize
        if config.spool_dir is not None:
            red_kwargs["spool_dir"] = config.spool_dir
        red_mr = MapReduce(
            comm,
            mapstyle=MapStyle.CHUNK,
            schema=_accumulator_schema(dim),
            **red_kwargs,
        )
    acc = _BlockAccumulator(matrix)
    bcast_seconds = 0.0
    reduce_seconds = 0.0
    error_history: list[float] = []
    sample = None
    if config.track_error and comm.rank == 0:
        sample = matrix.rows(0, min(config.init_sample_rows, matrix.n))

    epochs_done_this_run = 0
    try:
        for epoch in range(start_epoch, config.epochs):
            if (
                config.stop_after_epochs is not None
                and epochs_done_this_run >= config.stop_after_epochs
            ):
                break
            sigma = sigmas[epoch]
            epoch_sid = None
            if trc.enabled:
                epoch_sid = trc.begin("mrsom.epoch", cat="driver", epoch=epoch)
                trc.begin("mrsom.bcast", cat="driver")
            t0 = time.perf_counter()
            # mr.comm is `comm` until a degraded map shrinks it; collectives
            # must run on the surviving group (the dead rank can't Bcast).
            mr.comm.Bcast(codebook, root=0)  # direct MPI call #1 (Fig. 2)
            dt = time.perf_counter() - t0
            bcast_seconds += dt
            if trc.enabled:
                # The attr is the very float added to bcast_seconds, so the
                # trace-derived total matches the counter bit-for-bit.
                trc.end(seconds=dt)

            kernel = gaussian_kernel(sq, float(sigma))
            acc.start_epoch(codebook, kernel)
            mr.map_items(work, acc, speculation=speculation, degraded=config.degraded)

            if trc.enabled:
                trc.begin("mrsom.reduce", cat="driver", mode=config.reduce_mode)
            t0 = time.perf_counter()
            if red_mr is not None:
                num_total, denom_total = _mrmpi_reduce(red_mr, acc.num, acc.denom)
            else:
                num_total = np.zeros_like(acc.num)
                denom_total = np.zeros_like(acc.denom)
                mr.comm.Reduce(acc.num, num_total, op=SUM, root=0)  # direct MPI call #2
                mr.comm.Reduce(acc.denom, denom_total, op=SUM, root=0)
            dt = time.perf_counter() - t0
            reduce_seconds += dt
            if trc.enabled:
                trc.end(seconds=dt)

            if comm.rank == 0:
                codebook = batch_update(codebook, num_total, denom_total)
                if sample is not None:
                    from repro.som.quality import quantization_error

                    error_history.append(quantization_error(sample, codebook))
                if checkpoint is not None:
                    checkpoint.save(epoch + 1, codebook)
                    if trc.enabled:
                        trc.instant("checkpoint.commit", cat="driver",
                                    epoch=epoch + 1)
            epochs_done_this_run += 1
            if trc.enabled:
                trc.end(epoch_sid)

        # Final broadcast so every rank returns the trained codebook.
        mr.comm.Bcast(codebook, root=0)
    finally:
        shuffle = {"pairs_moved": 0, "bytes_moved": 0}
        if red_mr is not None:
            shuffle = red_mr.stats.get("aggregate", shuffle)
            red_mr.close()
        mr.close()  # even when unwinding a crash: no leaked spill files
    return MrSomResult(
        rank=comm.rank,
        codebook=codebook,
        epochs=config.epochs,
        units_processed=acc.units,
        busy_seconds=acc.busy,
        bcast_seconds=bcast_seconds,
        reduce_seconds=reduce_seconds,
        error_history=error_history if comm.rank == 0 and config.track_error else None,
        resumed_from_epoch=start_epoch,
        shuffle_pairs_moved=shuffle["pairs_moved"],
        shuffle_bytes_moved=shuffle["bytes_moved"],
        degraded=mr.degraded_run,
        lost_ranks=mr.lost_ranks,
        speculated_units=mr.sched_stats["speculated"],
        wasted_units=mr.sched_stats["wasted"],
        reassigned_units=mr.sched_stats["reassigned"],
    )


def mrsom_spmd(
    nprocs: int, config: MrSomConfig, trace: TraceSession | None = None
) -> list[MrSomResult]:
    """Launch a full in-process MPI job running :func:`run_mrsom`.

    Tracing: pass a :class:`~repro.obs.trace.TraceSession` to capture the
    run, or set ``config.trace_path`` to have one created and exported as
    Chrome trace JSON automatically.  Both may be combined.
    """
    config.validate()
    if trace is None and config.trace_path:
        trace = TraceSession(nprocs)
    results = run_spmd(nprocs, run_mrsom, config, trace=trace,
                       backend=config.backend, arena_mb=config.arena_mb)
    if config.trace_path and trace is not None:
        write_chrome_trace(config.trace_path, trace)
    return results


def mrsom_supervised(
    nprocs: int,
    config: MrSomConfig,
    *,
    fault_plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    op_timeout: float | None = None,
    trace: TraceSession | None = None,
) -> SupervisedOutcome:
    """Run mrsom under the supervisor: crash → detect → back off → resume.

    Requires ``checkpoint_dir`` for relaunches to resume mid-training
    (without it a relaunch simply retrains from epoch 0 — still correct,
    just wasteful).  Attempt 1 honours ``config.resume``; every relaunch
    forces ``resume=True`` when checkpoints are enabled.
    """
    config.validate()
    if trace is None and config.trace_path:
        trace = TraceSession(nprocs)

    def prepare(attempt: int) -> tuple[tuple, dict]:
        if attempt == 1 or config.checkpoint_dir is None:
            cfg = config
        else:
            cfg = dataclasses.replace(config, resume=True)
        return (cfg,), {}

    try:
        outcome = run_supervised(
            nprocs,
            run_mrsom,
            retry=retry,
            fault_plan=fault_plan,
            op_timeout=op_timeout,
            prepare=prepare,
            trace=trace,
            backend=config.backend,
            arena_mb=config.arena_mb,
        )
    finally:
        # Export even when supervision exhausts: the trace of a failed job
        # is exactly when you want to look at it.
        if config.trace_path and trace is not None:
            write_chrome_trace(config.trace_path, trace)
    for result in outcome.results:
        if result is None:  # a rank lost to a degraded-mode death
            continue
        result.faults_injected = outcome.faults_injected
        result.retries = outcome.retries
    return outcome
