"""Memory-mapped dense input matrix for the parallel SOM.

"The program takes the input vectors as a dense matrix saved on disk in the
platform floating point representation, and uses memory mapped files to
access them on the worker nodes, under an assumption that there is a shared
file system mounted on the workers.  Each work unit is thus described by a
pair of offsets in that memory mapped file.  This allows processing input
datasets larger than the available RAM size." (paper §III.B)

The file layout is a tiny fixed header (magic, dtype code, n, dim) followed
by the raw row-major matrix, so ``np.memmap`` can map the payload directly.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["write_matrix_file", "MatrixFile"]

_MAGIC = b"MRSOMMAT"
_DTYPES = {0: np.float32, 1: np.float64}
_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_HEADER = struct.Struct("<8sBxxxqq")  # magic, dtype code, pad, n, dim


def write_matrix_file(path: str | os.PathLike, data: np.ndarray) -> str:
    """Write a dense (N, dim) float matrix in mmap-able layout."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    dtype = np.dtype(data.dtype)
    if dtype not in _DTYPE_CODES:
        data = data.astype(np.float64)
        dtype = np.dtype(np.float64)
    path = os.fspath(path)
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, _DTYPE_CODES[dtype], data.shape[0], data.shape[1]))
        fh.write(np.ascontiguousarray(data).tobytes())
    return path


@dataclass
class MatrixFile:
    """Reader side: maps the payload and serves row ranges (work units)."""

    path: str
    n: int = 0
    dim: int = 0
    dtype: np.dtype = None
    _mmap: np.ndarray = None

    def __post_init__(self) -> None:
        with open(self.path, "rb") as fh:
            header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ValueError(f"{self.path}: truncated header")
        magic, code, n, dim = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{self.path}: not an mrsom matrix file")
        if code not in _DTYPES:
            raise ValueError(f"{self.path}: unknown dtype code {code}")
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "dim", int(dim))
        object.__setattr__(self, "dtype", np.dtype(_DTYPES[code]))

    def _ensure_mapped(self) -> np.ndarray:
        if self._mmap is None:
            m = np.memmap(
                self.path,
                dtype=self.dtype,
                mode="r",
                offset=_HEADER.size,
                shape=(self.n, self.dim),
            )
            object.__setattr__(self, "_mmap", m)
        return self._mmap

    def rows(self, start: int, stop: int) -> np.ndarray:
        """Rows [start, stop) as float64 (a copy; mmap pages stay clean)."""
        if not (0 <= start <= stop <= self.n):
            raise IndexError(f"row range [{start}, {stop}) outside [0, {self.n})")
        return np.array(self._ensure_mapped()[start:stop], dtype=np.float64)

    def work_units(self, block_rows: int) -> list[tuple[int, int]]:
        """Offset pairs covering the matrix in blocks of ``block_rows``."""
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        return [(s, min(s + block_rows, self.n)) for s in range(0, self.n, block_rows)]
