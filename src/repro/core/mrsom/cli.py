"""Command-line front end for MR-MPI batch SOM.

Trains a SOM over a matrix file (see ``repro.core.mrsom.mmap_input``) on the
in-process MPI runtime and writes the trained codebook::

    mrsom --input vectors.mat --rows 50 --cols 50 --epochs 10 --np 4 \
          --out codebook.npy
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.mrsom.driver import MrSomConfig, mrsom_spmd, mrsom_supervised
from repro.mpi.faultplan import FaultPlan
from repro.mpi.runtime import RetryPolicy
from repro.som.codebook import SOMGrid

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="mrsom", description=__doc__)
    ap.add_argument("--input", required=True, help="matrix file (write_matrix_file layout)")
    ap.add_argument("--rows", type=int, default=50, help="SOM grid rows")
    ap.add_argument("--cols", type=int, default=50, help="SOM grid cols")
    ap.add_argument("--epochs", type=int, default=10)
    ap.add_argument("--block-rows", type=int, default=40,
                    help="input vectors per work unit (paper: 40)")
    ap.add_argument("--np", type=int, default=4, help="number of MPI ranks")
    ap.add_argument("--backend", choices=["thread", "process"], default=None,
                    help="transport backend: 'process' runs each rank as an OS "
                         "process (real multi-core); 'thread' is the in-process "
                         "parity oracle (default: $REPRO_MPI_BACKEND or thread)")
    ap.add_argument("--arena-mb", type=int, default=None,
                    help="process backend: shared-memory arena MiB per rank "
                         "(0 disables the arena; default: $REPRO_MPI_ARENA_MB "
                         "or 64)")
    ap.add_argument("--init", choices=["linear", "random"], default="linear")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="codebook.npy", help="trained codebook output (.npy)")
    ap.add_argument("--checkpoint-dir", default=None,
                    help="commit the codebook here after every epoch")
    ap.add_argument("--resume", action="store_true",
                    help="continue from the last committed epoch in --checkpoint-dir")
    ap.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault-injection plan, e.g. 'crash=1@20' or 'seed=7' "
                         "(see FaultPlan.parse)")
    ap.add_argument("--retries", type=int, default=0, metavar="N",
                    help="run under the supervisor with up to N relaunches "
                         "(resume from the last committed epoch)")
    ap.add_argument("--trace", default=None, metavar="PATH",
                    help="write a Chrome trace_event JSON of the run here "
                         "(open in chrome://tracing or Perfetto)")
    ap.add_argument("--speculate", type=float, default=None, metavar="FACTOR",
                    help="straggler mitigation: re-issue a work unit once its "
                         "elapsed time exceeds FACTOR x the running median "
                         "(must be > 1.0; first copy to finish wins)")
    ap.add_argument("--no-degraded", action="store_true",
                    help="abort the job when a worker rank dies instead of "
                         "reassigning its work to survivors (degraded-mode "
                         "completion is the default)")
    return ap


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``mrsom`` console script."""
    args = build_parser().parse_args(argv)
    if args.speculate is not None and args.speculate <= 1.0:
        build_parser().error(f"--speculate must be > 1.0, got {args.speculate}")
    config = MrSomConfig(
        matrix_path=args.input,
        grid=SOMGrid(args.rows, args.cols),
        epochs=args.epochs,
        block_rows=args.block_rows,
        init=args.init,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        trace_path=args.trace,
        backend=args.backend,
        arena_mb=args.arena_mb,
        speculation_factor=args.speculate,
        degraded=not args.no_degraded,
    )
    fault_plan = FaultPlan.parse(args.faults, args.np) if args.faults else None
    if args.retries > 0 or fault_plan is not None:
        outcome = mrsom_supervised(
            args.np,
            config,
            fault_plan=fault_plan,
            retry=RetryPolicy(max_attempts=max(1, args.retries + 1)),
        )
        results = outcome.results
        print(
            f"supervisor: {outcome.retries} retries, "
            f"{outcome.faults_injected} faults injected"
        )
    else:
        results = mrsom_spmd(args.np, config)
    live = [r for r in results if r is not None]
    np.save(args.out, live[0].codebook)
    busy = sum(r.busy_seconds for r in live)
    units = sum(r.units_processed for r in live)
    if live[0].resumed_from_epoch:
        print(f"resumed from epoch {live[0].resumed_from_epoch}")
    if live[0].speculated_units:
        print(
            f"speculation: {live[0].speculated_units} extra copies launched, "
            f"{live[0].wasted_units} discarded as losers"
        )
    if live[0].degraded:
        print(
            f"degraded completion: lost ranks {list(live[0].lost_ranks)}, "
            f"{live[0].reassigned_units} work units reassigned to survivors"
        )
    print(
        f"trained {args.rows}x{args.cols} SOM for {args.epochs} epochs on {args.np} ranks: "
        f"{units} work units, {busy:.2f} core-seconds -> {args.out}"
    )
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
