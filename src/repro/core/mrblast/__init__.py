"""MR-MPI BLAST (paper Fig. 1)."""

from repro.core.mrblast.workitems import WorkItem, build_work_items, load_query_blocks
from repro.core.mrblast.mapper import MrBlastMapper, MapperStats
from repro.core.mrblast.reducer import MrBlastReducer
from repro.core.mrblast.driver import MrBlastConfig, run_mrblast, mrblast_spmd
from repro.core.mrblast.merge import merge_rank_outputs

__all__ = [
    "WorkItem",
    "build_work_items",
    "load_query_blocks",
    "MrBlastMapper",
    "MapperStats",
    "MrBlastReducer",
    "MrBlastConfig",
    "run_mrblast",
    "mrblast_spmd",
    "merge_rank_outputs",
]
