"""Optional merge of per-rank output files.

"In our experience, it is rarely needed for the practical downstream
analysis of the large-scale BLAST searches to have the results merged into a
single file" (§III.A) — but the HTC baseline does merge, and tests compare
whole result sets, so the merge exists.  Hits are re-ordered to follow the
original query order, preserving each query's internal E-value order.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.blast.hsp import HSP
from repro.blast.tabular import parse_tabular, write_tabular

__all__ = ["merge_rank_outputs", "collect_rank_hits"]


def collect_rank_hits(rank_files: Iterable[str]) -> dict[str, list[HSP]]:
    """Load all per-rank files into {query_id: [hits in file order]}.

    Collate guarantees each query lives in exactly one file; duplicated
    query ids across files indicate a broken run and raise.
    """
    by_query: dict[str, list[HSP]] = {}
    owner: dict[str, str] = {}
    for path in rank_files:
        if not os.path.exists(path):
            continue
        for hsp in parse_tabular(path):
            prev = owner.setdefault(hsp.query_id, path)
            if prev != path:
                raise ValueError(
                    f"query {hsp.query_id!r} appears in both {prev} and {path}; "
                    "collate() should have placed it on exactly one rank"
                )
            by_query.setdefault(hsp.query_id, []).append(hsp)
    return by_query


def merge_rank_outputs(
    rank_files: Sequence[str],
    merged_path: str,
    query_order: Sequence[str] | None = None,
) -> int:
    """Merge per-rank files into one; returns the number of hits written.

    With ``query_order`` (the original query id sequence), output follows
    input order; otherwise queries are sorted lexicographically.
    """
    by_query = collect_rank_hits(rank_files)
    if query_order is None:
        ordered = sorted(by_query)
    else:
        ordered = [q for q in query_order if q in by_query]
        leftovers = set(by_query) - set(ordered)
        if leftovers:
            raise ValueError(f"hits for unknown queries: {sorted(leftovers)[:5]}")
    total = 0
    first = True
    for qid in ordered:
        write_tabular(by_query[qid], merged_path, append=not first)
        total += len(by_query[qid])
        first = False
    if first:  # no hits at all: still create an empty file
        open(merged_path, "w").close()
    return total
