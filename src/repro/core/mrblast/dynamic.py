"""Dynamic query chunking: the paper's second §V improvement.

"We are eliminating the need to pre-partition the query dataset by building
an index of sequence offsets in the input FASTA file.  This will allow
selecting the size of the query blocks dynamically after the start of the
program based on a small timing iteration at the beginning, thus
eliminating the need for tuning by the user.  This can be also used to make
progressively smaller query chunks toward the end of each iteration and
have a more uniform filling of the cores."

Pieces:

- :func:`pilot_block_size` — rank 0 times a small pilot search (a handful
  of queries against one partition) and sizes blocks so one work unit costs
  roughly ``target_unit_seconds``.
- :func:`plan_block_ranges` — cuts the indexed query set into blocks of
  that size, with a tapered tail: the last portion of blocks shrinks
  geometrically so the final units fill the cores evenly.
- :func:`run_mrblast_dynamic` — an mrblast variant whose mapper
  materialises query blocks lazily from the shared FASTA index instead of
  from pre-split files.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bio.fasta import FastaIndex
from repro.blast.dbreader import DatabaseAlias
from repro.blast.engine import make_engine
from repro.blast.hsp import HSP
from repro.blast.options import BlastOptions
from repro.core.mrblast.reducer import MrBlastReducer
from repro.core.mrblast.workitems import WorkItem
from repro.mpi.comm import Comm
from repro.mpi.runtime import run_spmd
from repro.mrmpi.mapreduce import MapReduce, MapStyle

__all__ = [
    "DynamicChunkConfig",
    "pilot_block_size",
    "plan_block_ranges",
    "run_mrblast_dynamic",
    "mrblast_dynamic_spmd",
]


@dataclass
class DynamicChunkConfig:
    """Configuration of a dynamically-chunked run."""

    alias_path: str
    query_fasta: str
    options: BlastOptions = field(default_factory=BlastOptions.blastn)
    output_dir: str = "mrblast_dyn_out"
    #: desired wall-clock cost of one work unit
    target_unit_seconds: float = 0.25
    #: queries used by the timing pilot
    pilot_queries: int = 4
    min_block: int = 1
    max_block: int = 100_000
    #: fraction of the query set cut into geometrically shrinking tail blocks
    taper_fraction: float = 0.25
    locality_aware: bool = True
    hit_filter: Callable[[str, HSP], bool] | None = None
    #: transport backend (None = REPRO_MPI_BACKEND default; see run_spmd)
    backend: str | None = None
    #: process-backend arena budget in MiB per rank (see run_spmd)
    arena_mb: int | None = None
    #: adaptive deadlines (the Fig. 4 knob closed-loop): process the query
    #: set in waves of ``queries_per_wave`` queries and re-size the block
    #: between waves from the *observed* unit-runtime distribution, instead
    #: of trusting the pilot forever.  Requires ``queries_per_wave >= 1``.
    adaptive: bool = False
    #: queries per adaptation wave (0 = one wave over everything, i.e. the
    #: non-adaptive legacy plan)
    queries_per_wave: int = 0
    #: straggler speculation factor (None disables; see MrBlastConfig)
    speculation_factor: float | None = None
    #: degraded-mode completion on worker death (see MrBlastConfig)
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.target_unit_seconds <= 0:
            raise ValueError("target_unit_seconds must be positive")
        if self.pilot_queries < 1:
            raise ValueError("pilot_queries must be >= 1")
        if not (1 <= self.min_block <= self.max_block):
            raise ValueError("need 1 <= min_block <= max_block")
        if not (0.0 <= self.taper_fraction < 1.0):
            raise ValueError("taper_fraction must be in [0, 1)")
        if self.adaptive and self.queries_per_wave < 1:
            raise ValueError("adaptive mode needs queries_per_wave >= 1")
        if self.queries_per_wave < 0:
            raise ValueError("queries_per_wave must be >= 0")
        if self.speculation_factor is not None and self.speculation_factor <= 1.0:
            raise ValueError(
                f"speculation_factor must be > 1.0, got {self.speculation_factor}")


def pilot_block_size(
    index: FastaIndex,
    alias: DatabaseAlias,
    config: DynamicChunkConfig,
) -> int:
    """Time a pilot search and derive the block size hitting the target cost.

    Runs ``pilot_queries`` queries against partition 0 with the production
    engine, measures per-query-per-partition cost, and returns the number of
    queries whose unit cost meets ``target_unit_seconds``.
    """
    n_pilot = min(config.pilot_queries, len(index))
    queries = index.load_range(0, n_pilot)
    options = config.options.with_db_size(alias.total_length, alias.num_seqs)
    engine = make_engine(options)
    partition = alias.open_partition(0)
    t0 = time.perf_counter()
    engine.search_block(queries, partition)
    elapsed = max(time.perf_counter() - t0, 1e-6)
    per_query = elapsed / n_pilot
    block = int(config.target_unit_seconds / per_query)
    return max(config.min_block, min(block, config.max_block, len(index)))


def plan_block_ranges(
    n_queries: int,
    block_size: int,
    taper_fraction: float = 0.25,
    min_block: int = 1,
) -> list[tuple[int, int]]:
    """Cut ``n_queries`` into blocks with a geometrically tapered tail.

    The head is uniform blocks of ``block_size``; the final
    ``taper_fraction`` of queries is cut into successively halved blocks
    (never below ``min_block``), giving the master fine-grained units when
    the run drains — the paper's "more uniform filling of the cores".
    """
    if n_queries < 1:
        raise ValueError("need at least one query")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    taper_start = int(n_queries * (1.0 - taper_fraction))
    ranges: list[tuple[int, int]] = []
    pos = 0
    while pos < taper_start:
        end = min(pos + block_size, taper_start)
        ranges.append((pos, end))
        pos = end
    current = max(block_size // 2, min_block)
    while pos < n_queries:
        end = min(pos + current, n_queries)
        ranges.append((pos, end))
        pos = end
        current = max(current // 2, min_block)
    return ranges


@dataclass
class DynamicRunResult:
    rank: int
    output_path: str
    block_size: int
    n_blocks: int
    units_processed: int
    partition_switches: int
    hits_written: int
    #: adaptive-deadline telemetry (PR 8): block size entering each wave
    #: (length 1 when non-adaptive) and the number of map waves run.
    block_size_history: tuple[int, ...] = ()
    waves: int = 1
    #: straggler/degraded telemetry, mirrored from the scheduler report.
    degraded: bool = False
    lost_ranks: tuple[int, ...] = ()
    speculated_units: int = 0
    reassigned_units: int = 0
    wasted_units: int = 0


class _LazyBlockMapper:
    """Like MrBlastMapper but materialises query blocks from the index."""

    def __init__(
        self,
        alias: DatabaseAlias,
        index: FastaIndex,
        ranges: list[tuple[int, int]],
        options: BlastOptions,
        hit_filter,
    ) -> None:
        self.alias = alias
        self.index = index
        self.ranges = ranges
        self.options = options.with_db_size(alias.total_length, alias.num_seqs)
        self.hit_filter = hit_filter
        self._engine = make_engine(self.options)
        self._partition = None
        self._partition_index = None
        self._block_cache: tuple[int, list] | None = None
        self.units = 0
        self.partition_switches = 0
        #: wall-clock seconds of every unit this rank executed, in order —
        #: the observable the adaptive-deadline controller feeds on.
        self.unit_seconds: list[float] = []

    def _queries(self, block_index: int):
        if self._block_cache is None or self._block_cache[0] != block_index:
            start, stop = self.ranges[block_index]
            self._block_cache = (block_index, self.index.load_range(start, stop))
        return self._block_cache[1]

    def __call__(self, itask: int, item: WorkItem, kv) -> None:
        t0 = time.perf_counter()
        if self._partition_index != item.partition_index:
            if self._partition is not None:
                self._partition.release()
            self._partition = self.alias.open_partition(item.partition_index)
            self._partition_index = item.partition_index
            self.partition_switches += 1
        for hsp in self._engine.search_block(self._queries(item.block_index), self._partition):
            if self.hit_filter is not None and self.hit_filter(hsp.query_id, hsp):
                continue
            kv.add(hsp.query_id, hsp)
        self.units += 1
        self.unit_seconds.append(time.perf_counter() - t0)


def run_mrblast_dynamic(comm: Comm, config: DynamicChunkConfig) -> DynamicRunResult:
    """SPMD entry point for the dynamically-chunked pipeline.

    Non-adaptive (``queries_per_wave == 0``): one map over the pilot-sized
    plan, exactly the legacy behaviour.  Adaptive: the query set is
    processed in waves; after each wave the block size is re-derived from
    the *observed* median unit runtime (clamped to [0.5x, 2x] per step so
    one noisy wave cannot whipsaw the plan) — a feedback controller closing
    the loop the pilot only opens.
    """
    alias = DatabaseAlias.load(config.alias_path)
    index = FastaIndex(config.query_fasta)

    # Rank 0 runs the timing pilot; the chosen block size is broadcast.
    block_size = None
    if comm.rank == 0:
        block_size = pilot_block_size(index, alias, config)
    block_size = comm.bcast(block_size, root=0)

    speculation = None
    if config.speculation_factor is not None:
        from repro.sched import SpeculationPolicy

        speculation = SpeculationPolicy(factor=config.speculation_factor)

    os.makedirs(config.output_dir, exist_ok=True)
    output_path = os.path.join(config.output_dir, f"hits.rank{comm.rank:04d}.tsv")
    open(output_path, "w").close()

    ranges: list[tuple[int, int]] = []  # grows wave by wave, shared w/ mapper
    mapper = _LazyBlockMapper(alias, index, ranges, config.options, config.hit_filter)
    reducer = MrBlastReducer(mapper.options, output_path)
    mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)

    n_queries = len(index)
    per_wave = config.queries_per_wave if config.adaptive else 0
    history = [block_size]
    waves = 0
    pos = 0
    while pos < n_queries:
        wave_end = n_queries if per_wave == 0 else min(pos + per_wave, n_queries)
        last = wave_end >= n_queries
        # Taper only the final wave: mid-run waves are followed by more
        # work, so there is no drain to smooth.
        wave_ranges = plan_block_ranges(
            wave_end - pos, block_size,
            config.taper_fraction if last else 0.0, config.min_block,
        )
        base = len(ranges)
        ranges.extend((pos + a, pos + b) for a, b in wave_ranges)
        items = [
            WorkItem(b, p)
            for b in range(base, len(ranges))
            for p in range(alias.num_partitions)
        ]
        mark = len(mapper.unit_seconds)
        mr.map_items(
            items,
            mapper,
            addflag=True,
            locality_key=(lambda it: it.partition_index) if config.locality_aware else None,
            speculation=speculation,
            degraded=config.degraded,
        )
        waves += 1
        pos = wave_end
        if config.adaptive and not last:
            # Feedback step: every rank contributes its wave's observed unit
            # durations; the fleet agrees on the median and rescales.
            observed = sorted(
                d
                for sub in mr.comm.allgather(mapper.unit_seconds[mark:])
                for d in sub
            )
            if observed:
                median = observed[len(observed) // 2]
                if median > 0:
                    scale = min(2.0, max(0.5, config.target_unit_seconds / median))
                    block_size = max(
                        config.min_block,
                        min(int(block_size * scale), config.max_block, n_queries),
                    )
                    block_size = max(block_size, 1)
            history.append(block_size)

    mr.collate()
    mr.reduce(reducer)
    mr.close()
    return DynamicRunResult(
        rank=comm.rank,
        output_path=output_path,
        block_size=history[-1],
        n_blocks=len(ranges),
        units_processed=mapper.units,
        partition_switches=mapper.partition_switches,
        hits_written=reducer.hits_written,
        block_size_history=tuple(history),
        waves=waves,
        degraded=mr.degraded_run,
        lost_ranks=mr.lost_ranks,
        speculated_units=mr.sched_stats["speculated"],
        reassigned_units=mr.sched_stats["reassigned"],
        wasted_units=mr.sched_stats["wasted"],
    )


def mrblast_dynamic_spmd(nprocs: int, config: DynamicChunkConfig) -> list[DynamicRunResult]:
    """Launch a full in-process MPI job running :func:`run_mrblast_dynamic`."""
    return run_spmd(nprocs, run_mrblast_dynamic, config,
                    backend=config.backend, arena_mb=config.arena_mb)
