"""Dynamic query chunking: the paper's second §V improvement.

"We are eliminating the need to pre-partition the query dataset by building
an index of sequence offsets in the input FASTA file.  This will allow
selecting the size of the query blocks dynamically after the start of the
program based on a small timing iteration at the beginning, thus
eliminating the need for tuning by the user.  This can be also used to make
progressively smaller query chunks toward the end of each iteration and
have a more uniform filling of the cores."

Pieces:

- :func:`pilot_block_size` — rank 0 times a small pilot search (a handful
  of queries against one partition) and sizes blocks so one work unit costs
  roughly ``target_unit_seconds``.
- :func:`plan_block_ranges` — cuts the indexed query set into blocks of
  that size, with a tapered tail: the last portion of blocks shrinks
  geometrically so the final units fill the cores evenly.
- :func:`run_mrblast_dynamic` — an mrblast variant whose mapper
  materialises query blocks lazily from the shared FASTA index instead of
  from pre-split files.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bio.fasta import FastaIndex
from repro.blast.dbreader import DatabaseAlias
from repro.blast.engine import make_engine
from repro.blast.hsp import HSP
from repro.blast.options import BlastOptions
from repro.core.mrblast.reducer import MrBlastReducer
from repro.core.mrblast.workitems import WorkItem
from repro.mpi.comm import Comm
from repro.mpi.runtime import run_spmd
from repro.mrmpi.mapreduce import MapReduce, MapStyle

__all__ = [
    "DynamicChunkConfig",
    "pilot_block_size",
    "plan_block_ranges",
    "run_mrblast_dynamic",
    "mrblast_dynamic_spmd",
]


@dataclass
class DynamicChunkConfig:
    """Configuration of a dynamically-chunked run."""

    alias_path: str
    query_fasta: str
    options: BlastOptions = field(default_factory=BlastOptions.blastn)
    output_dir: str = "mrblast_dyn_out"
    #: desired wall-clock cost of one work unit
    target_unit_seconds: float = 0.25
    #: queries used by the timing pilot
    pilot_queries: int = 4
    min_block: int = 1
    max_block: int = 100_000
    #: fraction of the query set cut into geometrically shrinking tail blocks
    taper_fraction: float = 0.25
    locality_aware: bool = True
    hit_filter: Callable[[str, HSP], bool] | None = None
    #: transport backend (None = REPRO_MPI_BACKEND default; see run_spmd)
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.target_unit_seconds <= 0:
            raise ValueError("target_unit_seconds must be positive")
        if self.pilot_queries < 1:
            raise ValueError("pilot_queries must be >= 1")
        if not (1 <= self.min_block <= self.max_block):
            raise ValueError("need 1 <= min_block <= max_block")
        if not (0.0 <= self.taper_fraction < 1.0):
            raise ValueError("taper_fraction must be in [0, 1)")


def pilot_block_size(
    index: FastaIndex,
    alias: DatabaseAlias,
    config: DynamicChunkConfig,
) -> int:
    """Time a pilot search and derive the block size hitting the target cost.

    Runs ``pilot_queries`` queries against partition 0 with the production
    engine, measures per-query-per-partition cost, and returns the number of
    queries whose unit cost meets ``target_unit_seconds``.
    """
    n_pilot = min(config.pilot_queries, len(index))
    queries = index.load_range(0, n_pilot)
    options = config.options.with_db_size(alias.total_length, alias.num_seqs)
    engine = make_engine(options)
    partition = alias.open_partition(0)
    t0 = time.perf_counter()
    engine.search_block(queries, partition)
    elapsed = max(time.perf_counter() - t0, 1e-6)
    per_query = elapsed / n_pilot
    block = int(config.target_unit_seconds / per_query)
    return max(config.min_block, min(block, config.max_block, len(index)))


def plan_block_ranges(
    n_queries: int,
    block_size: int,
    taper_fraction: float = 0.25,
    min_block: int = 1,
) -> list[tuple[int, int]]:
    """Cut ``n_queries`` into blocks with a geometrically tapered tail.

    The head is uniform blocks of ``block_size``; the final
    ``taper_fraction`` of queries is cut into successively halved blocks
    (never below ``min_block``), giving the master fine-grained units when
    the run drains — the paper's "more uniform filling of the cores".
    """
    if n_queries < 1:
        raise ValueError("need at least one query")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    taper_start = int(n_queries * (1.0 - taper_fraction))
    ranges: list[tuple[int, int]] = []
    pos = 0
    while pos < taper_start:
        end = min(pos + block_size, taper_start)
        ranges.append((pos, end))
        pos = end
    current = max(block_size // 2, min_block)
    while pos < n_queries:
        end = min(pos + current, n_queries)
        ranges.append((pos, end))
        pos = end
        current = max(current // 2, min_block)
    return ranges


@dataclass
class DynamicRunResult:
    rank: int
    output_path: str
    block_size: int
    n_blocks: int
    units_processed: int
    partition_switches: int
    hits_written: int


class _LazyBlockMapper:
    """Like MrBlastMapper but materialises query blocks from the index."""

    def __init__(
        self,
        alias: DatabaseAlias,
        index: FastaIndex,
        ranges: list[tuple[int, int]],
        options: BlastOptions,
        hit_filter,
    ) -> None:
        self.alias = alias
        self.index = index
        self.ranges = ranges
        self.options = options.with_db_size(alias.total_length, alias.num_seqs)
        self.hit_filter = hit_filter
        self._engine = make_engine(self.options)
        self._partition = None
        self._partition_index = None
        self._block_cache: tuple[int, list] | None = None
        self.units = 0
        self.partition_switches = 0

    def _queries(self, block_index: int):
        if self._block_cache is None or self._block_cache[0] != block_index:
            start, stop = self.ranges[block_index]
            self._block_cache = (block_index, self.index.load_range(start, stop))
        return self._block_cache[1]

    def __call__(self, itask: int, item: WorkItem, kv) -> None:
        if self._partition_index != item.partition_index:
            if self._partition is not None:
                self._partition.release()
            self._partition = self.alias.open_partition(item.partition_index)
            self._partition_index = item.partition_index
            self.partition_switches += 1
        for hsp in self._engine.search_block(self._queries(item.block_index), self._partition):
            if self.hit_filter is not None and self.hit_filter(hsp.query_id, hsp):
                continue
            kv.add(hsp.query_id, hsp)
        self.units += 1


def run_mrblast_dynamic(comm: Comm, config: DynamicChunkConfig) -> DynamicRunResult:
    """SPMD entry point for the dynamically-chunked pipeline."""
    alias = DatabaseAlias.load(config.alias_path)
    index = FastaIndex(config.query_fasta)

    # Rank 0 runs the timing pilot; the chosen block size is broadcast.
    block_size = None
    if comm.rank == 0:
        block_size = pilot_block_size(index, alias, config)
    block_size = comm.bcast(block_size, root=0)

    ranges = plan_block_ranges(
        len(index), block_size, config.taper_fraction, config.min_block
    )
    items = [
        WorkItem(b, p)
        for b in range(len(ranges))
        for p in range(alias.num_partitions)
    ]

    os.makedirs(config.output_dir, exist_ok=True)
    output_path = os.path.join(config.output_dir, f"hits.rank{comm.rank:04d}.tsv")
    open(output_path, "w").close()

    mapper = _LazyBlockMapper(alias, index, ranges, config.options, config.hit_filter)
    reducer = MrBlastReducer(mapper.options, output_path)
    mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)
    mr.map_items(
        items,
        mapper,
        locality_key=(lambda it: it.partition_index) if config.locality_aware else None,
    )
    mr.collate()
    mr.reduce(reducer)
    mr.close()
    return DynamicRunResult(
        rank=comm.rank,
        output_path=output_path,
        block_size=block_size,
        n_blocks=len(ranges),
        units_processed=mapper.units,
        partition_switches=mapper.partition_switches,
        hits_written=reducer.hits_written,
    )


def mrblast_dynamic_spmd(nprocs: int, config: DynamicChunkConfig) -> list[DynamicRunResult]:
    """Launch a full in-process MPI job running :func:`run_mrblast_dynamic`."""
    return run_spmd(nprocs, run_mrblast_dynamic, config, backend=config.backend)
