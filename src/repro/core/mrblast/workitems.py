"""Work-unit construction: the (query block, DB partition) matrix.

"In our implementation of BLAST, we define a work item as a tuple that
combines several query sequences ('query blocks') with one database
partition" (paper §III.A).  Query blocks are pre-split FASTA files (the
paper's setup) or index ranges over one big FASTA (the paper's announced
dynamic-chunking improvement, used by the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bio.fasta import FastaIndex, read_fasta
from repro.bio.seq import SeqRecord

__all__ = ["WorkItem", "build_work_items", "load_query_blocks", "index_query_blocks"]


@dataclass(frozen=True)
class WorkItem:
    """One sequential unit of work: search one query block in one partition."""

    block_index: int
    partition_index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<block {self.block_index}, partition {self.partition_index}>"


def build_work_items(
    n_blocks: int,
    n_partitions: int,
    order: str = "partition_major",
    block_range: Sequence[int] | None = None,
) -> list[WorkItem]:
    """The n_blocks × n_partitions work matrix (or a slice of its blocks).

    ``partition_major`` lists all blocks of partition 0 first, so
    consecutive units share a partition and the per-rank DB-object cache hits
    often; ``query_major`` is the transpose.  The scaling figures use
    partition-major (the favourable order for DB reload cost, matching the
    caching discussion in §IV.A).

    ``block_range`` restricts generation to those block indices (the
    driver's outer iteration window), producing exactly the items — in the
    same order — that filtering the full matrix would, without ever
    materialising it.
    """
    if n_blocks < 1 or n_partitions < 1:
        raise ValueError(
            f"need at least one block and one partition, got {n_blocks}x{n_partitions}"
        )
    if block_range is None:
        blocks: Sequence[int] = range(n_blocks)
    else:
        blocks = block_range
        if any(b < 0 or b >= n_blocks for b in blocks):
            raise ValueError(f"block_range entries must lie in [0, {n_blocks})")
    if order == "partition_major":
        return [WorkItem(b, p) for p in range(n_partitions) for b in blocks]
    if order == "query_major":
        return [WorkItem(b, p) for b in blocks for p in range(n_partitions)]
    raise ValueError(f"unknown order {order!r}")


def load_query_blocks(block_paths: Sequence[str]) -> list[list[SeqRecord]]:
    """Materialise pre-split query block FASTA files (the paper's layout)."""
    if not block_paths:
        raise ValueError("no query block files given")
    return [list(read_fasta(p)) for p in block_paths]


def index_query_blocks(
    fasta_path: str, seqs_per_block: int
) -> tuple[FastaIndex, list[tuple[int, int]]]:
    """Dynamic chunking: block boundaries over one indexed FASTA file.

    Returns the index plus (start, stop) entry ranges — the paper's future
    work of "eliminating the need to pre-partition the query dataset by
    building an index of sequence offsets in the input FASTA file".
    """
    if seqs_per_block < 1:
        raise ValueError(f"seqs_per_block must be >= 1, got {seqs_per_block}")
    index = FastaIndex(fasta_path)
    ranges = [
        (start, min(start + seqs_per_block, len(index)))
        for start in range(0, len(index), seqs_per_block)
    ]
    return index, ranges
