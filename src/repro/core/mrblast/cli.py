"""Command-line front end for MR-MPI BLAST.

Runs the full parallel pipeline on the in-process MPI runtime::

    mrblast --db outdir/mydb.pal.json --queries q1.fasta q2.fasta \
            --np 4 --out results/ --evalue 1e-4 --max-hits 50

Each ``--queries`` file is one query block (the paper's pre-split layout).
"""

from __future__ import annotations

import argparse

from repro.blast.options import BlastOptions
from repro.core.mrblast.driver import MrBlastConfig, mrblast_spmd, mrblast_supervised
from repro.core.mrblast.workitems import load_query_blocks
from repro.mpi.faultplan import FaultPlan
from repro.mpi.runtime import RetryPolicy

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="mrblast", description=__doc__)
    ap.add_argument("--db", required=True, help="database alias file (.pal.json)")
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--queries", nargs="+", help="pre-split query block FASTA files")
    group.add_argument(
        "--query-fasta",
        help="single query FASTA for dynamic chunking (block size chosen by a timing pilot)",
    )
    ap.add_argument("--target-unit-seconds", type=float, default=0.25,
                    help="dynamic mode: desired cost of one work unit")
    ap.add_argument("--np", type=int, default=4, help="number of MPI ranks")
    ap.add_argument("--backend", choices=["thread", "process"], default=None,
                    help="transport backend: 'process' runs each rank as an OS "
                         "process (real multi-core); 'thread' is the in-process "
                         "parity oracle (default: $REPRO_MPI_BACKEND or thread)")
    ap.add_argument("--arena-mb", type=int, default=None,
                    help="process backend: shared-memory arena MiB per rank "
                         "(0 disables the arena; default: $REPRO_MPI_ARENA_MB "
                         "or 64)")
    ap.add_argument("--out", default="mrblast_out", help="output directory")
    ap.add_argument("--program", choices=["blastn", "blastp", "blastx"], default="blastn")
    ap.add_argument("--engine", choices=["fused", "staged"], default="fused",
                    help="BLAST engine scheduler: 'fused' streams "
                         "seed/ungapped/gapped as one round-based pass (default); "
                         "'staged' runs the per-subject parity oracle")
    ap.add_argument("--evalue", type=float, default=10.0)
    ap.add_argument("--max-hits", type=int, default=500)
    ap.add_argument("--blocks-per-iteration", type=int, default=0,
                    help="query blocks per MapReduce iteration (0 = all at once)")
    ap.add_argument("--locality", action="store_true",
                    help="location-aware dispatch (prefer a worker's current DB partition)")
    ap.add_argument("--resume", action="store_true",
                    help="continue from the per-rank progress manifests in --out")
    ap.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault-injection plan, e.g. 'crash=1@20' or "
                         "'seed=7,crashes=1,drops=2' (see FaultPlan.parse)")
    ap.add_argument("--retries", type=int, default=0, metavar="N",
                    help="run under the supervisor with up to N relaunches "
                         "(resume from the last committed iteration)")
    ap.add_argument("--trace", default=None, metavar="PATH",
                    help="write a Chrome trace_event JSON of the run here "
                         "(open in chrome://tracing or Perfetto)")
    ap.add_argument("--speculate", type=float, default=None, metavar="FACTOR",
                    help="straggler mitigation: re-issue a work unit once its "
                         "elapsed time exceeds FACTOR x the running median "
                         "(must be > 1.0; first copy to finish wins)")
    ap.add_argument("--no-degraded", action="store_true",
                    help="abort the job when a worker rank dies instead of "
                         "reassigning its work to survivors (degraded-mode "
                         "completion is the default)")
    return ap


def _print_sched_summary(live: list) -> None:
    """One line of straggler/degraded accounting when anything happened."""
    if not live:
        return
    head = live[0]
    if head.speculated_units:
        print(
            f"speculation: {head.speculated_units} extra copies launched, "
            f"{head.wasted_units} discarded as losers"
        )
    if head.degraded:
        print(
            f"degraded completion: lost ranks {list(head.lost_ranks)}, "
            f"{head.reassigned_units} work units reassigned to survivors"
        )


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``mrblast`` console script."""
    args = build_parser().parse_args(argv)
    if args.speculate is not None and args.speculate <= 1.0:
        build_parser().error(f"--speculate must be > 1.0, got {args.speculate}")
    factory = {
        "blastn": BlastOptions.blastn,
        "blastp": BlastOptions.blastp,
        "blastx": BlastOptions.blastx,
    }[args.program]
    options = factory(
        evalue=args.evalue, max_hits=args.max_hits, fused=args.engine == "fused"
    )

    if args.query_fasta:
        from repro.core.mrblast.dynamic import DynamicChunkConfig, mrblast_dynamic_spmd

        dyn_results = mrblast_dynamic_spmd(args.np, DynamicChunkConfig(
            alias_path=args.db,
            query_fasta=args.query_fasta,
            options=options,
            output_dir=args.out,
            target_unit_seconds=args.target_unit_seconds,
            locality_aware=args.locality,
            backend=args.backend,
            arena_mb=args.arena_mb,
            speculation_factor=args.speculate,
            degraded=not args.no_degraded,
        ))
        live = [r for r in dyn_results if r is not None]
        total_hits = sum(r.hits_written for r in live)
        for r in live:
            print(
                f"rank {r.rank}: units={r.units_processed} "
                f"switches={r.partition_switches} wrote {r.hits_written} hits "
                f"-> {r.output_path}"
            )
        _print_sched_summary(live)
        print(
            f"dynamic chunking chose {live[0].block_size}-query blocks "
            f"({live[0].n_blocks} blocks); total {total_hits} hits "
            f"across {args.np} ranks"
        )
        return 0

    config = MrBlastConfig(
        alias_path=args.db,
        query_blocks=load_query_blocks(args.queries),
        options=options,
        output_dir=args.out,
        blocks_per_iteration=args.blocks_per_iteration,
        locality_aware=args.locality,
        resume=args.resume,
        trace_path=args.trace,
        backend=args.backend,
        arena_mb=args.arena_mb,
        speculation_factor=args.speculate,
        degraded=not args.no_degraded,
    )
    fault_plan = FaultPlan.parse(args.faults, args.np) if args.faults else None
    if args.retries > 0 or fault_plan is not None:
        outcome = mrblast_supervised(
            args.np,
            config,
            fault_plan=fault_plan,
            retry=RetryPolicy(max_attempts=max(1, args.retries + 1)),
        )
        results = outcome.results
        print(
            f"supervisor: {outcome.retries} retries, "
            f"{outcome.faults_injected} faults injected"
        )
    else:
        results = mrblast_spmd(args.np, config)
    live = [r for r in results if r is not None]
    total_hits = sum(r.hits_written for r in live)
    total_queries = sum(r.queries_written for r in live)
    quarantined = sum(r.quarantined_units for r in live)
    for r in live:
        print(
            f"rank {r.rank}: units={r.units_processed} switches={r.partition_switches} "
            f"wrote {r.hits_written} hits for {r.queries_written} queries -> {r.output_path}"
        )
    if live and live[0].resumed_from_iteration:
        print(f"resumed from iteration {live[0].resumed_from_iteration}")
    if quarantined:
        print(f"quarantined work units skipped: {quarantined} (see poison.json)")
    _print_sched_summary(live)
    print(f"total: {total_hits} hits for {total_queries} queries across {args.np} ranks")
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
